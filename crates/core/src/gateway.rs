//! Client ingress gateway: the RPC front-end of the consortium
//! (DESIGN.md §10).
//!
//! Clients connect over TCP and speak length-framed canonical-codec
//! messages: `[u32 length LE][GatewayRequest bytes]` up to
//! [`MAX_FRAME`]. The gateway owns the admission path the paper's
//! million-user population needs:
//!
//! 1. **Dedup before signature work** — a re-submitted transaction id is
//!    answered from the gateway's bounded seen-window (or with its
//!    committed receipt) without touching signature state, so one-time
//!    signature schemes are never double-verified.
//! 2. **Batched verification** — fresh transactions are verified in
//!    parallel chunks across a worker pool
//!    ([`medchain_runtime::sync::scoped_map`]), amortizing per-batch
//!    overhead.
//! 3. **Lane routing** — a client may request priority; the gateway
//!    grants it only when the transaction's gas limit clears
//!    [`GatewayConfig::priority_gas_floor`] (the fee-style policy), and
//!    admission goes through the mempool's lane-aware API.
//! 4. **Receipts as API** — a `Status` query for a committed
//!    transaction returns a [`TxReceipt`] whose Merkle proof the client
//!    verifies against the committed transaction root, so the gateway
//!    never has to be trusted about inclusion.
//!
//! The server is transport-only: it buffers decoded requests and the
//! network that owns it calls [`GatewayServer::pump`] between consensus
//! rounds with itself as the [`GatewayBackend`].

use medchain_chain::node::SubmitOutcome;
use medchain_chain::receipt::TxReceipt;
use medchain_chain::{Block, Hash256, KeyRegistry, Lane, LeafKey, ShardId, StateProof, Transaction};
use medchain_storage::{SnapshotChunk, SnapshotManifest};
use medchain_runtime::codec::{Decode, Encode};
use medchain_runtime::metrics::Metrics;
use medchain_runtime::sync::scoped_map;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Maximum gateway frame payload (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// Gateway tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayConfig {
    /// Client keys the builder enrolls into the consortium registry
    /// (seeds `0x1000_0000..`), retrievable via the network's
    /// `client_keys()` accessor.
    pub clients: usize,
    /// Worker threads for batched signature verification.
    pub verify_workers: usize,
    /// Maximum submissions processed per [`GatewayServer::pump`] call.
    pub max_batch: usize,
    /// Size of the bounded recently-seen tx-id window used for dedup
    /// before signature work.
    pub dedup_capacity: usize,
    /// Minimum gas limit for a requested priority upgrade to be granted
    /// (the fee-based lane policy).
    pub priority_gas_floor: u64,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            clients: 64,
            verify_workers: 4,
            max_batch: 256,
            dedup_capacity: 8_192,
            priority_gas_floor: 10_000,
        }
    }
}

/// A client-to-gateway message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayRequest {
    /// Submit a signed transaction; `priority` requests the priority
    /// lane (granted only above the gateway's gas floor).
    Submit {
        /// The signed transaction.
        tx: Transaction,
        /// Whether the client requests the priority lane.
        priority: bool,
    },
    /// Ask what happened to a previously submitted transaction.
    Status {
        /// The transaction id being queried.
        tx_id: Hash256,
    },
    /// Ask the coordinator's commit/abort verdict for a cross-shard
    /// transaction (two-phase commit, DESIGN.md §12).
    XsStatus {
        /// The cross-shard transaction id being queried.
        xid: Hash256,
    },
    /// Light-client state read: the value at `key` plus a sparse-Merkle
    /// inclusion/absence proof against the serving chain's tip root
    /// (DESIGN.md §13).
    Query {
        /// The state entry being queried.
        key: LeafKey,
        /// Pin the query to a specific sub-chain instead of the key's
        /// home shard — e.g. to obtain an *absence* proof from a shard
        /// the key does not route to. `None` = home shard.
        shard: Option<ShardId>,
    },
    /// Ask for the newest streamable snapshot of one sub-chain
    /// (bootstrap-from-peer, DESIGN.md §14).
    SnapshotInfo {
        /// The sub-chain being bootstrapped.
        shard: ShardId,
    },
    /// Fetch one chunk of an advertised snapshot.
    SnapshotChunk {
        /// The sub-chain the manifest came from.
        shard: ShardId,
        /// Height of the manifest being fetched.
        height: u64,
        /// Chunk index in `0..manifest.chunk_count`.
        index: u32,
    },
    /// Fetch committed blocks at and above `height` — the WAL-tail
    /// catch-up after a snapshot install. Responses are paged to the
    /// frame cap; the client re-requests from the next height.
    BlocksFrom {
        /// The sub-chain being caught up.
        shard: ShardId,
        /// First height wanted.
        height: u64,
    },
}

/// A gateway-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayResponse {
    /// The transaction passed verification and entered the mempool.
    Accepted {
        /// The transaction id.
        tx_id: Hash256,
        /// The sub-chain it was routed to.
        shard: ShardId,
        /// The lane it was queued on.
        lane: Lane,
    },
    /// The transaction was not admitted.
    Rejected {
        /// The transaction id.
        tx_id: Hash256,
        /// Why admission failed.
        reason: String,
    },
    /// Known but not yet committed.
    Pending {
        /// The transaction id.
        tx_id: Hash256,
    },
    /// Committed: the proof-carrying receipt.
    Committed {
        /// The receipt with its Merkle inclusion proof.
        receipt: TxReceipt,
    },
    /// The gateway has never seen this transaction id.
    Unknown {
        /// The transaction id.
        tx_id: Hash256,
    },
    /// The proof-carrying answer to a [`GatewayRequest::Query`]: claimed
    /// value (or absence) plus the Merkle path clients verify with
    /// [`StateProof::verify_against`] against an independently obtained
    /// header root.
    Proven {
        /// The complete state proof.
        proof: StateProof,
    },
    /// Answer to [`GatewayRequest::SnapshotInfo`]: the newest
    /// streamable snapshot's manifest, or `None` when the backend has
    /// none to offer (no snapshot taken yet, or streaming unsupported).
    SnapshotOffer {
        /// The manifest the joiner should assemble against.
        manifest: Option<SnapshotManifest>,
    },
    /// Answer to [`GatewayRequest::SnapshotChunk`]: the chunk, or
    /// `None` when the requested height/index is not being served
    /// (e.g. the snapshot was pruned — re-request the manifest).
    SnapshotPiece {
        /// The self-describing, CRC-framed chunk.
        chunk: Option<SnapshotChunk>,
    },
    /// Answer to [`GatewayRequest::BlocksFrom`]: a frame-bounded page
    /// of committed blocks plus the server's tip height, so the client
    /// knows whether to keep paging.
    Blocks {
        /// The serving chain's current tip height.
        tip_height: u64,
        /// Consecutive committed blocks starting at the requested
        /// height (possibly truncated to fit the frame; empty when the
        /// height is above the tip or already pruned from memory).
        blocks: Vec<Block>,
    },
    /// The coordinator's verdict on a cross-shard transaction.
    XsDecision {
        /// The cross-shard transaction id.
        xid: Hash256,
        /// Whether the coordinator has recorded a decision yet.
        decided: bool,
        /// The decision (meaningful only when `decided`): `true` =
        /// commit, `false` = abort.
        commit: bool,
        /// The proof-carrying receipt of the coordinator's decision
        /// transaction, when it is still retrievable.
        receipt: Option<TxReceipt>,
    },
}

mod codec_impls {
    use super::{GatewayRequest, GatewayResponse};
    use medchain_runtime::impl_codec_enum;

    impl_codec_enum!(GatewayRequest {
        0 => Submit { tx, priority },
        1 => Status { tx_id },
        2 => XsStatus { xid },
        3 => Query { key, shard },
        4 => SnapshotInfo { shard },
        5 => SnapshotChunk { shard, height, index },
        6 => BlocksFrom { shard, height },
    });
    impl_codec_enum!(GatewayResponse {
        0 => Accepted { tx_id, shard, lane },
        1 => Rejected { tx_id, reason },
        2 => Pending { tx_id },
        3 => Committed { receipt },
        4 => Unknown { tx_id },
        5 => XsDecision { xid, decided, commit, receipt },
        6 => Proven { proof },
        7 => SnapshotOffer { manifest },
        8 => SnapshotPiece { chunk },
        9 => Blocks { tip_height, blocks },
    });
}

/// Writes one `[u32 len LE][payload]` frame.
pub(crate) fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    stream.write_all(&buf)
}

/// Incremental frame parser over a non-blocking / timeout-read stream.
///
/// Feed it raw reads; it hands back complete frames, tolerating frames
/// split across arbitrary read boundaries.
pub(crate) struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    pub(crate) fn new() -> FrameBuffer {
        FrameBuffer { buf: Vec::new() }
    }

    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if one is buffered.
    ///
    /// # Errors
    ///
    /// Returns an error if the declared frame length exceeds
    /// [`MAX_FRAME`] — the connection is unrecoverable at that point.
    pub(crate) fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds {MAX_FRAME}"),
            ));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }
}

/// Reads frames from `stream` into `out` until EOF/error, polling `stop`.
fn reader_loop(
    conn: u64,
    mut stream: TcpStream,
    out: Sender<(u64, GatewayRequest)>,
    stop: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 8192];
    while !stop.load(Ordering::Relaxed) {
        match stream.read(&mut chunk) {
            Ok(0) => break, // client hung up
            Ok(n) => {
                frames.extend(&chunk[..n]);
                loop {
                    match frames.next_frame() {
                        Ok(Some(payload)) => {
                            match GatewayRequest::decoded(&payload) {
                                Ok(req) => {
                                    if out.send((conn, req)).is_err() {
                                        return; // server dropped
                                    }
                                }
                                // Undecodable request: the stream is
                                // framed correctly but the payload is
                                // garbage — drop the connection.
                                Err(_) => return,
                            }
                        }
                        Ok(None) => break,
                        Err(_) => return, // oversized frame
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        }
    }
}

/// What a network must provide for the gateway to admit traffic and
/// answer status queries. Implemented by `MedicalNetwork` (single chain)
/// and `ShardedNetwork` (routes by [`medchain_chain::shard_for_tx`]).
pub trait GatewayBackend {
    /// The consortium registry used for batched signature verification.
    fn registry(&self) -> &KeyRegistry;

    /// Admits a transaction whose signature the gateway already
    /// verified, returning the sub-chain it was routed to and the
    /// admission outcome.
    fn admit_verified(&mut self, tx: Transaction, lane: Lane) -> (ShardId, SubmitOutcome);

    /// The proof-carrying receipt of a committed transaction, if any.
    fn find_receipt(&self, tx_id: &Hash256) -> Option<TxReceipt>;

    /// Whether the transaction id is pending in a mempool.
    fn is_pending(&self, tx_id: &Hash256) -> bool;

    /// The coordinator's verdict on a cross-shard transaction:
    /// `Some((commit, decision_receipt))` once decided, `None` while
    /// undecided. Backends without a coordinator chain (single-chain
    /// networks) keep the default: never decided.
    fn xs_status(&self, xid: &Hash256) -> Option<(bool, Option<TxReceipt>)> {
        let _ = xid;
        None
    }

    /// Proof-carrying state read (DESIGN.md §13): resolves `key` on its
    /// home shard — or on `shard` when the client pins one, e.g. for a
    /// cross-shard absence proof — and returns the value plus its
    /// Merkle path against that chain's tip root. Backends that cannot
    /// serve authenticated state keep the default: unsupported.
    fn query_state(&self, key: &LeafKey, shard: Option<ShardId>) -> Option<StateProof> {
        let _ = (key, shard);
        None
    }

    /// The newest streamable snapshot manifest for `shard`, building
    /// (and caching) the snapshot payload if needed. Backends that do
    /// not serve bootstrap streams keep the default: none offered
    /// (DESIGN.md §14).
    fn snapshot_manifest(&mut self, shard: ShardId) -> Option<SnapshotManifest> {
        let _ = shard;
        None
    }

    /// One chunk of a snapshot previously advertised by
    /// [`GatewayBackend::snapshot_manifest`]. `None` if that snapshot
    /// is no longer being served (the client re-requests the manifest).
    fn snapshot_chunk(&mut self, shard: ShardId, height: u64, index: u32) -> Option<SnapshotChunk> {
        let _ = (shard, height, index);
        None
    }

    /// Committed blocks of `shard` at and above `height` (oldest
    /// first), plus the chain's tip height — the WAL-tail feed after a
    /// snapshot install. The gateway truncates to the frame cap, so
    /// backends return what they retain and let paging do the rest.
    fn blocks_from(&mut self, shard: ShardId, height: u64) -> Option<(u64, Vec<Block>)> {
        let _ = (shard, height);
        None
    }
}

/// Per-pump summary, for callers that drive the serve loop themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Submissions processed (after dedup).
    pub submitted: usize,
    /// Transactions admitted into a mempool.
    pub accepted: usize,
    /// Transactions rejected (bad signature, full pool, bad nonce).
    pub rejected: usize,
    /// Re-submissions answered without signature work.
    pub dedup_hits: usize,
    /// Status queries answered.
    pub status_queries: usize,
}

/// Bounded recently-seen window: O(1) membership plus FIFO eviction.
struct SeenWindow {
    set: HashSet<Hash256>,
    order: VecDeque<Hash256>,
    capacity: usize,
}

impl SeenWindow {
    fn new(capacity: usize) -> SeenWindow {
        SeenWindow { set: HashSet::new(), order: VecDeque::new(), capacity: capacity.max(1) }
    }

    fn contains(&self, id: &Hash256) -> bool {
        self.set.contains(id)
    }

    fn insert(&mut self, id: Hash256) {
        if self.set.insert(id) {
            self.order.push_back(id);
            while self.order.len() > self.capacity {
                let evicted = self.order.pop_front().expect("non-empty");
                self.set.remove(&evicted);
            }
        }
    }
}

/// Bounded holding pen for transactions that passed signature
/// verification but bounced off a full mempool. A resubmission of a
/// held id retries admission directly — the (one-time) signature is
/// never re-verified. Only the verified bytes are cached: the lane is
/// re-derived from the *retry* request's priority flag through the same
/// gas-floor policy as a fresh submission, so a retry can neither
/// escalate nor inherit a stale priority grant. FIFO-bounded like
/// [`SeenWindow`]; an evicted entry simply costs the client one fresh
/// verification on its next retry.
struct VerifiedCache {
    entries: HashMap<Hash256, Transaction>,
    order: VecDeque<Hash256>,
    capacity: usize,
}

impl VerifiedCache {
    fn new(capacity: usize) -> VerifiedCache {
        VerifiedCache { entries: HashMap::new(), order: VecDeque::new(), capacity: capacity.max(1) }
    }

    fn insert(&mut self, id: Hash256, tx: Transaction) {
        if self.entries.insert(id, tx).is_none() {
            self.order.push_back(id);
            while self.order.len() > self.capacity {
                let evicted = self.order.pop_front().expect("non-empty");
                self.entries.remove(&evicted);
            }
        }
    }

    fn take(&mut self, id: &Hash256) -> Option<Transaction> {
        // The id stays in `order` until an eviction sweep pops it;
        // removing an already-taken id there is a no-op.
        self.entries.remove(id)
    }
}

/// The TCP ingress server. Owns the listener, per-connection reader
/// threads, and the dedup window; admission happens when the owning
/// network calls [`GatewayServer::pump`].
pub struct GatewayServer {
    config: GatewayConfig,
    addr: SocketAddr,
    inbox: Receiver<(u64, GatewayRequest)>,
    writers: Arc<Mutex<HashMap<u64, TcpStream>>>,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    seen: SeenWindow,
    verified: VerifiedCache,
    metrics: Metrics,
}

impl std::fmt::Debug for GatewayServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayServer").field("addr", &self.addr).finish()
    }
}

impl GatewayServer {
    /// Binds a listener on an OS-assigned loopback port and starts
    /// accepting client connections.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the loopback listener cannot start.
    pub fn start(config: GatewayConfig, metrics: Metrics) -> io::Result<GatewayServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = channel();
        let writers: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let writers = Arc::clone(&writers);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut next_conn = 0u64;
                let mut readers = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let conn = next_conn;
                            next_conn += 1;
                            if let Ok(write_half) = stream.try_clone() {
                                writers.lock().expect("writer map").insert(conn, write_half);
                            }
                            let tx = tx.clone();
                            let stop = Arc::clone(&stop);
                            readers.push(std::thread::spawn(move || {
                                reader_loop(conn, stream, tx, stop)
                            }));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for handle in readers {
                    let _ = handle.join();
                }
            })
        };
        let seen = SeenWindow::new(config.dedup_capacity);
        let verified = VerifiedCache::new(config.dedup_capacity);
        Ok(GatewayServer {
            config,
            addr,
            inbox: rx,
            writers,
            stop,
            acceptor: Some(acceptor),
            seen,
            verified,
            metrics,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The gateway's configuration.
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// Drains buffered client requests (up to `max_batch` submissions),
    /// batch-verifies fresh signatures across the worker pool, admits
    /// them through `backend`, and writes responses back to clients.
    pub fn pump(&mut self, backend: &mut dyn GatewayBackend) -> PumpReport {
        let mut report = PumpReport::default();
        let mut responses: Vec<(u64, GatewayResponse)> = Vec::new();
        // (conn, tx, priority-requested) for fresh submissions.
        let mut fresh: Vec<(u64, Transaction, bool)> = Vec::new();
        while fresh.len() < self.config.max_batch {
            let Ok((conn, request)) = self.inbox.try_recv() else { break };
            self.metrics.counter("gateway.requests", 1);
            match request {
                GatewayRequest::Status { tx_id } => {
                    report.status_queries += 1;
                    responses.push((conn, Self::status_of(backend, &self.seen, tx_id)));
                }
                GatewayRequest::XsStatus { xid } => {
                    report.status_queries += 1;
                    let response = match backend.xs_status(&xid) {
                        Some((commit, receipt)) => {
                            GatewayResponse::XsDecision { xid, decided: true, commit, receipt }
                        }
                        None => GatewayResponse::XsDecision {
                            xid,
                            decided: false,
                            commit: false,
                            receipt: None,
                        },
                    };
                    responses.push((conn, response));
                }
                GatewayRequest::Query { key, shard } => {
                    report.status_queries += 1;
                    self.metrics.counter("gateway.state_queries", 1);
                    let response = match backend.query_state(&key, shard) {
                        Some(proof) => GatewayResponse::Proven { proof },
                        // No tx id is in play for a state read; the
                        // zero id marks the rejection as non-tx-scoped.
                        None => GatewayResponse::Rejected {
                            tx_id: Hash256::ZERO,
                            reason: "state query unsupported or shard unknown".into(),
                        },
                    };
                    responses.push((conn, response));
                }
                GatewayRequest::SnapshotInfo { shard } => {
                    report.status_queries += 1;
                    self.metrics.counter("gateway.snapshot_info", 1);
                    let manifest = backend.snapshot_manifest(shard);
                    responses.push((conn, GatewayResponse::SnapshotOffer { manifest }));
                }
                GatewayRequest::SnapshotChunk { shard, height, index } => {
                    report.status_queries += 1;
                    self.metrics.counter("gateway.snapshot_chunks", 1);
                    let chunk = backend.snapshot_chunk(shard, height, index);
                    responses.push((conn, GatewayResponse::SnapshotPiece { chunk }));
                }
                GatewayRequest::BlocksFrom { shard, height } => {
                    report.status_queries += 1;
                    self.metrics.counter("gateway.block_pages", 1);
                    let response = match backend.blocks_from(shard, height) {
                        Some((tip_height, blocks)) => {
                            Self::bounded_blocks(tip_height, blocks)
                        }
                        None => GatewayResponse::Rejected {
                            tx_id: Hash256::ZERO,
                            reason: "block streaming unsupported or shard unknown".into(),
                        },
                    };
                    responses.push((conn, response));
                }
                GatewayRequest::Submit { tx, priority } => {
                    let tx_id = tx.id();
                    // Dedup BEFORE signature work: a retried submission
                    // gets its current status, and a one-time signature
                    // is never verified twice (see `ChainApp::submit_in`).
                    if self.seen.contains(&tx_id) {
                        report.dedup_hits += 1;
                        self.metrics.counter("gateway.dedup_hits", 1);
                        responses.push((conn, Self::status_of(backend, &self.seen, tx_id)));
                    } else if let Some(cached) = self.verified.take(&tx_id) {
                        // Verified earlier but bounced off a full pool:
                        // retry admission on the cached copy — the
                        // one-time signature is NOT re-verified, but the
                        // lane is re-derived from *this* request's
                        // priority flag (plus the gas-floor policy in
                        // `admit_verified_tx`), exactly as if fresh.
                        report.submitted += 1;
                        self.metrics.counter("gateway.cached_retries", 1);
                        self.admit_verified_tx(
                            backend,
                            conn,
                            cached,
                            priority,
                            &mut report,
                            &mut responses,
                        );
                    } else {
                        fresh.push((conn, tx, priority));
                    }
                }
            }
        }

        if !fresh.is_empty() {
            report.submitted += fresh.len();
            self.metrics.counter("gateway.submits", fresh.len() as u64);
            self.metrics.observe("gateway.batch_size", fresh.len() as f64);
            self.metrics.counter("gateway.sig_batches", 1);
            // Batched verification: chunk the batch across the worker
            // pool; each worker verifies its slice against the shared
            // registry.
            let registry = backend.registry().clone();
            let workers = self.config.verify_workers.max(1);
            let chunk_size = fresh.len().div_ceil(workers);
            let txs: Vec<Transaction> = fresh.iter().map(|(_, tx, _)| tx.clone()).collect();
            let verdicts: Vec<bool> = scoped_map(
                txs.chunks(chunk_size).map(<[Transaction]>::to_vec).collect(),
                |chunk| chunk.iter().map(|tx| tx.verify(&registry)).collect::<Vec<bool>>(),
            )
            .into_iter()
            .flatten()
            .collect();
            self.metrics.counter("gateway.sig_checks", fresh.len() as u64);

            for ((conn, tx, priority), verified) in fresh.into_iter().zip(verdicts) {
                let tx_id = tx.id();
                if !verified {
                    report.rejected += 1;
                    self.metrics.counter("gateway.sig_rejects", 1);
                    responses.push((
                        conn,
                        GatewayResponse::Rejected { tx_id, reason: "bad signature".into() },
                    ));
                    continue;
                }
                self.admit_verified_tx(backend, conn, tx, priority, &mut report, &mut responses);
            }
        }

        if !responses.is_empty() {
            let mut writers = self.writers.lock().expect("writer map");
            for (conn, response) in responses {
                let Some(stream) = writers.get_mut(&conn) else { continue };
                if write_frame(stream, &response.encoded()).is_err() {
                    writers.remove(&conn);
                }
            }
        }
        report
    }

    /// Routes one verified transaction through the lane policy and
    /// backend admission, recording the outcome. Shared by the fresh
    /// batch path and the verified-cache retry path; a `Full` outcome
    /// parks the transaction in the cache so its signature is never
    /// verified again.
    fn admit_verified_tx(
        &mut self,
        backend: &mut dyn GatewayBackend,
        conn: u64,
        tx: Transaction,
        priority: bool,
        report: &mut PumpReport,
        responses: &mut Vec<(u64, GatewayResponse)>,
    ) {
        let tx_id = tx.id();
        // Fee-style lane policy: priority is granted only when
        // requested AND the gas limit clears the floor.
        let lane = if priority && tx.gas_limit >= self.config.priority_gas_floor {
            Lane::Priority
        } else {
            Lane::Normal
        };
        let (shard, outcome) = backend.admit_verified(tx.clone(), lane);
        match outcome {
            SubmitOutcome::Admitted { lane, .. } => {
                report.accepted += 1;
                self.seen.insert(tx_id);
                self.metrics.counter("gateway.accepted", 1);
                if lane == Lane::Priority {
                    self.metrics.counter("gateway.priority_admitted", 1);
                }
                responses.push((conn, GatewayResponse::Accepted { tx_id, shard, lane }));
            }
            SubmitOutcome::Duplicate => {
                // Already pending on the backend (e.g. submitted
                // through the in-process API): treat as seen.
                report.dedup_hits += 1;
                self.seen.insert(tx_id);
                self.metrics.counter("gateway.dedup_hits", 1);
                responses.push((conn, GatewayResponse::Pending { tx_id }));
            }
            SubmitOutcome::Full => {
                report.rejected += 1;
                self.metrics.counter("gateway.full_rejects", 1);
                // The signature work is already spent: park the
                // verified transaction so a resubmission retries
                // admission without re-verifying (one-time signatures
                // must never be checked twice).
                self.verified.insert(tx_id, tx);
                responses.push((
                    conn,
                    GatewayResponse::Rejected { tx_id, reason: "mempool full".into() },
                ));
            }
            SubmitOutcome::Inadmissible => {
                report.rejected += 1;
                self.metrics.counter("gateway.inadmissible", 1);
                responses.push((
                    conn,
                    GatewayResponse::Rejected { tx_id, reason: "bad nonce".into() },
                ));
            }
        }
    }

    /// Truncates a block page until the encoded response fits one
    /// gateway frame — the client sees fewer blocks than the tip and
    /// simply re-requests from the next height (a single block larger
    /// than the frame cannot exist: block bodies are bounded well below
    /// [`MAX_FRAME`] by consensus batch limits, but an empty page is
    /// still returned rather than an oversized frame).
    fn bounded_blocks(tip_height: u64, mut blocks: Vec<Block>) -> GatewayResponse {
        // Envelope: tag byte + tip_height u64 + vec length prefix.
        let envelope = 1 + 8 + 4;
        let mut size = envelope + blocks.iter().map(|b| b.encoded().len()).sum::<usize>();
        while size > MAX_FRAME {
            let dropped = blocks.pop().expect("envelope alone fits a frame");
            size -= dropped.encoded().len();
        }
        GatewayResponse::Blocks { tip_height, blocks }
    }

    /// Status lookup order is a durability contract: the committed
    /// receipt is consulted *first*, so a committed transaction keeps
    /// answering `Committed` even after its id ages out of the bounded
    /// seen-window — the window only widens `Pending`, it never gates
    /// `Committed`. Regression-tested in `tests/gateway.rs`
    /// (`committed_status_survives_seen_window_eviction`).
    fn status_of(
        backend: &dyn GatewayBackend,
        seen: &SeenWindow,
        tx_id: Hash256,
    ) -> GatewayResponse {
        if let Some(receipt) = backend.find_receipt(&tx_id) {
            GatewayResponse::Committed { receipt }
        } else if backend.is_pending(&tx_id) || seen.contains(&tx_id) {
            GatewayResponse::Pending { tx_id }
        } else {
            GatewayResponse::Unknown { tx_id }
        }
    }

    /// Stops the acceptor and reader threads and closes the listener.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.writers.lock().expect("writer map").clear();
    }
}

impl Drop for GatewayServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medchain_chain::tx::TxPayload;
    use medchain_chain::AuthorityKey;

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let mut frames = FrameBuffer::new();
        let payload = b"hello frame".to_vec();
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        // Feed one byte at a time: no frame until the last byte lands.
        for (i, byte) in wire.iter().enumerate() {
            frames.extend(&[*byte]);
            let frame = frames.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert!(frame.is_none(), "premature frame at byte {i}");
            } else {
                assert_eq!(frame.unwrap(), payload);
            }
        }
        assert!(frames.next_frame().unwrap().is_none());
    }

    #[test]
    fn frame_buffer_rejects_oversized_frames() {
        let mut frames = FrameBuffer::new();
        frames.extend(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert!(frames.next_frame().is_err());
    }

    #[test]
    fn requests_and_responses_round_trip_through_codec() {
        let key = AuthorityKey::from_seed(7);
        let tx = Transaction::new(
            key.address(),
            0,
            TxPayload::Anchor { root: Hash256::digest(b"r"), label: "l".into() },
            1_000,
        )
        .signed(&key);
        let requests = [
            GatewayRequest::Submit { tx: tx.clone(), priority: true },
            GatewayRequest::Status { tx_id: tx.id() },
            GatewayRequest::XsStatus { xid: Hash256::digest(b"xid") },
            GatewayRequest::Query { key: LeafKey::Anchor("l".into()), shard: None },
            GatewayRequest::Query {
                key: LeafKey::Account(key.address()),
                shard: Some(ShardId(1)),
            },
        ];
        for request in requests {
            assert_eq!(GatewayRequest::decoded(&request.encoded()).unwrap(), request);
        }
        let responses = [
            GatewayResponse::Accepted {
                tx_id: tx.id(),
                shard: ShardId(3),
                lane: Lane::Priority,
            },
            GatewayResponse::Rejected { tx_id: tx.id(), reason: "bad signature".into() },
            GatewayResponse::Pending { tx_id: tx.id() },
            GatewayResponse::Unknown { tx_id: tx.id() },
            GatewayResponse::XsDecision {
                xid: Hash256::digest(b"xid"),
                decided: true,
                commit: false,
                receipt: None,
            },
            GatewayResponse::Proven {
                proof: {
                    let mut state = medchain_chain::WorldState::new();
                    state.set_anchor("l", Hash256::digest(b"r"));
                    let tree = medchain_chain::StateTree::from_state(&state);
                    let query = LeafKey::Anchor("l".into());
                    StateProof {
                        key: query.clone(),
                        value: state.leaf_value(&query),
                        proof: tree.prove(&query),
                        state_root: tree.versioned_root(),
                        block_id: Hash256::digest(b"block"),
                        height: 9,
                        shard: ShardId(0),
                    }
                },
            },
        ];
        for response in responses {
            assert_eq!(GatewayResponse::decoded(&response.encoded()).unwrap(), response);
        }
    }

    #[test]
    fn verified_cache_is_bounded_and_take_removes() {
        let key = AuthorityKey::from_seed(7);
        let mk = |n: u64| {
            Transaction::new(
                key.address(),
                n,
                TxPayload::Transfer { to: key.address(), amount: 1 },
                100,
            )
            .signed(&key)
        };
        let mut cache = VerifiedCache::new(2);
        let txs: Vec<Transaction> = (0..3).map(mk).collect();
        cache.insert(txs[0].id(), txs[0].clone());
        cache.insert(txs[1].id(), txs[1].clone());
        cache.insert(txs[2].id(), txs[2].clone()); // evicts txs[0]
        assert!(cache.take(&txs[0].id()).is_none(), "FIFO-evicted");
        let cached = cache.take(&txs[1].id()).expect("still cached");
        assert_eq!(cached, txs[1]);
        assert!(cache.take(&txs[1].id()).is_none(), "take removes");
        assert!(cache.take(&txs[2].id()).is_some());
    }

    #[test]
    fn seen_window_is_bounded_fifo() {
        let mut seen = SeenWindow::new(2);
        let ids: Vec<Hash256> = (0u8..3).map(|i| Hash256::digest(&[i])).collect();
        seen.insert(ids[0]);
        seen.insert(ids[1]);
        assert!(seen.contains(&ids[0]));
        seen.insert(ids[2]); // evicts ids[0]
        assert!(!seen.contains(&ids[0]));
        assert!(seen.contains(&ids[1]));
        assert!(seen.contains(&ids[2]));
    }
}

//! TCP client for the ingress gateway (DESIGN.md §10).
//!
//! [`Client`] speaks the gateway's length-framed canonical-codec
//! protocol: submit a signed transaction, poll its status, and wait for
//! the proof-carrying [`TxReceipt`]. The client **verifies the Merkle
//! inclusion proof locally** before handing a receipt back — a
//! misbehaving gateway can delay a receipt but cannot fake one.

use crate::gateway::{write_frame, FrameBuffer, GatewayRequest, GatewayResponse};
use medchain_chain::auth::key_hash;
use medchain_chain::receipt::TxReceipt;
use medchain_chain::{Hash256, Lane, LeafKey, ShardId, StateProof, Transaction};
use medchain_runtime::codec::{Decode, Encode};
use medchain_storage::{SnapshotChunk, SnapshotManifest};
use std::fmt;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Handle to a submitted-but-not-yet-confirmed transaction — the
/// `submit → PendingTx → TxReceipt` API surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingTx {
    /// The transaction id to poll for.
    pub tx_id: Hash256,
    /// The sub-chain the transaction was routed to.
    pub shard: ShardId,
    /// The lane it was admitted on.
    pub lane: Lane,
}

/// Errors from gateway client operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Socket failure.
    Io(String),
    /// The gateway rejected the submission.
    Rejected {
        /// The rejected transaction.
        tx_id: Hash256,
        /// The gateway's reason.
        reason: String,
    },
    /// No commit within the polling deadline.
    Timeout(Hash256),
    /// The gateway returned a receipt whose Merkle proof does not verify
    /// — never trust it.
    BadProof(Hash256),
    /// The gateway answered something the protocol does not allow here.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "gateway i/o failed: {e}"),
            ClientError::Rejected { tx_id, reason } => {
                write!(f, "gateway rejected {tx_id:?}: {reason}")
            }
            ClientError::Timeout(id) => write!(f, "no commit for {id:?} before deadline"),
            ClientError::BadProof(id) => {
                write!(f, "receipt for {id:?} carries an invalid inclusion proof")
            }
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e.to_string())
    }
}

/// A connected gateway client. Requests and responses are strictly
/// ordered per connection, so each request's answer is simply the next
/// frame.
pub struct Client {
    stream: TcpStream,
    frames: FrameBuffer,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client").finish()
    }
}

impl Client {
    /// Connects to a gateway.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] if the connection fails.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(25)))?;
        Ok(Client { stream, frames: FrameBuffer::new() })
    }

    /// Sends one request and reads its response frame (bounded by
    /// `deadline`).
    fn request(
        &mut self,
        request: &GatewayRequest,
        deadline: Instant,
    ) -> Result<GatewayResponse, ClientError> {
        write_frame(&mut self.stream, &request.encoded())?;
        let mut chunk = [0u8; 8192];
        loop {
            if let Some(payload) = self.frames.next_frame()? {
                return GatewayResponse::decoded(&payload)
                    .map_err(|e| ClientError::Protocol(format!("bad response frame: {e:?}")));
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Io("response deadline exceeded".into()));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Io("gateway closed the connection".into())),
                Ok(n) => self.frames.extend(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Submits a signed transaction, optionally requesting the priority
    /// lane.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Rejected`] if the gateway refused it, or
    /// [`ClientError::Io`] on socket trouble.
    pub fn submit(&mut self, tx: &Transaction, priority: bool) -> Result<PendingTx, ClientError> {
        let tx_id = tx.id();
        let request = GatewayRequest::Submit { tx: tx.clone(), priority };
        match self.request(&request, Instant::now() + Duration::from_secs(10))? {
            GatewayResponse::Accepted { tx_id, shard, lane } => {
                Ok(PendingTx { tx_id, shard, lane })
            }
            GatewayResponse::Rejected { tx_id, reason } => {
                Err(ClientError::Rejected { tx_id, reason })
            }
            // Re-submission of something already known: keep polling it.
            GatewayResponse::Pending { tx_id } => {
                Ok(PendingTx { tx_id, shard: ShardId::default(), lane: Lane::Normal })
            }
            GatewayResponse::Committed { receipt } => Ok(PendingTx {
                tx_id: receipt.tx_id,
                shard: receipt.shard,
                lane: Lane::Normal,
            }),
            _ => Err(ClientError::Protocol(format!("bad reply to Submit of {tx_id:?}"))),
        }
    }

    /// Asks the gateway for its newest streamable snapshot of `shard`
    /// (bootstrap-from-peer, DESIGN.md §14). `None` means the peer has
    /// nothing to offer — fall back to block-by-block catch-up.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] / [`ClientError::Protocol`] on
    /// transport trouble or a non-offer reply.
    pub fn snapshot_manifest(
        &mut self,
        shard: ShardId,
    ) -> Result<Option<SnapshotManifest>, ClientError> {
        match self.request(
            &GatewayRequest::SnapshotInfo { shard },
            Instant::now() + Duration::from_secs(10),
        )? {
            GatewayResponse::SnapshotOffer { manifest } => Ok(manifest),
            other => Err(ClientError::Protocol(format!(
                "unexpected SnapshotInfo reply: {other:?}"
            ))),
        }
    }

    /// Fetches one chunk of an advertised snapshot. `None` means the
    /// peer no longer serves that height — re-request the manifest.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] / [`ClientError::Protocol`] on
    /// transport trouble or a non-chunk reply.
    pub fn snapshot_chunk(
        &mut self,
        shard: ShardId,
        height: u64,
        index: u32,
    ) -> Result<Option<SnapshotChunk>, ClientError> {
        match self.request(
            &GatewayRequest::SnapshotChunk { shard, height, index },
            Instant::now() + Duration::from_secs(10),
        )? {
            GatewayResponse::SnapshotPiece { chunk } => Ok(chunk),
            other => Err(ClientError::Protocol(format!(
                "unexpected SnapshotChunk reply: {other:?}"
            ))),
        }
    }

    /// Fetches a frame-bounded page of committed blocks of `shard` at
    /// and above `height`, plus the peer's tip height (the WAL-tail
    /// catch-up feed; keep paging from the next height until caught
    /// up).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Rejected`] when the peer does not serve
    /// block streaming, [`ClientError::Io`] / [`ClientError::Protocol`]
    /// on transport trouble.
    pub fn blocks_from(
        &mut self,
        shard: ShardId,
        height: u64,
    ) -> Result<(u64, Vec<medchain_chain::Block>), ClientError> {
        match self.request(
            &GatewayRequest::BlocksFrom { shard, height },
            Instant::now() + Duration::from_secs(10),
        )? {
            GatewayResponse::Blocks { tip_height, blocks } => Ok((tip_height, blocks)),
            GatewayResponse::Rejected { reason, .. } => Err(ClientError::Rejected {
                tx_id: Hash256::ZERO,
                reason,
            }),
            other => Err(ClientError::Protocol(format!(
                "unexpected BlocksFrom reply: {other:?}"
            ))),
        }
    }

    /// One coordinator-decision query for cross-shard transaction `xid`
    /// (two-phase commit, DESIGN.md §12). Returns
    /// `Some((commit, decision_receipt))` once decided, `None` while
    /// undecided.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] / [`ClientError::Protocol`] on
    /// transport trouble or a non-decision reply.
    pub fn xs_status(
        &mut self,
        xid: Hash256,
    ) -> Result<Option<(bool, Option<TxReceipt>)>, ClientError> {
        match self.request(
            &GatewayRequest::XsStatus { xid },
            Instant::now() + Duration::from_secs(10),
        )? {
            GatewayResponse::XsDecision { decided: false, .. } => Ok(None),
            GatewayResponse::XsDecision { commit, receipt, .. } => Ok(Some((commit, receipt))),
            other => Err(ClientError::Protocol(format!(
                "unexpected XsStatus reply: {other:?}"
            ))),
        }
    }

    /// Polls until the coordinator decides cross-shard transaction
    /// `xid`, returning the verdict (`true` = commit). When the decision
    /// receipt is retrievable its Merkle proof is verified locally
    /// before the verdict is trusted.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Timeout`] if the deadline passes,
    /// [`ClientError::BadProof`] if the decision receipt does not
    /// verify.
    pub fn wait_xs_decision(
        &mut self,
        xid: Hash256,
        timeout: Duration,
    ) -> Result<bool, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some((commit, receipt)) = self.xs_status(xid)? {
                if let Some(receipt) = receipt {
                    if !receipt.verify() {
                        return Err(ClientError::BadProof(xid));
                    }
                }
                return Ok(commit);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout(xid));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Light-client state read against the key's home shard: asks the
    /// gateway for the value at `key` plus its sparse-Merkle proof, and
    /// **verifies the proof locally** before returning (DESIGN.md §13).
    ///
    /// The returned [`StateProof`] is internally consistent: the path
    /// folds up to the root it carries. A fully trustless caller should
    /// additionally check `proof.verify_against(&root)` with a header
    /// root obtained independently of the gateway.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::BadProof`] (carrying the key hash) when
    /// the gateway's answer does not verify or speaks about a different
    /// key, [`ClientError::Rejected`] when the gateway cannot serve
    /// state proofs.
    pub fn query_proven(&mut self, key: &LeafKey) -> Result<StateProof, ClientError> {
        self.query_proven_on(key, None)
    }

    /// [`Client::query_proven`] pinned to an explicit sub-chain — e.g.
    /// to obtain an absence proof from a shard the key does not route
    /// to. The proof then verifies against *that* shard's tip root.
    ///
    /// # Errors
    ///
    /// As [`Client::query_proven`].
    pub fn query_proven_on(
        &mut self,
        key: &LeafKey,
        shard: Option<ShardId>,
    ) -> Result<StateProof, ClientError> {
        let request = GatewayRequest::Query { key: key.clone(), shard };
        match self.request(&request, Instant::now() + Duration::from_secs(10))? {
            GatewayResponse::Proven { proof } => {
                // Trustless checks: the proof must speak about the key
                // we asked for, come from the shard we pinned (if any),
                // and fold up to the root it names.
                let wrong_key = proof.key != *key;
                let wrong_shard = shard.is_some_and(|s| proof.shard != s);
                if wrong_key || wrong_shard || !proof.verify() {
                    return Err(ClientError::BadProof(key_hash(key)));
                }
                Ok(proof)
            }
            GatewayResponse::Rejected { reason, .. } => Err(ClientError::Rejected {
                tx_id: key_hash(key),
                reason,
            }),
            other => Err(ClientError::Protocol(format!(
                "unexpected Query reply: {other:?}"
            ))),
        }
    }

    /// One status query for `tx_id`.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] / [`ClientError::Protocol`] on
    /// transport trouble.
    pub fn status(&mut self, tx_id: Hash256) -> Result<GatewayResponse, ClientError> {
        self.request(
            &GatewayRequest::Status { tx_id },
            Instant::now() + Duration::from_secs(10),
        )
    }

    /// Polls until the transaction commits and returns its receipt,
    /// **after** verifying the Merkle inclusion proof locally.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Timeout`] if the deadline passes,
    /// [`ClientError::BadProof`] if the gateway's receipt does not
    /// verify.
    pub fn wait_receipt(
        &mut self,
        pending: &PendingTx,
        timeout: Duration,
    ) -> Result<TxReceipt, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.status(pending.tx_id)? {
                GatewayResponse::Committed { receipt } => {
                    // Trustless check: the receipt must prove the id we
                    // submitted under the root it names.
                    if receipt.tx_id != pending.tx_id || !receipt.verify() {
                        return Err(ClientError::BadProof(pending.tx_id));
                    }
                    return Ok(receipt);
                }
                GatewayResponse::Pending { .. } | GatewayResponse::Unknown { .. } => {
                    if Instant::now() >= deadline {
                        return Err(ClientError::Timeout(pending.tx_id));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected status reply: {other:?}"
                    )))
                }
            }
        }
    }
}

//! Baseline computing paradigms (paper §III): Hadoop-style centralized,
//! grid, and cloud computing versus the blockchain distributed parallel
//! architecture — experiment E11.
//!
//! All four paradigms execute the *same* analytics job (a real SHA-256
//! kernel over every record) so wall-clock is comparable; what differs
//! is **where the data goes**: the three classical paradigms
//! "architecturally treat the computing engines and data sets separately
//! … assume that they own all the data sets" — raw records must move to
//! the compute. The blockchain-parallel paradigm moves compute to data;
//! only sufficient statistics travel.

use medchain_chain::net::LatencyModel;
use medchain_chain::Hash256;
use medchain_data::PatientRecord;
use std::time::{Duration, Instant};

/// The compared paradigms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Paradigm {
    /// HDFS-style: ship all records to a central cluster, compute there
    /// with full parallelism.
    HadoopCentralized,
    /// Volunteer grid: independent tasks, records shipped to whichever
    /// node takes the task; heterogeneous (slower) nodes.
    GridComputing,
    /// Elastic VMs: upload once to the cloud, fan out across `k` rented
    /// VMs.
    CloudElastic,
    /// The paper's architecture: compute moves to the data; raw records
    /// never leave their owner.
    BlockchainParallel,
}

impl std::fmt::Display for Paradigm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Paradigm::HadoopCentralized => "hadoop-centralized",
            Paradigm::GridComputing => "grid",
            Paradigm::CloudElastic => "cloud-elastic",
            Paradigm::BlockchainParallel => "blockchain-parallel",
        };
        f.write_str(name)
    }
}

/// Result of one paradigm run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParadigmReport {
    /// Paradigm measured.
    pub paradigm: Paradigm,
    /// Measured compute wall time (real threads, real hashing).
    pub compute_wall: Duration,
    /// Modeled data-transfer time (WAN latency model over bytes moved).
    pub modeled_transfer_ms: u64,
    /// Bytes of data moved off their owner's premises.
    pub bytes_moved: u64,
    /// Raw patient records that left their owner (the privacy metric —
    /// each is a HIPAA-relevant disclosure).
    pub raw_records_moved: u64,
    /// The job's result digest (all paradigms must agree).
    pub result: Hash256,
}

impl ParadigmReport {
    /// Total modeled completion time: transfer + compute.
    pub fn total_ms(&self) -> u64 {
        self.modeled_transfer_ms + self.compute_wall.as_millis() as u64
    }
}

/// Work kernel: hashes each record's canonical bytes `passes` times and
/// folds the digests; the fold is order-independent (XOR) so sharding
/// does not change the result. `slowdown` models slower hardware by
/// burning extra unfolded hashes — the result stays identical.
fn compute_shard(records: &[PatientRecord], passes: u32, slowdown: u32) -> [u8; 32] {
    let mut fold = [0u8; 32];
    for record in records {
        let mut digest = Hash256::digest(&record.canonical_bytes());
        for _ in 1..passes {
            digest = Hash256::digest(&digest.0);
        }
        // Heterogeneous-hardware penalty: extra cycles, same answer.
        let mut burn = digest;
        for _ in 0..passes.saturating_mul(slowdown.saturating_sub(1)) {
            burn = Hash256::digest(&burn.0);
        }
        std::hint::black_box(burn);
        for (f, d) in fold.iter_mut().zip(&digest.0) {
            *f ^= d;
        }
    }
    fold
}

fn fold_results(parts: Vec<[u8; 32]>) -> Hash256 {
    let mut fold = [0u8; 32];
    for part in parts {
        for (f, p) in fold.iter_mut().zip(&part) {
            *f ^= p;
        }
    }
    Hash256(fold)
}

fn parallel_compute(shards: &[&[PatientRecord]], passes: u32, slowdown: u32) -> (Hash256, Duration) {
    let start = Instant::now();
    let parts = medchain_runtime::sync::scoped_map(shards.to_vec(), |shard| {
        compute_shard(shard, passes, slowdown)
    });
    let result = fold_results(parts);
    (result, start.elapsed())
}

fn transfer_ms(bytes: u64, model: &LatencyModel) -> u64 {
    model.base_ms + model.per_kib_ms * bytes.div_ceil(1024)
}

/// Runs the analytics job under `paradigm` over per-site record shards.
///
/// `passes` scales per-record CPU work; the WAN latency model prices the
/// data movement each paradigm requires.
pub fn run_paradigm(
    paradigm: Paradigm,
    site_records: &[Vec<PatientRecord>],
    passes: u32,
) -> ParadigmReport {
    let wan = LatencyModel::wan();
    let record_bytes = |records: &[PatientRecord]| {
        records.iter().map(|r| r.canonical_bytes().len() as u64).sum::<u64>()
    };
    let all_bytes: u64 = site_records.iter().map(|s| record_bytes(s)).sum();
    let all_count: u64 = site_records.iter().map(|s| s.len() as u64).sum();

    match paradigm {
        Paradigm::HadoopCentralized => {
            // All records converge on the central HDFS cluster, which
            // computes with full parallelism (one worker per shard).
            let shards: Vec<&[PatientRecord]> =
                site_records.iter().map(Vec::as_slice).collect();
            let (result, compute_wall) = parallel_compute(&shards, passes, 1);
            ParadigmReport {
                paradigm,
                compute_wall,
                modeled_transfer_ms: transfer_ms(all_bytes, &wan),
                bytes_moved: all_bytes,
                raw_records_moved: all_count,
                result,
            }
        }
        Paradigm::GridComputing => {
            // Independent tasks on volunteer nodes: data shipped per
            // task; volunteer hardware is heterogeneous (2× slower).
            let shards: Vec<&[PatientRecord]> =
                site_records.iter().map(Vec::as_slice).collect();
            let (result, compute_wall) = parallel_compute(&shards, passes, 2);
            ParadigmReport {
                paradigm,
                compute_wall,
                modeled_transfer_ms: transfer_ms(all_bytes, &wan),
                bytes_moved: all_bytes,
                raw_records_moved: all_count,
                result,
            }
        }
        Paradigm::CloudElastic => {
            // One upload to the provider, then elastic fan-out (2× the
            // shard count of VMs — elasticity is the cloud's advantage).
            let mut shards: Vec<&[PatientRecord]> = Vec::new();
            for site in site_records {
                let mid = site.len() / 2;
                shards.push(&site[..mid]);
                shards.push(&site[mid..]);
            }
            let (result, compute_wall) = parallel_compute(&shards, passes, 1);
            ParadigmReport {
                paradigm,
                compute_wall,
                modeled_transfer_ms: transfer_ms(all_bytes, &wan),
                bytes_moved: all_bytes,
                raw_records_moved: all_count,
                result,
            }
        }
        Paradigm::BlockchainParallel => {
            // Compute moves to the data: each site hashes its own shard;
            // only the 32-byte partials travel.
            let shards: Vec<&[PatientRecord]> =
                site_records.iter().map(Vec::as_slice).collect();
            let (result, compute_wall) = parallel_compute(&shards, passes, 1);
            let partial_bytes = (site_records.len() * 32) as u64;
            ParadigmReport {
                paradigm,
                compute_wall,
                modeled_transfer_ms: transfer_ms(partial_bytes, &wan),
                bytes_moved: partial_bytes,
                raw_records_moved: 0,
                result,
            }
        }
    }
}

/// Runs all four paradigms over the same data.
pub fn compare_all(site_records: &[Vec<PatientRecord>], passes: u32) -> Vec<ParadigmReport> {
    [
        Paradigm::HadoopCentralized,
        Paradigm::GridComputing,
        Paradigm::CloudElastic,
        Paradigm::BlockchainParallel,
    ]
    .into_iter()
    .map(|p| run_paradigm(p, site_records, passes))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile};

    fn sites(n: usize, per_site: usize) -> Vec<Vec<PatientRecord>> {
        (0..n)
            .map(|i| {
                CohortGenerator::new(&format!("h{i}"), SiteProfile::varied(i), i as u64).cohort(
                    (i * 10_000) as u64,
                    per_site,
                    &DiseaseModel::stroke(),
                )
            })
            .collect()
    }

    #[test]
    fn all_paradigms_compute_the_same_result() {
        let data = sites(3, 80);
        let reports = compare_all(&data, 2);
        let first = reports[0].result;
        assert!(reports.iter().all(|r| r.result == first), "results diverge");
    }

    #[test]
    fn only_blockchain_parallel_keeps_raw_records_home() {
        let data = sites(4, 50);
        for report in compare_all(&data, 1) {
            match report.paradigm {
                Paradigm::BlockchainParallel => {
                    assert_eq!(report.raw_records_moved, 0);
                    assert!(report.bytes_moved <= 4 * 32);
                }
                _ => {
                    assert_eq!(report.raw_records_moved, 200);
                    assert!(report.bytes_moved > 1_000);
                }
            }
        }
    }

    #[test]
    fn blockchain_parallel_has_least_transfer_time() {
        let data = sites(4, 100);
        let reports = compare_all(&data, 1);
        let bc = reports
            .iter()
            .find(|r| r.paradigm == Paradigm::BlockchainParallel)
            .unwrap();
        for other in &reports {
            if other.paradigm != Paradigm::BlockchainParallel {
                assert!(bc.modeled_transfer_ms < other.modeled_transfer_ms);
            }
        }
    }

    #[test]
    fn grid_is_slower_than_hadoop_compute() {
        let data = sites(3, 200);
        let hadoop = run_paradigm(Paradigm::HadoopCentralized, &data, 20);
        let grid = run_paradigm(Paradigm::GridComputing, &data, 20);
        assert!(grid.compute_wall >= hadoop.compute_wall);
    }
}

//! End-to-end pipelines over the medical network: the full Figs. 5/6
//! flow (on-chain policy gate → decompose → local execution → compose),
//! on-chain-audited federated training, and clinical-trial operations.

use crate::network::{MedicalNetwork, NetworkError};
use medchain_chain::{Hash256, TxPayload};
use medchain_contracts::decode_args;
use medchain_contracts::value::Value;
use medchain_learning::linalg::weighted_average;
use medchain_learning::metrics::auc;
use medchain_learning::LogisticRegression;
use medchain_query::{compose, plan, Computation, QueryAnswer, QueryVector, SiteOutput};
use std::fmt;

/// Report from one gated distributed query (experiment E7).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPipelineReport {
    /// Sites whose data contract permitted the request.
    pub permitted: usize,
    /// Sites that denied.
    pub denied: usize,
    /// Bytes returned by sites (results only — never raw records unless
    /// the query explicitly fetches rows).
    pub bytes_returned: u64,
    /// Simulated latency of the on-chain gating in ms.
    pub chain_latency_ms: u64,
}

/// Errors from pipelines.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Underlying network failure.
    Network(NetworkError),
    /// Every site denied the request.
    AllDenied,
    /// Composition failed.
    Compose(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Network(e) => write!(f, "{e}"),
            PipelineError::AllDenied => f.write_str("every site denied the data request"),
            PipelineError::Compose(e) => write!(f, "compose failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<NetworkError> for PipelineError {
    fn from(e: NetworkError) -> Self {
        PipelineError::Network(e)
    }
}

/// Runs a query through the full transformed pipeline:
///
/// 1. the requester's data-contract `request` is committed per site (the
///    on-chain access-policy gate, audited permit or deny);
/// 2. permitted sites execute the decomposed task against their local
///    records;
/// 3. outputs are composed into the global answer, whose hash is
///    anchored on-chain.
///
/// # Errors
///
/// Returns [`PipelineError`] on network failure, universal denial, or
/// composition mismatch.
pub fn run_query(
    net: &mut MedicalNetwork,
    requester_site: usize,
    query: &QueryVector,
) -> Result<(QueryAnswer, QueryPipelineReport), PipelineError> {
    let data_contract = net.contracts().data;
    let sim_before = net.ledger().tip().header.timestamp_ms;

    // Phase 1: on-chain permission per site.
    let mut request_ids = Vec::new();
    for i in 0..net.site_count() {
        let label = net.site(i).hosted_label().to_string();
        let id = net.invoke_as(
            requester_site,
            data_contract,
            "request",
            &[Value::str(&label), Value::Int(query.purpose.code())],
            50_000,
        )?;
        request_ids.push((i, id));
    }
    net.advance(2).map_err(PipelineError::Network)?;

    let mut permitted = Vec::new();
    let mut denied = 0usize;
    for (site, id) in request_ids {
        let receipt = net
            .receipt(&id)
            .ok_or(PipelineError::Network(NetworkError::MissingReceipt(id)))?;
        let values = decode_args(&receipt.output)
            .map_err(|e| PipelineError::Compose(e.to_string()))?;
        if values.first().and_then(|v| v.as_int().ok()) == Some(1) {
            permitted.push(site);
        } else {
            denied += 1;
        }
    }
    if permitted.is_empty() {
        return Err(PipelineError::AllDenied);
    }

    // Phase 2: decomposed local execution at permitted sites.
    let site_names: Vec<String> =
        permitted.iter().map(|&i| net.site(i).name().to_string()).collect();
    let tasks = plan(query, &site_names);
    let outputs: Vec<SiteOutput> = permitted
        .iter()
        .zip(&tasks)
        .map(|(&i, task)| net.site(i).execute_task(task, None))
        .collect();
    let bytes_returned: u64 = outputs.iter().map(|o| o.wire_size() as u64).sum();

    // Phase 3: compose and anchor the answer.
    let answer =
        compose(query, outputs).map_err(|e| PipelineError::Compose(e.to_string()))?;
    let answer_hash = Hash256::digest(format!("{answer:?}").as_bytes());
    let anchor = net.submit_as(
        requester_site,
        TxPayload::Anchor {
            root: answer_hash,
            label: format!("answers/{}", net.ledger().tip().header.height),
        },
        1_000,
    )?;
    net.commit_and_check(anchor)?;

    let report = QueryPipelineReport {
        permitted: permitted.len(),
        denied,
        bytes_returned,
        chain_latency_ms: net
            .ledger()
            .tip()
            .header
            .timestamp_ms
            .saturating_sub(sim_before),
    };
    let metrics = net.metrics();
    metrics.counter("query.pipeline_runs", 1);
    metrics.counter("query.site_tasks", report.permitted as u64);
    metrics.counter("query.denied_sites", report.denied as u64);
    metrics.counter("query.bytes_returned", report.bytes_returned);
    Ok((answer, report))
}

/// One round's record in an audited federated run.
#[derive(Debug, Clone, PartialEq)]
pub struct FedRound {
    /// Round number (1-based).
    pub round: usize,
    /// Hash of the global parameters after the round (anchored).
    pub params_hash: Hash256,
    /// Held-out AUC, when an eval set is supplied.
    pub eval_auc: Option<f64>,
}

/// Report from an on-chain-audited federated training run (E8 through
/// the full architecture).
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedPipelineReport {
    /// Final global parameters.
    pub params: Vec<f64>,
    /// Per-round audit records.
    pub rounds: Vec<FedRound>,
    /// Model bytes moved (up + down) across all rounds.
    pub model_bytes: u64,
    /// Bytes centralizing the raw shards would have moved.
    pub raw_bytes_equivalent: u64,
}

/// Trains a federated logistic model for `outcome_code` across every
/// site, anchoring each round's global parameters on-chain so the whole
/// training run is auditable.
///
/// # Errors
///
/// Returns [`PipelineError`] if anchoring fails.
pub fn train_federated(
    net: &mut MedicalNetwork,
    requester_site: usize,
    outcome_code: &str,
    rounds: usize,
    eval: Option<&medchain_data::Dataset>,
) -> Result<FederatedPipelineReport, PipelineError> {
    let query = QueryVector::fetch_all().with_computation(Computation::TrainModel {
        outcome_code: outcome_code.to_string(),
        rounds,
    });
    let site_names = net.site_names();
    let tasks = plan(&query, &site_names);
    let dim = 10usize;
    let mut global = vec![0.0f64; dim + 1];
    let mut report = FederatedPipelineReport {
        params: Vec::new(),
        rounds: Vec::with_capacity(rounds),
        model_bytes: 0,
        raw_bytes_equivalent: (0..net.site_count())
            .map(|i| {
                net.site(i)
                    .records()
                    .iter()
                    .map(|r| r.canonical_bytes().len() as u64)
                    .sum::<u64>()
            })
            .sum(),
    };
    for round in 1..=rounds {
        let mut params = Vec::new();
        let mut weights = Vec::new();
        for (i, task) in tasks.iter().enumerate() {
            match net.site(i).execute_task(task, Some(&global)) {
                SiteOutput::ModelParams { params: p, n } if n > 0 => {
                    report.model_bytes += (p.len() * 8) as u64 * 2; // up + down
                    params.push(p);
                    weights.push(n as f64);
                }
                _ => {}
            }
        }
        if !params.is_empty() {
            global = weighted_average(&params, &weights);
        }
        let params_hash = Hash256::digest(
            &global.iter().flat_map(|f| f.to_le_bytes()).collect::<Vec<u8>>(),
        );
        let anchor = net.submit_as(
            requester_site,
            TxPayload::Anchor {
                root: params_hash,
                label: format!("fedavg/{outcome_code}/round-{round}"),
            },
            1_000,
        )?;
        net.commit_and_check(anchor)?;
        let eval_auc = eval.map(|test| {
            let mut model = LogisticRegression::new(dim);
            model.set_params(&global);
            auc(&model.predict(test), &test.labels)
        });
        report.rounds.push(FedRound { round, params_hash, eval_auc });
    }
    report.params = global;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use medchain_contracts::policy::Purpose;
    use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile, STROKE_CODE};
    use medchain_data::Dataset;
    use medchain_learning::Aggregate;
    use medchain_query::cohorts;

    fn network(sites: usize, per_site: usize) -> MedicalNetwork {
        let mut builder = MedicalNetwork::builder().seed(7);
        for i in 0..sites {
            let records =
                CohortGenerator::new(&format!("h{i}"), SiteProfile::varied(i), 40 + i as u64)
                    .cohort((i * 10_000) as u64, per_site, &DiseaseModel::stroke());
            builder = builder.site(&format!("hospital-{i}"), records);
        }
        builder.build().unwrap()
    }

    #[test]
    fn gated_query_counts_smokers_across_permitted_sites() {
        let mut net = network(3, 120);
        let researcher = net.site(2).address();
        net.grant_all(researcher, Purpose::Research).unwrap();
        let query = QueryVector::fetch_all()
            .with_cohort(cohorts::smokers())
            .with_computation(Computation::Aggregates(vec![Aggregate::Count]));
        let (answer, report) = run_query(&mut net, 2, &query).unwrap();
        assert_eq!(report.permitted, 3);
        assert_eq!(report.denied, 0);
        match answer {
            QueryAnswer::Aggregates(values) => {
                let count = match &values[0] {
                    medchain_learning::AggregateValue::Scalar(c) => *c,
                    other => panic!("{other:?}"),
                };
                assert!(count > 0.0 && count < 360.0);
            }
            other => panic!("{other:?}"),
        }
        assert!(report.chain_latency_ms > 0);
    }

    #[test]
    fn ungranted_query_is_fully_denied() {
        let mut net = network(2, 60);
        let query = QueryVector::fetch_all()
            .with_computation(Computation::Aggregates(vec![Aggregate::Count]));
        // Site 1 requests without any grant: owner(site0) denies site1's
        // request on hospital-0/emr; site1 owns hospital-1/emr so that
        // one is permitted (owners always may access their own data).
        let (_, report) = run_query(&mut net, 1, &query).unwrap();
        assert_eq!(report.permitted, 1);
        assert_eq!(report.denied, 1);
    }

    #[test]
    fn federated_training_is_audited_and_learns() {
        let mut net = network(3, 400);
        let eval_records = CohortGenerator::new("eval", SiteProfile::default(), 999).cohort(
            900_000,
            1_000,
            &DiseaseModel::stroke(),
        );
        let eval = Dataset::from_records(&eval_records, STROKE_CODE);
        let report = train_federated(&mut net, 0, STROKE_CODE, 6, Some(&eval)).unwrap();
        assert_eq!(report.rounds.len(), 6);
        let final_auc = report.rounds.last().unwrap().eval_auc.unwrap();
        assert!(final_auc > 0.65, "federated pipeline AUC {final_auc}");
        // Every round anchored on-chain.
        for (i, round) in report.rounds.iter().enumerate() {
            let label = format!("fedavg/{STROKE_CODE}/round-{}", i + 1);
            assert_eq!(net.ledger().state().anchor(&label), Some(round.params_hash));
        }
        // Model traffic ≪ raw centralization.
        assert!(report.raw_bytes_equivalent > report.model_bytes);
    }
}

/// Result of the regulator's integrity sweep (Fig. 2's FDA node acting
/// as the trusted auditor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdaSweepReport {
    /// Datasets whose presented records matched their on-chain anchors.
    pub datasets_intact: usize,
    /// Datasets that failed anchor verification.
    pub datasets_tampered: usize,
    /// Datasets with no anchor on-chain.
    pub datasets_unanchored: usize,
    /// Hash-chain length of committed blocks verified (parent links).
    pub blocks_verified: u64,
}

/// The FDA node's periodic sweep: re-verifies every hospital dataset
/// against its Merkle anchor and walks the block hash chain. Read-only —
/// the regulator needs no cooperation from the sites beyond the data
/// they already present for audit.
pub fn fda_integrity_sweep(net: &MedicalNetwork) -> FdaSweepReport {
    let state = net.ledger().state();
    let mut report = FdaSweepReport {
        datasets_intact: 0,
        datasets_tampered: 0,
        datasets_unanchored: 0,
        blocks_verified: 0,
    };
    for i in 0..net.site_count() {
        let site = net.site(i);
        let verdict = medchain_offchain::verify_against_chain(
            state,
            site.hosted_label(),
            site.records().iter().map(medchain_data::PatientRecord::canonical_bytes),
        );
        match verdict {
            medchain_offchain::IntegrityVerdict::Intact => report.datasets_intact += 1,
            medchain_offchain::IntegrityVerdict::Tampered { .. } => {
                report.datasets_tampered += 1
            }
            medchain_offchain::IntegrityVerdict::NotAnchored => {
                report.datasets_unanchored += 1
            }
        }
    }
    // Walk the chain: every block's parent pointer must match.
    let blocks = net.ledger().blocks();
    for pair in blocks.windows(2) {
        assert_eq!(pair[1].header.parent, pair[0].id(), "broken chain");
        report.blocks_verified += 1;
    }
    report
}

/// Report from a policy-gated distributed GWAS (paper §II's genomic
/// analytics, run without any genome leaving its hospital).
#[derive(Debug, Clone, PartialEq)]
pub struct GwasPipelineReport {
    /// Sites that permitted the genomic query.
    pub permitted: usize,
    /// Sites that denied.
    pub denied: usize,
    /// Genotyped cases across permitted sites.
    pub cases: u64,
    /// Genotyped controls across permitted sites.
    pub controls: u64,
    /// Bytes of count tables that crossed the wire.
    pub bytes_returned: u64,
}

/// Runs a genome-wide association study across the consortium: per-site
/// data-contract gating, local allele tabulation, exact composition of
/// the count tables, and an on-chain anchor of the result.
///
/// # Errors
///
/// Returns [`PipelineError`] on network failure or universal denial.
pub fn run_gwas(
    net: &mut MedicalNetwork,
    requester_site: usize,
    outcome_code: &str,
    purpose: medchain_contracts::policy::Purpose,
) -> Result<(Vec<medchain_data::genomics::Association>, GwasPipelineReport), PipelineError> {
    use medchain_data::genomics::{compose as gwas_compose, map_site, GwasPartial};

    let data_contract = net.contracts().data;
    // Phase 1: policy gate per site.
    let mut request_ids = Vec::new();
    for i in 0..net.site_count() {
        let label = net.site(i).hosted_label().to_string();
        let id = net.invoke_as(
            requester_site,
            data_contract,
            "request",
            &[Value::str(&label), Value::Int(purpose.code())],
            50_000,
        )?;
        request_ids.push((i, id));
    }
    net.advance(2).map_err(PipelineError::Network)?;

    let mut permitted = Vec::new();
    let mut denied = 0usize;
    for (site, id) in request_ids {
        let receipt = net
            .receipt(&id)
            .ok_or(PipelineError::Network(NetworkError::MissingReceipt(id)))?;
        let values = decode_args(&receipt.output)
            .map_err(|e| PipelineError::Compose(e.to_string()))?;
        if values.first().and_then(|v| v.as_int().ok()) == Some(1) {
            permitted.push(site);
        } else {
            denied += 1;
        }
    }
    if permitted.is_empty() {
        return Err(PipelineError::AllDenied);
    }

    // Phase 2: local tabulation at permitted sites (genomes stay put).
    let partials: Vec<GwasPartial> = permitted
        .iter()
        .map(|&i| map_site(net.site(i).records(), outcome_code))
        .collect();
    let bytes_returned: u64 = partials.iter().map(|p| p.wire_size() as u64).sum();
    let cases = partials.iter().map(|p| p.cases).sum();
    let controls = partials.iter().map(|p| p.controls).sum();

    // Phase 3: compose and anchor.
    let associations = gwas_compose(&partials);
    let mut digest_material = Vec::new();
    for a in &associations {
        digest_material.extend_from_slice(&(a.snp as u64).to_le_bytes());
        digest_material.extend_from_slice(&a.chi_square.to_le_bytes());
    }
    let anchor = net.submit_as(
        requester_site,
        TxPayload::Anchor {
            root: Hash256::digest(&digest_material),
            label: format!("gwas/{outcome_code}/{}", net.ledger().tip().header.height),
        },
        1_000,
    )?;
    net.commit_and_check(anchor)?;

    let report = GwasPipelineReport {
        permitted: permitted.len(),
        denied,
        cases,
        controls,
        bytes_returned,
    };
    Ok((associations, report))
}

//! A local site: one hospital or service provider's premise (Fig. 6).
//!
//! A site owns data that never leaves it, a signing identity in the
//! consortium, the per-node off-chain control code of Fig. 1, and the
//! compute to run analytics next to its data.

use medchain_chain::{Address, AuthorityKey};
use medchain_data::dataset::Dataset;
use medchain_data::PatientRecord;
use medchain_offchain::{AnchoredArtifact, ControlNode, Tool};
use medchain_query::{execute_local, SiteOutput, SiteTask};
use std::sync::Arc;

/// One hospital / provider site.
pub struct Site {
    name: String,
    key: AuthorityKey,
    control: ControlNode,
    records: Arc<Vec<PatientRecord>>,
    hosted_label: String,
}

impl std::fmt::Debug for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Site")
            .field("name", &self.name)
            .field("records", &self.records.len())
            .field("hosted_label", &self.hosted_label)
            .finish()
    }
}

impl Site {
    /// Creates a site hosting `records` under `<name>/emr`.
    pub fn new(name: &str, key: AuthorityKey, records: Vec<PatientRecord>) -> Site {
        let hosted_label = format!("{name}/emr");
        let mut control = ControlNode::new(name);
        control.host_dataset(&hosted_label);
        let records = Arc::new(records);
        // Local-data oracle backend: serves record count + canonical bytes
        // length so control-plane handlers can respond without the records
        // ever entering the chain layer.
        let backend_records = records.clone();
        control.oracle_mut().register(
            "local-data",
            Arc::new(
                move |_method: &str,
                      _params: &[medchain_contracts::value::Value]|
                      -> Result<Vec<medchain_contracts::value::Value>, medchain_offchain::ToolError> {
                    Ok(backend_records
                        .iter()
                        .take(64)
                        .map(|r| {
                            medchain_contracts::value::Value::Int(
                                r.canonical_bytes().len() as i64
                            )
                        })
                        .collect())
                },
            ),
        );
        Site { name: name.to_string(), key, control, records, hosted_label }
    }

    /// Site name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Consortium address.
    pub fn address(&self) -> Address {
        self.key.address()
    }

    /// Signing key.
    pub fn key(&self) -> &AuthorityKey {
        &self.key
    }

    /// The label of the hosted EMR dataset.
    pub fn hosted_label(&self) -> &str {
        &self.hosted_label
    }

    /// The locally resident records (never shipped; exposed for local
    /// execution and tests).
    pub fn records(&self) -> &[PatientRecord] {
        &self.records
    }

    /// The per-site off-chain control code.
    pub fn control(&self) -> &ControlNode {
        &self.control
    }

    /// Mutable control-code access (tool installation, stepping).
    pub fn control_mut(&mut self) -> &mut ControlNode {
        &mut self.control
    }

    /// Installs an analytics tool at this site.
    pub fn install_tool(&mut self, tool: Tool) {
        self.control.install_tool(tool);
    }

    /// Builds the Merkle anchor artifact for the hosted records.
    pub fn anchor_artifact(&self) -> AnchoredArtifact {
        AnchoredArtifact::new(
            &self.hosted_label,
            self.records.iter().map(PatientRecord::canonical_bytes),
        )
    }

    /// Executes a decomposed query task against the local records —
    /// move-compute-to-data (Fig. 6).
    pub fn execute_task(&self, task: &SiteTask, warm_start: Option<&[f64]>) -> SiteOutput {
        execute_local(task, &self.records, warm_start)
    }

    /// The site's records as a labelled learning dataset.
    pub fn dataset(&self, outcome_code: &str) -> Dataset {
        Dataset::from_records(&self.records, outcome_code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile, STROKE_CODE};
    use medchain_query::QueryVector;

    fn site() -> Site {
        let records = CohortGenerator::new("hospital-a", SiteProfile::default(), 3).cohort(
            0,
            150,
            &DiseaseModel::stroke(),
        );
        Site::new("hospital-a", AuthorityKey::from_seed(1), records)
    }

    #[test]
    fn site_hosts_its_label() {
        let s = site();
        assert_eq!(s.hosted_label(), "hospital-a/emr");
        assert!(s.control().hosts("hospital-a/emr"));
        assert_eq!(s.records().len(), 150);
    }

    #[test]
    fn anchor_covers_all_records() {
        let s = site();
        let artifact = s.anchor_artifact();
        assert_eq!(artifact.record_count(), 150);
        assert_eq!(artifact.label(), "hospital-a/emr");
    }

    #[test]
    fn task_execution_runs_locally() {
        let s = site();
        let task = SiteTask { site: "hospital-a".into(), query: QueryVector::fetch_all() };
        match s.execute_task(&task, None) {
            SiteOutput::Rows(result) => assert_eq!(result.rows.len(), 150),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dataset_extraction() {
        let d = site().dataset(STROKE_CODE);
        assert_eq!(d.len(), 150);
        assert_eq!(d.dim(), 10);
    }
}

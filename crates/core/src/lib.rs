//! # medchain — blockchain as a distributed parallel computing
//! architecture for precision medicine
//!
//! The core crate of the reproduction of Shae & Tsai (ICDCS 2018): a
//! permissioned medical consortium ([`network::MedicalNetwork`], Fig. 2)
//! whose on-chain smart contracts are light-weight access-policy control
//! points, with per-site off-chain control code ([`site::Site`],
//! Figs. 1/6) moving computation to locally resident data. The
//! [`modes`] module realizes the paper's headline comparison —
//! duplicated smart-contract computing versus the transformed
//! distributed-parallel architecture — and [`paradigms`] implements the
//! Hadoop/Grid/Cloud comparison of §III.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod modes;
pub mod network;
pub mod paradigms;
pub mod pipeline;
pub mod sharded;
pub mod site;

pub use modes::{
    run_duplicated, run_duplicated_metered, run_sharded, run_sharded_consensus,
    run_sharded_consensus_metered, run_sharded_metered, run_transformed,
    run_transformed_metered, ExecutionMode, ModeReport,
};
pub use network::{
    ContractAddresses, MedicalNetwork, NetworkBuilder, NetworkError, TransportKind,
};
pub use paradigms::{compare_all, run_paradigm, Paradigm, ParadigmReport};
pub use pipeline::{
    fda_integrity_sweep, run_gwas, run_query, train_federated, FdaSweepReport,
    FederatedPipelineReport, GwasPipelineReport, QueryPipelineReport,
};
pub use sharded::ShardedNetwork;
pub use site::Site;

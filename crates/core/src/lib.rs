//! # medchain — blockchain as a distributed parallel computing
//! architecture for precision medicine
//!
//! The core crate of the reproduction of Shae & Tsai (ICDCS 2018): a
//! permissioned medical consortium ([`network::MedicalNetwork`], Fig. 2)
//! whose on-chain smart contracts are light-weight access-policy control
//! points, with per-site off-chain control code ([`site::Site`],
//! Figs. 1/6) moving computation to locally resident data. The
//! [`modes`] module realizes the paper's headline comparison —
//! duplicated smart-contract computing versus the transformed
//! distributed-parallel architecture — and [`paradigms`] implements the
//! Hadoop/Grid/Cloud comparison of §III.
//!
//! Client-facing ingress (DESIGN.md §10) lives in [`gateway`] (the TCP
//! front-end with batched signature verification and priority lanes),
//! [`client`] (the `submit → PendingTx → TxReceipt` surface with local
//! proof verification), and [`loadgen`] (the open-loop million-user
//! load generator).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bootstrap;
pub mod client;
pub mod gateway;
pub mod loadgen;
pub mod modes;
pub mod network;
pub mod paradigms;
pub mod pipeline;
pub mod sharded;
pub mod site;

pub use bootstrap::{BootstrapError, BootstrapReport, BootstrapSource, SnapshotPeer};
pub use client::{Client, ClientError, PendingTx};
pub use gateway::{
    GatewayBackend, GatewayConfig, GatewayRequest, GatewayResponse, GatewayServer, PumpReport,
};
pub use loadgen::{run_sessions, LoadConfig, LoadReport};
pub use modes::{
    run_duplicated, run_duplicated_metered, run_sharded, run_sharded_consensus,
    run_sharded_consensus_metered, run_sharded_metered, run_transformed,
    run_transformed_metered, ExecutionMode, ModeReport,
};
pub use network::{
    ContractAddresses, MedicalNetwork, NetworkBuilder, NetworkError, TransportKind,
};
pub use paradigms::{compare_all, run_paradigm, Paradigm, ParadigmReport};
pub use pipeline::{
    fda_integrity_sweep, run_gwas, run_query, train_federated, FdaSweepReport,
    FederatedPipelineReport, GwasPipelineReport, QueryPipelineReport,
};
pub use sharded::{ShardedNetwork, XsResolution, XsTransfer};
pub use site::Site;

//! The global medical blockchain network (paper Fig. 2).
//!
//! N hospital sites form a proof-of-authority consortium. Every node
//! runs the identical standard contracts (data / analytics / trial —
//! Fig. 4); each site's off-chain control code makes those identical
//! contracts drive *different* local computation (Fig. 1). The network
//! object owns the simulated consensus cluster, the sites with their
//! locally resident data, transaction submission with nonce tracking,
//! and the control-plane cycle.

use crate::bootstrap::{stream_into, BootstrapSource, SnapshotPeer};
use crate::client::PendingTx;
use crate::gateway::{GatewayBackend, GatewayConfig, GatewayServer, PumpReport};
use crate::site::Site;
use medchain_chain::consensus::poa::{PoaEngine, PoaMsg};
use medchain_chain::consensus::{Application, Cluster, RunReport};
use medchain_chain::ledger::contract_address;
use medchain_chain::net::{SimTransport, TcpTransport, Transport};
use medchain_chain::node::{ChainApp, SubmitOutcome};
use medchain_chain::receipt::TxReceipt;
use medchain_chain::{
    Address, AuthorityKey, Block, Hash256, KeyRegistry, Lane, LeafKey, Receipt, ShardId,
    StateCacheConfig, StateProof, Transaction, TxPayload,
};
use medchain_contracts::native::native_manifest;
use medchain_contracts::policy::Purpose;
use medchain_contracts::runtime::{call_data, Runtime};
use medchain_contracts::value::Value;
use medchain_data::PatientRecord;
use medchain_offchain::ActionIntent;
use medchain_runtime::metrics::Metrics;
use medchain_storage::{
    stream, DiskStore, LatestState, PageStore, PagedAccounts, PagedNodes, SnapshotChunk,
    SnapshotManifest, StorageConfig, ACCOUNTS_PER_PAGE,
};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Addresses of the three standard contracts after deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContractAddresses {
    /// The data contract (ownership, policy, access requests).
    pub data: Address,
    /// The analytics contract (tools, tasks, results).
    pub analytics: Address,
    /// The clinical-trial contract.
    pub trial: Address,
}

/// Which transport carries the consortium's consensus traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Deterministic discrete-event simulator (logical time, seeded).
    #[default]
    Sim,
    /// Real TCP sockets on loopback (wall-clock time, real bytes).
    Tcp,
}

impl TransportKind {
    /// Reads the `MEDCHAIN_TRANSPORT` environment variable: `tcp` (any
    /// case) selects [`TransportKind::Tcp`], everything else — including
    /// an unset variable — the simulator.
    pub fn from_env() -> TransportKind {
        match std::env::var("MEDCHAIN_TRANSPORT") {
            Ok(v) if v.eq_ignore_ascii_case("tcp") => TransportKind::Tcp,
            _ => TransportKind::Sim,
        }
    }

    /// Human-readable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TransportKind::Sim => "sim",
            TransportKind::Tcp => "tcp",
        }
    }
}

/// Errors from network operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// Consensus failed to reach the requested height in time.
    ConsensusStalled {
        /// Height that was requested.
        target: u64,
        /// Height actually reached.
        reached: u64,
    },
    /// A transaction's receipt reported failure.
    TxFailed {
        /// The failed transaction.
        tx_id: Hash256,
        /// Receipt error text.
        error: String,
    },
    /// A receipt was missing after commit.
    MissingReceipt(Hash256),
    /// Site index out of range.
    NoSuchSite(usize),
    /// The requested transport could not be brought up (e.g. socket
    /// bind failure).
    TransportInit(String),
    /// Durable storage failed to open, recover, or resume consistently.
    Storage(String),
    /// A cross-link failed verification against the shard's actual
    /// sub-chain, or a sharding invariant was violated (DESIGN.md §9).
    CrossLink(String),
    /// Admission refused a transaction (full pool, bad nonce, bad
    /// signature).
    Rejected {
        /// The refused transaction.
        tx_id: Hash256,
        /// Why admission failed.
        reason: String,
    },
    /// A committed transaction's receipt proof failed to verify against
    /// the block's transaction root — should be impossible on an honest
    /// node and always worth surfacing loudly.
    ReceiptProof(Hash256),
    /// The ingress gateway could not be started or is not configured.
    Gateway(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::ConsensusStalled { target, reached } => {
                write!(f, "consensus stalled at height {reached} (target {target})")
            }
            NetworkError::TxFailed { tx_id, error } => {
                write!(f, "transaction {tx_id:?} failed: {error}")
            }
            NetworkError::MissingReceipt(id) => write!(f, "no receipt for {id:?}"),
            NetworkError::NoSuchSite(i) => write!(f, "no site with index {i}"),
            NetworkError::TransportInit(e) => write!(f, "transport init failed: {e}"),
            NetworkError::Storage(e) => write!(f, "storage failed: {e}"),
            NetworkError::CrossLink(e) => write!(f, "cross-link violation: {e}"),
            NetworkError::Rejected { tx_id, reason } => {
                write!(f, "admission rejected {tx_id:?}: {reason}")
            }
            NetworkError::ReceiptProof(id) => {
                write!(f, "receipt proof for {id:?} fails against the committed root")
            }
            NetworkError::Gateway(e) => write!(f, "gateway: {e}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// The one builder for both network shapes — a monolithic
/// [`MedicalNetwork`] ([`NetworkBuilder::build`]) or a
/// [`crate::sharded::ShardedNetwork`]
/// ([`NetworkBuilder::build_sharded`]).
///
/// Every option composes with every other, in any order:
///
/// - [`NetworkBuilder::site`] — add a hospital site (required, ≥ 1)
/// - [`NetworkBuilder::shards`] — split consensus into `k` committees
///   (only `build_sharded` honors it)
/// - [`NetworkBuilder::storage`] / [`NetworkBuilder::storage_with`] —
///   durable per-site chains, resumed when the directory already holds
///   one
/// - [`NetworkBuilder::metrics`] — install a metrics sink on every layer
/// - [`NetworkBuilder::gateway`] — start the client ingress gateway
///   (DESIGN.md §10) and enroll its client keys
/// - [`NetworkBuilder::transport`], [`NetworkBuilder::block_interval_ms`],
///   [`NetworkBuilder::seed`], [`NetworkBuilder::with_fda`] — consensus
///   transport and topology knobs
///
/// ```no_run
/// use medchain::{GatewayConfig, MedicalNetwork};
/// let net = MedicalNetwork::builder()
///     .site("hospital-0", Vec::new())
///     .site("hospital-1", Vec::new())
///     .shards(2)
///     .gateway(GatewayConfig::default())
///     .build_sharded()
///     .unwrap();
/// ```
#[derive(Default)]
pub struct NetworkBuilder {
    pub(crate) sites: Vec<(String, Vec<PatientRecord>)>,
    pub(crate) block_interval_ms: u64,
    pub(crate) seed: u64,
    with_fda: bool,
    pub(crate) transport: TransportKind,
    pub(crate) metrics: Metrics,
    pub(crate) storage: Option<(PathBuf, StorageConfig)>,
    pub(crate) shards: u16,
    pub(crate) gateway: Option<GatewayConfig>,
    pub(crate) parallel_exec: usize,
    pub(crate) state_cache_pages: Option<usize>,
    pub(crate) track_latest: bool,
}

impl fmt::Debug for NetworkBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetworkBuilder").field("sites", &self.sites.len()).finish()
    }
}

impl NetworkBuilder {
    /// Starts a builder with defaults (50 ms blocks, seed 42).
    pub fn new() -> NetworkBuilder {
        NetworkBuilder {
            sites: Vec::new(),
            block_interval_ms: 50,
            seed: 42,
            with_fda: false,
            transport: TransportKind::Sim,
            metrics: Metrics::noop(),
            storage: None,
            shards: 1,
            gateway: None,
            parallel_exec: 1,
            state_cache_pages: None,
            track_latest: false,
        }
    }

    /// Caps every site's resident state at roughly `pages` 4 KiB page
    /// slots (DESIGN.md §14): cold accounts and authenticated-tree
    /// subtrees spill to a per-site `pages.bin` page file and fault back
    /// in on demand, so total state may exceed RAM. Committed roots are
    /// byte-identical to a fully-resident node. Requires
    /// [`NetworkBuilder::storage`] (the page file lives in the site's
    /// data directory); without storage the setting is ignored. The
    /// `MEDCHAIN_STATE_CACHE_PAGES` environment variable sets the same
    /// budget when this method was not called.
    #[must_use]
    pub fn state_cache(mut self, pages: usize) -> NetworkBuilder {
        assert!(pages > 0, "a page cache needs at least one page slot");
        self.state_cache_pages = Some(pages);
        self
    }

    /// Maintains the `latest_state` projection (DESIGN.md §14) on
    /// replica 0: a key → newest-committed-value map updated from each
    /// committed block's state delta, giving HIE-style point reads O(1)
    /// lookups without touching the authenticated tree. Fetch it with
    /// [`MedicalNetwork::latest_state`].
    #[must_use]
    pub fn track_latest_state(mut self) -> NetworkBuilder {
        self.track_latest = true;
        self
    }

    /// Executes committed blocks on `threads` worker threads via the
    /// conflict-free wave scheduler (DESIGN.md §11). Transactions are
    /// partitioned by inferred read/write sets; the parallel schedule is
    /// guaranteed byte-identical to sequential apply, so any replica may
    /// enable this independently. `1` (the default) keeps the classic
    /// sequential path.
    #[must_use]
    pub fn parallel_exec(mut self, threads: usize) -> NetworkBuilder {
        self.parallel_exec = threads.max(1);
        self
    }

    /// Starts a client ingress gateway alongside the network
    /// (DESIGN.md §10): a TCP front-end that batch-verifies signed
    /// client transactions and admits them into fee/priority mempool
    /// lanes. `cfg.clients` client keys (seeds `0x1000_0000..`) are
    /// enrolled into the consortium registry at build time so their
    /// transactions verify on every replica; fetch them with
    /// `client_keys()` on the built network.
    #[must_use]
    pub fn gateway(mut self, cfg: GatewayConfig) -> NetworkBuilder {
        self.gateway = Some(cfg);
        self
    }

    /// Splits the consortium into `k` consensus shards (DESIGN.md §9):
    /// site *i* joins the committee of shard `i % k`, each committee
    /// drives its own sub-chain, and a coordinator chain run by every
    /// site commits periodic cross-links. Only
    /// [`NetworkBuilder::build_sharded`] honors this setting;
    /// [`NetworkBuilder::build`] ignores it and produces the single
    /// monolithic chain.
    #[must_use]
    pub fn shards(mut self, k: u16) -> NetworkBuilder {
        assert!(k > 0, "a sharded consortium needs at least one shard");
        self.shards = k;
        self
    }

    /// Persists every site's chain under `root` (one data directory per
    /// site: `<root>/site-<i>`) with the default [`StorageConfig`].
    /// Building against a directory that already holds a persisted
    /// chain *resumes* it: each site recovers its ledger from disk and
    /// the one-time setup (contract deployment, dataset registration)
    /// is skipped.
    #[must_use]
    pub fn storage(self, root: impl Into<PathBuf>) -> NetworkBuilder {
        self.storage_with(root, StorageConfig::default())
    }

    /// [`NetworkBuilder::storage`] with an explicit [`StorageConfig`]
    /// (segment size, fsync policy, snapshot cadence, fault injection).
    #[must_use]
    pub fn storage_with(
        mut self,
        root: impl Into<PathBuf>,
        config: StorageConfig,
    ) -> NetworkBuilder {
        self.storage = Some((root.into(), config));
        self
    }

    /// Installs a metrics handle on every layer of the network: the
    /// transport (`transport.*`), each replica's app and mempool
    /// (`chain.*`, `mempool.*`), and the consensus harness
    /// (`consensus.*`).
    #[must_use]
    pub fn metrics(mut self, metrics: Metrics) -> NetworkBuilder {
        self.metrics = metrics;
        self
    }

    /// Adds a site hosting `records`.
    #[must_use]
    pub fn site(mut self, name: &str, records: Vec<PatientRecord>) -> NetworkBuilder {
        self.sites.push((name.to_string(), records));
        self
    }

    /// Sets the PoA block interval.
    #[must_use]
    pub fn block_interval_ms(mut self, interval: u64) -> NetworkBuilder {
        self.block_interval_ms = interval;
        self
    }

    /// Sets the simulation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> NetworkBuilder {
        self.seed = seed;
        self
    }

    /// Selects the transport carrying consensus traffic (default: the
    /// deterministic simulator). Use
    /// [`TransportKind::from_env`] to honor `MEDCHAIN_TRANSPORT=tcp`.
    #[must_use]
    pub fn transport(mut self, kind: TransportKind) -> NetworkBuilder {
        self.transport = kind;
        self
    }

    /// Adds the regulator's special node (paper Fig. 2): a compute-only
    /// consortium member named `"fda"` hosting no patient data, enrolled
    /// as a validator, and granted [`Purpose::RegulatoryAudit`] on every
    /// hospital dataset at build time.
    #[must_use]
    pub fn with_fda(mut self) -> NetworkBuilder {
        self.with_fda = true;
        self
    }

    /// Builds the network: starts the consortium, deploys the three
    /// standard contracts, registers and Merkle-anchors every site's
    /// dataset.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if consensus or deployment fails.
    ///
    /// # Panics
    ///
    /// Panics if no sites were added.
    pub fn build(mut self) -> Result<MedicalNetwork, NetworkError> {
        assert!(!self.sites.is_empty(), "a network needs at least one site");
        if self.with_fda {
            self.sites.push(("fda".to_string(), Vec::new()));
        }
        let with_fda = self.with_fda;
        let n = self.sites.len();
        let (engines, mut registry, _validators) =
            PoaEngine::make_validators(n, self.block_interval_ms);
        // Gateway client keys are consortium members too: enroll them
        // BEFORE the apps clone the registry, so client signatures
        // verify on every replica. (The engines' clones lack them, but
        // engines only check validator seals.)
        let client_keys = client_keys_for(self.gateway.as_ref());
        for key in &client_keys {
            registry.enroll(key);
        }
        let mut apps: Vec<ChainApp> = (0..n)
            .map(|i| {
                let mut app = ChainApp::with_runtime(
                    "medchain",
                    registry.clone(),
                    Box::new(Runtime::standard()),
                );
                // Quantize block timestamps to the tick grid so the
                // committed chain is byte-identical whether consensus
                // runs on the logical-clock simulator or wall-clock
                // sockets.
                app.set_timestamp_quantum_ms(self.block_interval_ms);
                app.ledger_mut().set_parallel_exec(self.parallel_exec);
                // Only replica 0 reports, so counters reflect one node's
                // view rather than summing all replicas' identical work.
                if i == 0 {
                    app.set_metrics(self.metrics.clone());
                }
                app
            })
            .collect();
        // The latest_state projection feeds off replica 0's committed
        // deltas; install the observer before recovery so replayed
        // blocks populate it too.
        let latest_state = self.track_latest.then(|| Arc::new(LatestState::new()));
        if let Some(latest) = &latest_state {
            let sink = Arc::clone(latest);
            apps[0].ledger_mut().set_commit_observer(Box::new(move |block, updates| {
                sink.record(block, updates);
            }));
        }
        // Durable storage: recover each site's ledger from its data dir
        // (replaying the persisted chain), stream a snapshot into any
        // site that recovered behind the cohort (a wiped or stale data
        // directory), then attach the stores so every later commit is
        // persisted write-ahead.
        let mut resumed_height = 0u64;
        if let Some((root, config)) = &self.storage {
            let mut stores = Vec::with_capacity(n);
            let mut dirs = Vec::with_capacity(n);
            for (i, app) in apps.iter_mut().enumerate() {
                let dir = root.join(format!("site-{i}"));
                // Replica-0 convention: only site 0's store reports.
                let metrics =
                    if i == 0 { self.metrics.clone() } else { Metrics::noop() };
                let store_metrics = metrics.clone();
                let mut store =
                    DiskStore::open_with_metrics(dir.clone(), *config, store_metrics)
                        .map_err(|e| NetworkError::Storage(e.to_string()))?;
                store
                    .recover_into(app.ledger_mut())
                    .map_err(|e| NetworkError::Storage(format!("site {i}: {e}")))?;
                stores.push(store);
                dirs.push(dir);
            }
            let build_metrics = self.metrics.clone();
            let interval = self.block_interval_ms;
            let parallel = self.parallel_exec;
            let fresh_registry = registry.clone();
            let fresh_latest = latest_state.clone();
            let fresh_app = move |i: usize| {
                let mut app = ChainApp::with_runtime(
                    "medchain",
                    fresh_registry.clone(),
                    Box::new(Runtime::standard()),
                );
                app.set_timestamp_quantum_ms(interval);
                app.ledger_mut().set_parallel_exec(parallel);
                if i == 0 {
                    app.set_metrics(build_metrics.clone());
                    if let Some(latest) = &fresh_latest {
                        let sink = Arc::clone(latest);
                        app.ledger_mut().set_commit_observer(Box::new(
                            move |block, updates| sink.record(block, updates),
                        ));
                    }
                }
                app
            };
            bootstrap_lagging(
                &mut apps,
                &mut stores,
                &dirs,
                *config,
                &self.metrics,
                &fresh_app,
                "network",
            )?;
            // A resumed consortium must agree before consensus restarts:
            // local recovery and the streamed rejoin above both end at
            // the cohort tip, so a surviving mismatch is real divergence.
            let tip0 = apps[0].ledger().tip().id();
            if let Some(i) = (1..n).find(|&i| apps[i].ledger().tip().id() != tip0) {
                return Err(NetworkError::Storage(format!(
                    "site {i} recovered height {} (tip {:?}) but site 0 \
                     recovered height {} (tip {tip0:?})",
                    apps[i].ledger().height(),
                    apps[i].ledger().tip().id(),
                    apps[0].ledger().height()
                )));
            }
            resumed_height = apps[0].ledger().height();
            let cache_pages = effective_cache_pages(self.state_cache_pages);
            for (i, (app, store)) in apps.iter_mut().zip(stores).enumerate() {
                let metrics =
                    if i == 0 { self.metrics.clone() } else { Metrics::noop() };
                attach_site_store(app, store, cache_pages, metrics)?;
            }
        }
        let resumed = resumed_height > 0;
        let net: Box<dyn Transport<PoaMsg>> = match self.transport {
            TransportKind::Sim => {
                let mut sim = SimTransport::new(n, self.seed);
                sim.set_metrics(self.metrics.clone());
                Box::new(sim)
            }
            TransportKind::Tcp => {
                // bind_from_env honors MEDCHAIN_TCP_ADDRS for explicit /
                // multi-host addressing, defaulting to loopback.
                let mut tcp = TcpTransport::bind_from_env(n)
                    .map_err(|e| NetworkError::TransportInit(e.to_string()))?;
                tcp.set_metrics(self.metrics.clone());
                Box::new(tcp)
            }
        };
        let mut cluster = Cluster::with_transport(engines, apps, net);
        cluster.set_metrics(self.metrics.clone());
        let sites: Vec<Site> = self
            .sites
            .into_iter()
            .enumerate()
            .map(|(i, (name, records))| Site::new(&name, AuthorityKey::from_seed(i as u64), records))
            .collect();
        let mut network = MedicalNetwork {
            cluster,
            sites,
            contracts: ContractAddresses {
                data: Address::from_seed(0),
                analytics: Address::from_seed(0),
                trial: Address::from_seed(0),
            },
            nonces: HashMap::new(),
            block_interval_ms: self.block_interval_ms,
            registry,
            transport: self.transport,
            metrics: self.metrics,
            resumed,
            gateway: None,
            client_keys,
            latest_state,
            stream_cache: None,
        };
        if let Some(cfg) = self.gateway {
            let server = GatewayServer::start(cfg, network.metrics.clone())
                .map_err(|e| NetworkError::Gateway(e.to_string()))?;
            network.gateway = Some(server);
        }
        if resumed {
            // The persisted chain already holds the one-time setup;
            // re-derive the deterministic contract addresses (site 0
            // deployed with nonces 0/1/2) and verify the code is there.
            let deployer = network.site(0).address();
            let contracts = ContractAddresses {
                data: contract_address(&deployer, 0),
                analytics: contract_address(&deployer, 1),
                trial: contract_address(&deployer, 2),
            };
            let state = network.ledger().state();
            for (name, addr) in [
                ("data", contracts.data),
                ("analytics", contracts.analytics),
                ("trial", contracts.trial),
            ] {
                if state.code(&addr).is_none() {
                    return Err(NetworkError::Storage(format!(
                        "resumed chain at height {resumed_height} has no \
                         {name} contract at {addr:?}"
                    )));
                }
            }
            network.contracts = contracts;
        } else {
            network.deploy_standard_contracts()?;
            network.register_all_datasets()?;
            if with_fda {
                let fda = network
                    .fda_index()
                    .expect("fda site appended above");
                let fda_address = network.site(fda).address();
                network.grant_all(fda_address, Purpose::RegulatoryAudit)?;
            }
        }
        Ok(network)
    }
}

/// Derives the gateway's client keys (disjoint from validator seeds).
pub(crate) fn client_keys_for(cfg: Option<&GatewayConfig>) -> Vec<AuthorityKey> {
    let clients = cfg.map(|c| c.clients).unwrap_or(0);
    (0..clients).map(|i| AuthorityKey::from_seed(0x1000_0000 + i as u64)).collect()
}

/// Resolves the paged-state budget: an explicit
/// [`NetworkBuilder::state_cache`] wins, else the
/// `MEDCHAIN_STATE_CACHE_PAGES` environment variable (a positive page
/// count) enables paging for every site.
pub(crate) fn effective_cache_pages(explicit: Option<usize>) -> Option<usize> {
    explicit.or_else(|| {
        std::env::var("MEDCHAIN_STATE_CACHE_PAGES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&pages| pages > 0)
    })
}

/// Brings every site that recovered behind the cohort tip back in step
/// by streaming the most advanced site's snapshot + WAL tail into it
/// (DESIGN.md §14) — the wiped-site rejoin path. Call before stores are
/// attached; `fresh_app` rebuilds a genesis app for a site whose
/// partial local prefix has to be discarded (its chain is derived data,
/// re-obtainable from any honest peer, so the stale directory is wiped
/// and re-seeded from the stream).
pub(crate) fn bootstrap_lagging(
    apps: &mut [ChainApp],
    stores: &mut [DiskStore],
    dirs: &[PathBuf],
    config: StorageConfig,
    metrics: &Metrics,
    fresh_app: &dyn Fn(usize) -> ChainApp,
    label: &str,
) -> Result<(), NetworkError> {
    let best = (0..apps.len())
        .max_by_key(|&i| apps[i].ledger().height())
        .expect("at least one site");
    let best_height = apps[best].ledger().height();
    if best_height == 0 {
        return Ok(()); // Nothing persisted anywhere: a first boot.
    }
    let lagging: Vec<usize> =
        (0..apps.len()).filter(|&i| apps[i].ledger().height() < best_height).collect();
    if lagging.is_empty() {
        return Ok(());
    }
    let shard = apps[best].ledger().shard();
    let source = BootstrapSource::capture(apps[best].ledger(), Some(&stores[best]))
        .ok_or_else(|| {
            NetworkError::Storage(format!(
                "{label}: site {best} has no snapshot to serve rejoining peers"
            ))
        })?;
    let peer = SnapshotPeer::serve(source)
        .map_err(|e| NetworkError::Storage(format!("{label}: snapshot peer: {e}")))?;
    for i in lagging {
        if apps[i].ledger().height() > 0 {
            // A partial prefix cannot take a streamed snapshot above it
            // (the WAL would hold a gap): discard and re-seed.
            std::fs::remove_dir_all(&dirs[i])
                .map_err(|e| NetworkError::Storage(format!("{label}: reset site {i}: {e}")))?;
            let site_metrics = if i == 0 { metrics.clone() } else { Metrics::noop() };
            stores[i] = DiskStore::open_with_metrics(dirs[i].clone(), config, site_metrics)
                .map_err(|e| NetworkError::Storage(format!("{label}: reopen site {i}: {e}")))?;
            apps[i] = fresh_app(i);
        }
        stream_into(peer.addr(), shard, apps[i].ledger_mut(), &mut stores[i]).map_err(|e| {
            NetworkError::Storage(format!(
                "{label}: site {i} failed to bootstrap from site {best}: {e}"
            ))
        })?;
    }
    Ok(())
}

/// Finishes a site's storage wiring: opens the paged-state cache when a
/// budget is set (cold accounts and tree nodes spill to
/// `<site-dir>/pages.bin`, bounded to `pages` cached slots), then
/// attaches the store so every later commit is persisted write-ahead.
pub(crate) fn attach_site_store(
    app: &mut ChainApp,
    mut store: DiskStore,
    cache_pages: Option<usize>,
    metrics: Metrics,
) -> Result<(), NetworkError> {
    if let Some(budget) = cache_pages {
        let path = store.dir().join("pages.bin");
        let pages = Arc::new(PageStore::open(&path, budget, metrics).map_err(|e| {
            NetworkError::Storage(format!("page store {}: {e}", path.display()))
        })?);
        store.attach_pages(Arc::clone(&pages));
        app.ledger_mut().attach_state_cache(StateCacheConfig {
            accounts: Arc::new(PagedAccounts::new(Arc::clone(&pages))),
            nodes: Arc::new(PagedNodes::new(pages)),
            max_hot_accounts: budget * ACCOUNTS_PER_PAGE,
            node_budget: budget * 32,
        });
    }
    app.attach_store(Box::new(store));
    Ok(())
}

/// The running consortium.
pub struct MedicalNetwork {
    cluster: Cluster<PoaEngine, ChainApp, Box<dyn Transport<PoaMsg>>>,
    sites: Vec<Site>,
    contracts: ContractAddresses,
    nonces: HashMap<Address, u64>,
    block_interval_ms: u64,
    registry: KeyRegistry,
    transport: TransportKind,
    metrics: Metrics,
    resumed: bool,
    gateway: Option<GatewayServer>,
    client_keys: Vec<AuthorityKey>,
    latest_state: Option<Arc<LatestState>>,
    // One chunked snapshot materialized per tip for the streaming
    // protocol; invalidated (rebuilt) when a manifest is requested at a
    // newer tip.
    stream_cache: Option<(SnapshotManifest, Vec<u8>)>,
}

impl fmt::Debug for MedicalNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MedicalNetwork")
            .field("sites", &self.sites.len())
            .field("height", &self.height())
            .finish()
    }
}

impl MedicalNetwork {
    /// Starts building a network.
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::new()
    }

    /// Number of sites (= consortium validators).
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Site accessor.
    pub fn site(&self, index: usize) -> &Site {
        &self.sites[index]
    }

    /// Mutable site accessor.
    pub fn site_mut(&mut self, index: usize) -> &mut Site {
        &mut self.sites[index]
    }

    /// All site names.
    pub fn site_names(&self) -> Vec<String> {
        self.sites.iter().map(|s| s.name().to_string()).collect()
    }

    /// Standard contract addresses.
    pub fn contracts(&self) -> ContractAddresses {
        self.contracts
    }

    /// Index of the regulator's special node, when the network was built
    /// with [`NetworkBuilder::with_fda`].
    pub fn fda_index(&self) -> Option<usize> {
        self.sites.iter().position(|s| s.name() == "fda")
    }

    /// Current committed height (replica 0's view).
    pub fn height(&self) -> u64 {
        self.cluster.replicas[0].app.height()
    }

    /// Replica 0's ledger (all replicas agree under PoA).
    pub fn ledger(&self) -> &medchain_chain::Ledger {
        self.cluster.replicas[0].app.ledger()
    }

    /// The ledger of a specific replica (for control-plane polling).
    pub fn ledger_of(&self, site: usize) -> &medchain_chain::Ledger {
        self.cluster.replicas[site].app.ledger()
    }

    /// Out-of-band funding for tests and experiments: credits `addr` on
    /// every replica. Bypasses the block pipeline (like
    /// `ShardedNetwork::fund`), so state proofs only cover it after the
    /// next committed block re-roots the headers.
    pub fn fund(&mut self, addr: Address, amount: u64) {
        for replica in &mut self.cluster.replicas {
            replica.app.ledger_mut().state_mut().credit(addr, amount);
        }
    }

    /// The consortium membership registry.
    pub fn registry(&self) -> &KeyRegistry {
        &self.registry
    }

    /// Consensus network statistics.
    pub fn net_stats(&self) -> medchain_chain::net::NetStats {
        self.cluster.net.stats()
    }

    /// Which transport carries this network's consensus traffic.
    pub fn transport_kind(&self) -> TransportKind {
        self.transport
    }

    /// The metrics handle installed at build time (noop by default) —
    /// higher layers (query pipeline, experiments) emit through it.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Whether this network resumed a persisted chain from disk instead
    /// of running the one-time setup.
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// The `latest_state` projection when enabled with
    /// [`NetworkBuilder::track_latest_state`]: O(1) point reads of the
    /// newest committed value per key, maintained from replica 0's
    /// committed state deltas (DESIGN.md §14). Covers every block this
    /// process replayed, streamed, or committed; a snapshot-restored
    /// baseline is not back-filled.
    pub fn latest_state(&self) -> Option<&Arc<LatestState>> {
        self.latest_state.as_ref()
    }

    /// Gracefully releases the transport (socket transports join their
    /// threads; the simulator is a no-op) and stops the gateway.
    pub fn shutdown(&mut self) {
        if let Some(gateway) = self.gateway.as_mut() {
            gateway.shutdown();
        }
        self.cluster.shutdown();
    }

    /// The ingress gateway's TCP address, when built with
    /// [`NetworkBuilder::gateway`].
    pub fn gateway_addr(&self) -> Option<std::net::SocketAddr> {
        self.gateway.as_ref().map(GatewayServer::addr)
    }

    /// The enrolled gateway client keys (empty without a gateway).
    pub fn client_keys(&self) -> &[AuthorityKey] {
        &self.client_keys
    }

    /// Drains buffered gateway requests through admission and answers
    /// status queries. No-op without a gateway.
    pub fn pump_gateway(&mut self) -> PumpReport {
        let Some(mut gateway) = self.gateway.take() else { return PumpReport::default() };
        let report = gateway.pump(self);
        self.gateway = Some(gateway);
        report
    }

    /// Serves gateway traffic until `stop` is raised: pump admissions,
    /// commit blocks whenever transactions are pending, then drain the
    /// in-flight tail so every accepted transaction commits.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::ConsensusStalled`] if a commit round
    /// times out.
    pub fn serve_until(
        &mut self,
        stop: &std::sync::atomic::AtomicBool,
    ) -> Result<(), NetworkError> {
        use std::sync::atomic::Ordering;
        while !stop.load(Ordering::Relaxed) {
            self.pump_gateway();
            if self.cluster.replicas[0].app.mempool_len() > 0 {
                self.advance(1)?;
            } else {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        // Drain the tail: requests buffered before the stop, and
        // anything already admitted but not yet committed.
        self.pump_gateway();
        while self.cluster.replicas[0].app.mempool_len() > 0 {
            self.advance(1)?;
            self.pump_gateway();
        }
        Ok(())
    }

    /// Aggregate ledger statistics across all replicas (the duplicated
    /// execution cost).
    pub fn total_ledger_stats(&self) -> medchain_chain::ledger::LedgerStats {
        let mut total = medchain_chain::ledger::LedgerStats::default();
        for replica in &self.cluster.replicas {
            let stats = replica.app.stats();
            total.blocks += stats.blocks;
            total.transactions += stats.transactions;
            total.gas_used += stats.gas_used;
            total.failed += stats.failed;
        }
        total
    }

    fn next_nonce(&mut self, sender: Address) -> u64 {
        let on_chain = self.cluster.replicas[0].app.ledger().state().account(&sender).nonce;
        let tracked = self.nonces.entry(sender).or_insert(on_chain);
        if *tracked < on_chain {
            *tracked = on_chain;
        }
        let nonce = *tracked;
        *tracked += 1;
        nonce
    }

    /// Verifies `tx` once against the consortium registry, then fans it
    /// out to every replica's mempool on `lane` via the verified-path
    /// admission API (gossip shortcut: duplicate ids are deduplicated by
    /// the pools). Returns replica 0's outcome.
    fn submit_verified_all(&mut self, tx: Transaction, lane: Lane) -> SubmitOutcome {
        if !tx.verify(&self.registry) {
            return SubmitOutcome::Inadmissible;
        }
        let mut first: Option<SubmitOutcome> = None;
        for replica in &mut self.cluster.replicas {
            let outcome = replica.app.submit_verified(tx.clone(), lane);
            if first.is_none() {
                first = Some(outcome);
            }
        }
        first.unwrap_or(SubmitOutcome::Inadmissible)
    }

    /// Submits a transaction from `site` on the normal lane — the
    /// `submit → PendingTx → confirm → TxReceipt` client API.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NoSuchSite`] for bad indices and
    /// [`NetworkError::Rejected`] when admission refuses the
    /// transaction.
    pub fn submit(
        &mut self,
        site: usize,
        payload: TxPayload,
        gas_limit: u64,
    ) -> Result<PendingTx, NetworkError> {
        self.submit_lane(site, payload, gas_limit, Lane::Normal)
    }

    /// [`MedicalNetwork::submit`] with an explicit mempool lane.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NoSuchSite`] / [`NetworkError::Rejected`].
    pub fn submit_lane(
        &mut self,
        site: usize,
        payload: TxPayload,
        gas_limit: u64,
        lane: Lane,
    ) -> Result<PendingTx, NetworkError> {
        if site >= self.sites.len() {
            return Err(NetworkError::NoSuchSite(site));
        }
        let key = self.sites[site].key().clone();
        let nonce = self.next_nonce(key.address());
        let tx = Transaction::new(key.address(), nonce, payload, gas_limit).signed(&key);
        let tx_id = tx.id();
        let shard = self.ledger().shard();
        match self.submit_verified_all(tx, lane) {
            SubmitOutcome::Admitted { lane, .. } => Ok(PendingTx { tx_id, shard, lane }),
            SubmitOutcome::Duplicate => Ok(PendingTx { tx_id, shard, lane: Lane::Normal }),
            outcome @ (SubmitOutcome::Full | SubmitOutcome::Inadmissible) => {
                // Give the burned nonce back so the next submission is
                // not stuck behind a gap forever.
                if let Some(tracked) = self.nonces.get_mut(&key.address()) {
                    *tracked = tracked.saturating_sub(1);
                }
                let reason = match outcome {
                    SubmitOutcome::Full => "mempool full",
                    _ => "inadmissible",
                };
                Err(NetworkError::Rejected { tx_id, reason: reason.into() })
            }
        }
    }

    /// Builds, signs, and submits a transaction from `site`, returning
    /// only its id (legacy surface; prefer [`MedicalNetwork::submit`],
    /// whose [`PendingTx`] pairs with proof-carrying confirmation).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NoSuchSite`] for bad indices.
    pub fn submit_as(
        &mut self,
        site: usize,
        payload: TxPayload,
        gas_limit: u64,
    ) -> Result<Hash256, NetworkError> {
        Ok(self.submit(site, payload, gas_limit)?.tx_id)
    }

    /// Convenience: invoke a standard contract method from `site`,
    /// through the [`MedicalNetwork::submit`] API.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NoSuchSite`] / [`NetworkError::Rejected`].
    pub fn invoke(
        &mut self,
        site: usize,
        contract: Address,
        selector: &str,
        args: &[Value],
        gas_limit: u64,
    ) -> Result<PendingTx, NetworkError> {
        self.submit(
            site,
            TxPayload::Invoke { contract, input: call_data(selector, args) },
            gas_limit,
        )
    }

    /// Convenience: invoke a standard contract method from `site`,
    /// returning only the transaction id (legacy surface; prefer
    /// [`MedicalNetwork::invoke`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NoSuchSite`] for bad indices.
    pub fn invoke_as(
        &mut self,
        site: usize,
        contract: Address,
        selector: &str,
        args: &[Value],
        gas_limit: u64,
    ) -> Result<Hash256, NetworkError> {
        Ok(self.invoke(site, contract, selector, args, gas_limit)?.tx_id)
    }

    /// Commits pending work and returns the proof-carrying receipt of a
    /// submitted transaction, verified against the **independently
    /// read** committed block root before it is handed back.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] on stall, missing receipt, proof
    /// failure, or failed execution.
    pub fn confirm(&mut self, pending: &PendingTx) -> Result<TxReceipt, NetworkError> {
        self.advance(1)?;
        // The transaction may land a block later if it raced the proposer.
        if self.cluster.replicas[0].app.tx_receipt(&pending.tx_id).is_none() {
            self.advance(1)?;
        }
        let receipt = self
            .cluster
            .replicas[0]
            .app
            .tx_receipt(&pending.tx_id)
            .ok_or(NetworkError::MissingReceipt(pending.tx_id))?;
        // Check the proof against the root from the committed header,
        // not the root the receipt carries.
        let root = self
            .ledger()
            .block(receipt.height)
            .map(|b| b.header.tx_root)
            .ok_or(NetworkError::ReceiptProof(pending.tx_id))?;
        if !receipt.verify_against(&root) {
            return Err(NetworkError::ReceiptProof(pending.tx_id));
        }
        if !receipt.ok {
            return Err(NetworkError::TxFailed {
                tx_id: pending.tx_id,
                error: receipt.error.clone().unwrap_or_default(),
            });
        }
        Ok(receipt)
    }

    /// Runs consensus until `blocks` more blocks commit on all replicas.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::ConsensusStalled`] on timeout.
    pub fn advance(&mut self, blocks: u64) -> Result<RunReport, NetworkError> {
        let target = self.height() + blocks;
        let budget = self.cluster.net.now_ms()
            + blocks * self.block_interval_ms * 40
            + 20 * self.block_interval_ms * self.sites.len() as u64;
        let report = self.cluster.run_until_height(target, budget);
        if !report.reached {
            return Err(NetworkError::ConsensusStalled { target, reached: self.height() });
        }
        Ok(report)
    }

    /// Receipt lookup (replica 0).
    pub fn receipt(&self, tx_id: &Hash256) -> Option<&Receipt> {
        self.cluster.replicas[0].app.receipt(tx_id)
    }

    /// Commits pending transactions and returns the receipt of `tx_id`,
    /// erroring if it failed.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] on stall, missing receipt, or failed
    /// execution.
    pub fn commit_and_check(&mut self, tx_id: Hash256) -> Result<Receipt, NetworkError> {
        self.advance(1)?;
        // The transaction may land a block later if it raced the proposer.
        if self.receipt(&tx_id).is_none() {
            self.advance(1)?;
        }
        let receipt =
            self.receipt(&tx_id).cloned().ok_or(NetworkError::MissingReceipt(tx_id))?;
        if !receipt.ok {
            return Err(NetworkError::TxFailed {
                tx_id,
                error: receipt.error.clone().unwrap_or_default(),
            });
        }
        Ok(receipt)
    }

    fn deploy_standard_contracts(&mut self) -> Result<(), NetworkError> {
        let deployer = 0usize;
        let names = ["data_contract", "analytics_contract", "trial_contract"];
        let mut ids = Vec::new();
        let deployer_addr = self.sites[deployer].address();
        let mut addresses = Vec::new();
        for name in names {
            let nonce_before = self.nonces.get(&deployer_addr).copied().unwrap_or(0);
            let id = self.submit_as(
                deployer,
                TxPayload::Deploy { code: native_manifest(name), init: Vec::new() },
                100_000,
            )?;
            ids.push(id);
            addresses.push(contract_address(&deployer_addr, nonce_before));
        }
        self.advance(2)?;
        for id in ids {
            let receipt = self.receipt(&id).ok_or(NetworkError::MissingReceipt(id))?;
            if !receipt.ok {
                return Err(NetworkError::TxFailed {
                    tx_id: id,
                    error: receipt.error.clone().unwrap_or_default(),
                });
            }
        }
        self.contracts = ContractAddresses {
            data: addresses[0],
            analytics: addresses[1],
            trial: addresses[2],
        };
        Ok(())
    }

    fn register_all_datasets(&mut self) -> Result<(), NetworkError> {
        let data_contract = self.contracts.data;
        let mut ids = Vec::new();
        for i in 0..self.sites.len() {
            let artifact = self.sites[i].anchor_artifact();
            let label = artifact.label().to_string();
            let root = artifact.root();
            // On-chain registration in the data contract…
            ids.push(self.invoke_as(
                i,
                data_contract,
                "register",
                &[
                    Value::str(&label),
                    Value::Bytes(root.0.to_vec()),
                    Value::str("medchain-canonical-v1"),
                ],
                50_000,
            )?);
            // …plus the Merkle anchor for record-level integrity.
            ids.push(self.submit_as(i, TxPayload::Anchor { root, label }, 1_000)?);
        }
        self.advance(2 + self.sites.len() as u64 / 32)?;
        for id in ids {
            let receipt = self.receipt(&id).ok_or(NetworkError::MissingReceipt(id))?;
            if !receipt.ok {
                return Err(NetworkError::TxFailed {
                    tx_id: id,
                    error: receipt.error.clone().unwrap_or_default(),
                });
            }
        }
        Ok(())
    }

    /// Grants `purpose` access on every site's dataset to `grantee` —
    /// consortium-wide data-sharing agreements.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if any grant transaction fails.
    pub fn grant_all(&mut self, grantee: Address, purpose: Purpose) -> Result<(), NetworkError> {
        let data_contract = self.contracts.data;
        let mut ids = Vec::new();
        for i in 0..self.sites.len() {
            let label = self.sites[i].hosted_label().to_string();
            ids.push(self.invoke_as(
                i,
                data_contract,
                "grant",
                &[
                    Value::str(&label),
                    Value::address(&grantee),
                    Value::Int(purpose.code()),
                    Value::Int(-1),
                ],
                50_000,
            )?);
        }
        self.advance(2)?;
        for id in ids {
            let receipt = self.receipt(&id).ok_or(NetworkError::MissingReceipt(id))?;
            if !receipt.ok {
                return Err(NetworkError::TxFailed {
                    tx_id: id,
                    error: receipt.error.clone().unwrap_or_default(),
                });
            }
        }
        Ok(())
    }

    /// One control-plane cycle (Fig. 1): every site's control code
    /// observes new contract events on its own replica and the resulting
    /// intents are submitted back on-chain. Returns the number of
    /// intents processed.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if intent submission fails.
    pub fn control_cycle(&mut self) -> Result<usize, NetworkError> {
        let analytics = self.contracts.analytics;
        let mut actions = Vec::new();
        for i in 0..self.sites.len() {
            // Disjoint-field borrow: replica ledger (read) + site control
            // code (write).
            let ledger = self.cluster.replicas[i].app.ledger();
            let intents = self.sites[i].control_mut().step(ledger);
            for intent in intents {
                actions.push((i, intent));
            }
        }
        let count = actions.len();
        for (site, intent) in actions {
            if let ActionIntent::PostResult { task_id, result_hash, .. } = intent {
                let id = self.invoke_as(
                    site,
                    analytics,
                    "post_result",
                    &[Value::Int(task_id), Value::Bytes(result_hash.0.to_vec())],
                    50_000,
                )?;
                self.commit_and_check(id)?;
            }
        }
        Ok(count)
    }
}

impl GatewayBackend for MedicalNetwork {
    fn registry(&self) -> &KeyRegistry {
        &self.registry
    }

    fn admit_verified(&mut self, tx: Transaction, lane: Lane) -> (ShardId, SubmitOutcome) {
        let shard = self.ledger().shard();
        let mut first: Option<SubmitOutcome> = None;
        for replica in &mut self.cluster.replicas {
            let outcome = replica.app.submit_verified(tx.clone(), lane);
            if first.is_none() {
                first = Some(outcome);
            }
        }
        (shard, first.unwrap_or(SubmitOutcome::Inadmissible))
    }

    fn find_receipt(&self, tx_id: &Hash256) -> Option<TxReceipt> {
        self.cluster.replicas[0].app.tx_receipt(tx_id)
    }

    fn is_pending(&self, tx_id: &Hash256) -> bool {
        self.cluster.replicas[0].app.mempool_contains(tx_id)
    }

    fn query_state(&self, key: &LeafKey, shard: Option<ShardId>) -> Option<StateProof> {
        // Single chain: every key lives here (including absence of
        // coordinator-homed keys), but a pin to some *other* shard is
        // unanswerable.
        if shard.is_some_and(|s| s != self.ledger().shard()) {
            return None;
        }
        Some(self.ledger().prove_state(key))
    }

    fn snapshot_manifest(&mut self, shard: ShardId) -> Option<SnapshotManifest> {
        if shard != self.ledger().shard() {
            return None;
        }
        let tip_id = self.ledger().tip().id();
        if let Some((manifest, _)) = &self.stream_cache {
            if manifest.tip_id == tip_id {
                return Some(manifest.clone());
            }
        }
        // Materialize one chunked snapshot at the current tip. The
        // payload is byte-identical to a local `snap-<height>.bin`
        // record, so the receiver adopts it and recovers natively.
        let ledger = self.ledger();
        let tip = ledger.tip().clone();
        let payload = stream::snapshot_payload(&tip, ledger.state(), &ledger.state_tree());
        let manifest = stream::manifest_for(&tip, &payload);
        self.stream_cache = Some((manifest.clone(), payload));
        Some(manifest)
    }

    fn snapshot_chunk(&mut self, shard: ShardId, height: u64, index: u32) -> Option<SnapshotChunk> {
        if shard != self.ledger().shard() {
            return None;
        }
        // Chunks are only served for the manifest currently materialized;
        // a stale height tells the client to re-request the manifest.
        let (manifest, payload) = self.stream_cache.as_ref()?;
        if manifest.height != height {
            return None;
        }
        stream::chunk_at(height, payload, index)
    }

    fn blocks_from(&mut self, shard: ShardId, height: u64) -> Option<(u64, Vec<Block>)> {
        if shard != self.ledger().shard() {
            return None;
        }
        let ledger = self.ledger();
        Some((ledger.height(), ledger.blocks_from(height).to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medchain_contracts::events;
    use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile};

    fn records(i: usize, n: usize) -> Vec<PatientRecord> {
        CohortGenerator::new(&format!("h{i}"), SiteProfile::varied(i), 900 + i as u64).cohort(
            (i * 10_000) as u64,
            n,
            &DiseaseModel::stroke(),
        )
    }

    fn network(sites: usize) -> MedicalNetwork {
        let mut builder = MedicalNetwork::builder();
        for i in 0..sites {
            builder = builder.site(&format!("hospital-{i}"), records(i, 60));
        }
        builder.build().expect("network builds")
    }

    #[test]
    fn build_deploys_contracts_and_registers_datasets() {
        let net = network(3);
        assert_eq!(net.site_count(), 3);
        let contracts = net.contracts();
        assert_ne!(contracts.data, contracts.analytics);
        let state = net.ledger().state();
        assert!(state.code(&contracts.data).is_some());
        assert!(state.code(&contracts.trial).is_some());
        // Every site's dataset anchored.
        assert_eq!(state.anchor_count(), 3);
        assert!(state.anchor("hospital-1/emr").is_some());
    }

    #[test]
    fn replicas_agree_after_setup() {
        let net = network(4);
        let tips: Vec<Hash256> =
            (0..4).map(|i| net.ledger_of(i).tip().id()).collect();
        assert!(tips.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn grant_then_request_is_permitted() {
        let mut net = network(3);
        let researcher = net.site(2).address();
        net.grant_all(researcher, Purpose::Research).unwrap();
        let data = net.contracts().data;
        let id = net
            .invoke_as(
                2,
                data,
                "request",
                &[
                    Value::str("hospital-0/emr"),
                    Value::Int(Purpose::Research.code()),
                ],
                50_000,
            )
            .unwrap();
        let receipt = net.commit_and_check(id).unwrap();
        assert_eq!(receipt.events[0].topic, events::DATA_REQUESTED);
    }

    #[test]
    fn ungranted_request_is_denied_on_chain() {
        let mut net = network(2);
        let data = net.contracts().data;
        let id = net
            .invoke_as(
                1,
                data,
                "request",
                &[
                    Value::str("hospital-0/emr"),
                    Value::Int(Purpose::Research.code()),
                ],
                50_000,
            )
            .unwrap();
        let receipt = net.commit_and_check(id).unwrap();
        assert_eq!(receipt.events[0].topic, events::DATA_DENIED);
    }

    #[test]
    fn control_cycle_posts_analytics_results() {
        let mut net = network(2);
        // Install a trivial tool at site 0 and register it on-chain.
        let tool = medchain_offchain::Tool::new("count", "v1", |_params| {
            Ok(vec![Value::Int(1)])
        });
        let code_hash = tool.code_hash();
        net.site_mut(0).install_tool(tool);
        let analytics = net.contracts().analytics;
        let id = net
            .invoke_as(
                0,
                analytics,
                "register_tool",
                &[Value::str("count"), Value::Bytes(code_hash.0.to_vec())],
                50_000,
            )
            .unwrap();
        net.commit_and_check(id).unwrap();
        // Request a run against site 0's data.
        let id = net
            .invoke_as(
                1,
                analytics,
                "request_run",
                &[
                    Value::str("count"),
                    Value::str("hospital-0/emr"),
                    Value::Bytes(vec![]),
                ],
                50_000,
            )
            .unwrap();
        net.commit_and_check(id).unwrap();
        // Control cycle: site 0 notices, executes, posts the result.
        let handled = net.control_cycle().unwrap();
        assert!(handled >= 1, "site 0 should have handled the task");
        // Task 0 should now be completed on-chain.
        let id = net
            .invoke_as(1, analytics, "result", &[Value::Int(0)], 50_000)
            .unwrap();
        let receipt = net.commit_and_check(id).unwrap();
        let values = medchain_contracts::decode_args(&receipt.output).unwrap();
        assert_eq!(values[4], Value::Int(1), "task should be marked done");
    }

    #[test]
    fn storage_backed_network_resumes_from_disk() {
        let root = std::env::temp_dir()
            .join(format!("medchain-net-resume-{}", std::process::id()));
        if root.exists() {
            std::fs::remove_dir_all(&root).unwrap();
        }

        // First life: build, do some work beyond the setup, remember the
        // chain tip.
        let mut net = MedicalNetwork::builder()
            .site("hospital-0", records(0, 40))
            .site("hospital-1", records(1, 40))
            .storage(&root)
            .build()
            .unwrap();
        assert!(!net.resumed());
        let researcher = net.site(1).address();
        net.grant_all(researcher, Purpose::Research).unwrap();
        let height = net.height();
        let tip = net.ledger().tip().id();
        let contracts = net.contracts();
        drop(net);

        // Second life: same directory, same sites — resume, not re-setup.
        let mut net = MedicalNetwork::builder()
            .site("hospital-0", records(0, 40))
            .site("hospital-1", records(1, 40))
            .storage(&root)
            .build()
            .unwrap();
        assert!(net.resumed());
        assert_eq!(net.height(), height);
        assert_eq!(net.ledger().tip().id(), tip);
        assert_eq!(net.contracts(), contracts);
        // The recovered state still enforces the pre-crash grants, and
        // the chain keeps growing.
        let id = net
            .invoke_as(
                1,
                contracts.data,
                "request",
                &[Value::str("hospital-0/emr"), Value::Int(Purpose::Research.code())],
                50_000,
            )
            .unwrap();
        let receipt = net.commit_and_check(id).unwrap();
        assert_eq!(receipt.events[0].topic, events::DATA_REQUESTED);
        assert!(net.height() > height);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn wiped_site_rejoins_via_streamed_snapshot() {
        let root = std::env::temp_dir()
            .join(format!("medchain-net-rejoin-{}", std::process::id()));
        if root.exists() {
            std::fs::remove_dir_all(&root).unwrap();
        }
        let build = |root: &std::path::Path| {
            MedicalNetwork::builder()
                .site("hospital-0", records(0, 40))
                .site("hospital-1", records(1, 40))
                .site("hospital-2", records(2, 40))
                .storage_with(root, StorageConfig { snapshot_every: 4, ..Default::default() })
                .build()
                .unwrap()
        };

        // First life: commit work beyond the one-time setup.
        let mut net = build(&root);
        net.grant_all(net.site(1).address(), Purpose::Research).unwrap();
        let height = net.height();
        let tip = net.ledger().tip().id();
        drop(net);

        // Site 2 loses its entire data directory.
        std::fs::remove_dir_all(root.join("site-2")).unwrap();

        // Second life: the wiped site must stream a peer's snapshot +
        // WAL tail and come back agreeing with the cohort, and the
        // consortium must keep committing.
        let mut net = build(&root);
        assert!(net.resumed());
        assert_eq!(net.height(), height);
        for site in 0..3 {
            assert_eq!(net.ledger_of(site).tip().id(), tip, "site {site} disagrees");
        }
        let id = net
            .invoke_as(
                1,
                net.contracts().data,
                "request",
                &[Value::str("hospital-0/emr"), Value::Int(Purpose::Research.code())],
                50_000,
            )
            .unwrap();
        net.commit_and_check(id).unwrap();
        assert!(net.height() > height);
        // Third life: the rejoined site's adopted snapshot + appended
        // tail must now recover natively, with no peer involved.
        drop(net);
        let net = build(&root);
        assert!(net.resumed());
        let tips: Vec<Hash256> = (0..3).map(|i| net.ledger_of(i).tip().id()).collect();
        assert!(tips.windows(2).all(|w| w[0] == w[1]));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn nonce_tracking_supports_many_txs_per_block() {
        let mut net = network(2);
        let data = net.contracts().data;
        let mut ids = Vec::new();
        for k in 0..5 {
            ids.push(
                net.invoke_as(
                    0,
                    data,
                    "meta",
                    &[Value::str(&format!("hospital-{}/emr", k % 2))],
                    50_000,
                )
                .unwrap(),
            );
        }
        net.advance(2).unwrap();
        for id in ids {
            assert!(net.receipt(&id).is_some());
        }
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;
    use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile};

    #[test]
    fn out_of_range_site_errors_cleanly() {
        let records = CohortGenerator::new("x", SiteProfile::default(), 1).cohort(
            0,
            10,
            &DiseaseModel::stroke(),
        );
        let mut net = MedicalNetwork::builder()
            .site("only", records)
            .build()
            .unwrap();
        let result = net.submit_as(
            5,
            TxPayload::Anchor { root: Hash256::ZERO, label: "x".into() },
            100,
        );
        assert_eq!(result, Err(NetworkError::NoSuchSite(5)));
        // Error text is informative.
        assert!(NetworkError::NoSuchSite(5).to_string().contains("5"));
    }

    #[test]
    fn fda_index_is_none_without_fda() {
        let records = CohortGenerator::new("x", SiteProfile::default(), 1).cohort(
            0,
            5,
            &DiseaseModel::stroke(),
        );
        let net = MedicalNetwork::builder().site("h0", records).build().unwrap();
        assert_eq!(net.fda_index(), None);
    }
}

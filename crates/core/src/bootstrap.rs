//! Bootstrap-from-peer: stream a snapshot + WAL tail into a site that
//! has nothing (or too little) on its own disk (DESIGN.md §14).
//!
//! Local recovery replays a site's *own* WAL; a wiped or brand-new site
//! has none. Instead of re-executing the whole chain from genesis, the
//! joiner asks a healthy peer for its newest snapshot
//! ([`SnapshotManifest`] + CRC-framed chunks over the gateway's framed
//! protocol), installs it through the root-verified path, and catches
//! up the remaining heights block-by-block through `Ledger::apply`.
//!
//! Two halves:
//!
//! - [`SnapshotPeer`]: a transient loopback TCP server a healthy
//!   replica runs while a sibling bootstraps. It serves exactly the
//!   snapshot-streaming subset of the gateway protocol (`SnapshotInfo`
//!   / `SnapshotChunk` / `BlocksFrom`) from a captured
//!   [`BootstrapSource`], so the joiner's fetch path is byte-identical
//!   whether it talks to this temp peer or to a full public gateway.
//! - [`stream_into`]: the joiner side. Fetches, reassembles
//!   (resumably — interrupted transfers re-request only missing
//!   chunks), adopts the payload as a local snapshot file, installs it
//!   via `Ledger::restore_with_tree` (the ONLY install path: a payload
//!   whose authenticated root disagrees with its tip header never
//!   enters the ledger), then applies the WAL tail. After it returns,
//!   the joiner's disk is self-sufficient: the adopted snapshot plus
//!   its freshly-appended WAL tail recover natively on the next
//!   restart.
//!
//! The trust boundary is the same as `stream.rs` documents: CRCs catch
//! accidents, the root-vs-header check at install catches malice. A
//! peer can serve garbage; it cannot make the joiner commit to it.

use crate::client::{Client, ClientError};
use crate::gateway::{write_frame, FrameBuffer, GatewayRequest, GatewayResponse, MAX_FRAME};
use medchain_chain::{Block, Ledger, ShardId};
use medchain_runtime::codec::{Decode, Encode};
use medchain_storage::stream::{
    chunk_at, manifest_for, snapshot_payload, SnapshotAssembler, SnapshotManifest,
};
use medchain_storage::{BlockStore, DiskStore};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything a peer needs captured to serve one bootstrap: the
/// snapshot payload being streamed, its manifest, and the block tail
/// above the snapshot height.
#[derive(Debug, Clone)]
pub struct BootstrapSource {
    shard: ShardId,
    manifest: SnapshotManifest,
    payload: Vec<u8>,
    tail: Vec<Block>,
    tip_height: u64,
}

impl BootstrapSource {
    /// Captures a streamable source from a healthy replica: its
    /// newest on-disk snapshot (bounding the tail to the retained
    /// blocks) when a store is given, else a snapshot of the current
    /// tip built from memory (empty tail).
    ///
    /// Returns `None` when the usable snapshot height has already been
    /// pruned out of the ledger's retained blocks — the peer cannot
    /// serve a tail it no longer holds.
    pub fn capture(ledger: &Ledger, store: Option<&DiskStore>) -> Option<BootstrapSource> {
        let on_disk = store.and_then(|s| s.latest_snapshot_payload().ok().flatten());
        let (height, payload) = match on_disk {
            Some((height, payload)) if height >= ledger.base_height() => (height, payload),
            // No snapshot on disk (or its tail is gone): snapshot the
            // live tip from memory. state_tree() is O(1) here (cached).
            _ => {
                let tip = ledger.tip();
                let payload = snapshot_payload(tip, ledger.state(), &ledger.state_tree());
                (tip.header.height, payload)
            }
        };
        let snap_tip = if height == ledger.height() {
            ledger.tip().clone()
        } else {
            ledger.block(height)?.clone()
        };
        let manifest = manifest_for(&snap_tip, &payload);
        let tail = ledger.blocks_from(height + 1).to_vec();
        Some(BootstrapSource {
            shard: ledger.shard(),
            manifest,
            payload,
            tail,
            tip_height: ledger.height(),
        })
    }

    /// The manifest being served.
    pub fn manifest(&self) -> &SnapshotManifest {
        &self.manifest
    }

    fn answer(&self, request: &GatewayRequest) -> GatewayResponse {
        match request {
            GatewayRequest::SnapshotInfo { shard } if *shard == self.shard => {
                GatewayResponse::SnapshotOffer { manifest: Some(self.manifest.clone()) }
            }
            GatewayRequest::SnapshotChunk { shard, height, index }
                if *shard == self.shard && *height == self.manifest.height =>
            {
                GatewayResponse::SnapshotPiece {
                    chunk: chunk_at(self.manifest.height, &self.payload, *index),
                }
            }
            GatewayRequest::BlocksFrom { shard, height } if *shard == self.shard => {
                let skip = height.saturating_sub(self.manifest.height + 1) as usize;
                let mut blocks: Vec<Block> =
                    self.tail.iter().skip(skip).cloned().collect();
                // Bound the page to the frame cap, like the gateway.
                let envelope = 1 + 8 + 4;
                let mut size =
                    envelope + blocks.iter().map(|b| b.encoded().len()).sum::<usize>();
                while size > MAX_FRAME {
                    let dropped = blocks.pop().expect("envelope fits");
                    size -= dropped.encoded().len();
                }
                GatewayResponse::Blocks { tip_height: self.tip_height, blocks }
            }
            _ => GatewayResponse::SnapshotOffer { manifest: None },
        }
    }
}

/// A transient loopback server streaming one [`BootstrapSource`].
/// Serves any number of joiners until dropped.
#[derive(Debug)]
pub struct SnapshotPeer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl SnapshotPeer {
    /// Binds an OS-assigned loopback port and starts serving `source`.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the loopback listener cannot start.
    pub fn serve(source: BootstrapSource) -> io::Result<SnapshotPeer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut workers = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let source = source.clone();
                            let stop = Arc::clone(&stop);
                            workers.push(std::thread::spawn(move || {
                                serve_conn(stream, &source, &stop);
                            }));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                for worker in workers {
                    let _ = worker.join();
                }
            })
        };
        Ok(SnapshotPeer { addr, stop, acceptor: Some(acceptor) })
    }

    /// The address joiners connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for SnapshotPeer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

/// One connection's request/response loop against a captured source.
fn serve_conn(mut stream: TcpStream, source: &BootstrapSource, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 8192];
    while !stop.load(Ordering::Relaxed) {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                frames.extend(&chunk[..n]);
                loop {
                    match frames.next_frame() {
                        Ok(Some(payload)) => {
                            let Ok(request) = GatewayRequest::decoded(&payload) else { return };
                            let response = source.answer(&request);
                            if write_frame(&mut stream, &response.encoded()).is_err() {
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => return,
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        }
    }
}

/// Why a streamed bootstrap failed.
#[derive(Debug)]
pub enum BootstrapError {
    /// Transport or protocol failure against the peer.
    Peer(ClientError),
    /// The peer offered no snapshot to stream.
    NothingOffered,
    /// The assembled payload failed its manifest commitments, or did
    /// not decode as a snapshot, or its root disagreed with the tip
    /// header — re-request from a different peer.
    BadSnapshot(String),
    /// A tail block failed to apply on the restored ledger.
    BadTail(String),
    /// Local disk failure while adopting the snapshot.
    Storage(String),
}

impl std::fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootstrapError::Peer(e) => write!(f, "peer failure: {e}"),
            BootstrapError::NothingOffered => write!(f, "peer offered no snapshot"),
            BootstrapError::BadSnapshot(e) => write!(f, "streamed snapshot rejected: {e}"),
            BootstrapError::BadTail(e) => write!(f, "tail block rejected: {e}"),
            BootstrapError::Storage(e) => write!(f, "local storage failed: {e}"),
        }
    }
}

impl std::error::Error for BootstrapError {}

impl From<ClientError> for BootstrapError {
    fn from(e: ClientError) -> BootstrapError {
        BootstrapError::Peer(e)
    }
}

/// What [`stream_into`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapReport {
    /// Height of the installed snapshot.
    pub snapshot_height: u64,
    /// Tail blocks applied above the snapshot.
    pub tail_blocks: u64,
    /// Snapshot chunks fetched (including re-requested ones).
    pub chunks_fetched: u64,
    /// Final ledger height.
    pub height: u64,
}

/// Streams a peer's snapshot + WAL tail into `ledger` (which must be
/// at genesis with its runtime installed, exactly like local
/// recovery), adopting the snapshot into `store` so the site recovers
/// natively from its own disk on the next restart. Attach the store to
/// the ledger only *after* this returns — tail blocks are applied here
/// with the store attached internally, so they land in the WAL.
///
/// The snapshot enters the ledger exclusively through
/// `Ledger::restore_with_tree` (after `SnapshotStore::load`'s CRC /
/// decode / self-consistency validation): the root-verified install
/// invariant of DESIGN.md §14.
///
/// # Errors
///
/// See [`BootstrapError`]; the ledger is left untouched (still at
/// genesis) on any snapshot-phase failure, and at the snapshot height
/// plus whatever tail applied cleanly on a tail-phase failure.
pub fn stream_into(
    peer: SocketAddr,
    shard: ShardId,
    ledger: &mut Ledger,
    store: &mut DiskStore,
) -> Result<BootstrapReport, BootstrapError> {
    let mut client = Client::connect(peer)?;
    let manifest = client.snapshot_manifest(shard)?.ok_or(BootstrapError::NothingOffered)?;
    let snapshot_height = manifest.height;
    let mut assembler = SnapshotAssembler::new(manifest);
    let mut chunks_fetched = 0u64;
    // Resumable fetch: each pass asks only for what is still missing,
    // so a dropped connection or a corrupt chunk costs one re-request,
    // not a restart. Two extra passes bound accidental corruption;
    // a peer that keeps serving bad chunks is abandoned.
    for _pass in 0..3 {
        for index in assembler.missing() {
            let Some(chunk) = client.snapshot_chunk(shard, snapshot_height, index)? else {
                return Err(BootstrapError::NothingOffered);
            };
            chunks_fetched += 1;
            // A bad chunk stays missing; the next pass re-requests it.
            let _ = assembler.accept(chunk);
        }
        if assembler.is_complete() {
            break;
        }
    }
    let payload =
        assembler.finish().map_err(|e| BootstrapError::BadSnapshot(e.to_string()))?;
    // Adopt as a local snapshot file, then install through the SAME
    // validation + root-verified path as local recovery.
    store
        .snapshots()
        .adopt_payload(snapshot_height, &payload)
        .map_err(|e| BootstrapError::Storage(e.to_string()))?;
    let snap = store
        .snapshots()
        .load(snapshot_height)
        .map_err(|e| BootstrapError::Storage(e.to_string()))?
        .ok_or_else(|| {
            BootstrapError::BadSnapshot("adopted payload failed snapshot validation".into())
        })?;
    ledger
        .restore_with_tree(snap.state, snap.tip, snap.tree)
        .map_err(|e| BootstrapError::BadSnapshot(e.to_string()))?;
    // WAL-tail catch-up through Ledger::apply. Each applied block is
    // persisted write-ahead into this site's own (empty) log, whose
    // first append pins height snapshot_height + 1 — exactly the
    // `snap.height + 1 == first_height` rule local recovery expects.
    let mut tail_blocks = 0u64;
    let mut next = snapshot_height + 1;
    loop {
        let (tip_height, blocks) = client.blocks_from(shard, next)?;
        if blocks.is_empty() {
            if ledger.height() >= tip_height {
                break;
            }
            return Err(BootstrapError::BadTail(format!(
                "peer tip is {tip_height} but serves no blocks above {next}"
            )));
        }
        for block in &blocks {
            ledger.apply(block).map_err(|e| {
                BootstrapError::BadTail(format!("height {}: {e}", block.header.height))
            })?;
            store
                .append(block, ledger.state())
                .map_err(|e| BootstrapError::Storage(e.to_string()))?;
            tail_blocks += 1;
        }
        next = ledger.height() + 1;
        if ledger.height() >= tip_height {
            break;
        }
    }
    Ok(BootstrapReport {
        snapshot_height,
        tail_blocks,
        chunks_fetched,
        height: ledger.height(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MedicalNetwork;
    use medchain_chain::{Hash256, TxPayload};
    use medchain_contracts::runtime::Runtime;
    use medchain_storage::StorageConfig;

    fn test_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("medchain-bootstrap-{tag}-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        dir
    }

    /// A small consortium with a few committed anchors past the setup.
    fn source_network() -> MedicalNetwork {
        let mut builder = MedicalNetwork::builder();
        for i in 0..2 {
            builder = builder.site(&format!("hospital-{i}"), Vec::new());
        }
        let mut net = builder.build().unwrap();
        for round in 0..3 {
            let label = format!("hospital-0/scan-{round}");
            net.submit_as(
                0,
                TxPayload::Anchor { root: Hash256::digest(label.as_bytes()), label },
                1_000,
            )
            .unwrap();
            net.advance(1).unwrap();
        }
        net
    }

    /// A joiner's empty ledger: same chain id, registry, and runtime as
    /// the cohort, nothing replayed — exactly what a wiped site has.
    fn fresh_target(net: &MedicalNetwork) -> Ledger {
        Ledger::new("medchain", net.registry().clone(), Box::new(Runtime::standard()))
    }

    #[test]
    fn streamed_bootstrap_matches_source_and_recovers_natively() {
        let net = source_network();
        let source = BootstrapSource::capture(net.ledger(), None).unwrap();
        let peer = SnapshotPeer::serve(source).unwrap();
        let dir = test_dir("happy");
        let mut store = DiskStore::open(&dir, StorageConfig::default()).unwrap();
        let mut ledger = fresh_target(&net);
        let report =
            stream_into(peer.addr(), net.ledger().shard(), &mut ledger, &mut store).unwrap();
        assert_eq!(report.height, net.height());
        // Tip-id equality covers the state root: it is committed in the
        // tip header, which restore_with_tree verified against the tree.
        assert_eq!(ledger.tip().id(), net.ledger().tip().id());
        // The adopted snapshot (+ any appended tail) makes the joiner's
        // disk self-sufficient: a plain local restart recovers it.
        drop(store);
        let mut store = DiskStore::open(&dir, StorageConfig::default()).unwrap();
        let mut recovered = fresh_target(&net);
        let rec = store.recover_into(&mut recovered).unwrap();
        assert_eq!(rec.tip_id, net.ledger().tip().id());
        assert_eq!(recovered.height(), net.height());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A peer that answers the manifest request, then hangs up — every
    /// later request hits a closed socket, like a peer crashing
    /// mid-stream.
    fn flaky_peer(source: BootstrapSource) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut frames = FrameBuffer::new();
            let mut buf = [0u8; 8192];
            loop {
                let n = match stream.read(&mut buf) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => n,
                };
                frames.extend(&buf[..n]);
                while let Ok(Some(payload)) = frames.next_frame() {
                    let Ok(request) = GatewayRequest::decoded(&payload) else { return };
                    let response = source.answer(&request);
                    if write_frame(&mut stream, &response.encoded()).is_err() {
                        return;
                    }
                    if matches!(request, GatewayRequest::SnapshotInfo { .. }) {
                        return; // crash right after serving the manifest
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn crash_mid_stream_leaves_no_torn_install_and_retry_succeeds() {
        let net = source_network();
        let source = BootstrapSource::capture(net.ledger(), None).unwrap();
        let dir = test_dir("crash");
        let mut store = DiskStore::open(&dir, StorageConfig::default()).unwrap();
        let mut ledger = fresh_target(&net);
        let shard = net.ledger().shard();

        let (addr, handle) = flaky_peer(source.clone());
        let err = stream_into(addr, shard, &mut ledger, &mut store).unwrap_err();
        handle.join().unwrap();
        assert!(matches!(err, BootstrapError::Peer(_)), "unexpected error: {err:?}");
        // Nothing torn: the ledger is untouched at genesis and no
        // partial snapshot was adopted onto disk.
        assert_eq!(ledger.height(), 0);
        assert!(store.latest_snapshot_payload().unwrap().is_none());

        // A clean re-request against a healthy peer completes and
        // agrees with the cohort.
        let peer = SnapshotPeer::serve(source).unwrap();
        let report = stream_into(peer.addr(), shard, &mut ledger, &mut store).unwrap();
        assert_eq!(report.height, net.height());
        assert_eq!(ledger.tip().id(), net.ledger().tip().id());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! World state, receipts, and the ledger (chain of applied blocks).
//!
//! The ledger is execution-layer-agnostic: `Deploy`/`Invoke` payloads are
//! delegated to a pluggable [`ContractRuntime`] (implemented by
//! `medchain-contracts`), while `Transfer` and `Anchor` payloads are
//! interpreted natively. Every node holds an identical ledger — this is
//! precisely the duplicated-computing property the paper sets out to
//! exploit and then reform.

use crate::auth::{LeafKey, StateProof, StateTree};
use crate::block::{Block, Header};
use crate::exec::{self, ExecScope, StateAccess, StateDelta, WorldStateOverlay};
use crate::hash::Hash256;
use crate::merkle::MerkleTree;
use crate::shard::ShardId;
use crate::sig::{Address, KeyRegistry};
use crate::store::BlockStore;
use crate::tx::Transaction;
use medchain_runtime::codec::Encode;
use medchain_runtime::metrics::Metrics;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The newest cross-link the coordinator chain holds for one shard:
/// the shard's committed tip at link time (DESIGN.md §9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossLinkRecord {
    /// Height of the linked shard tip.
    pub height: u64,
    /// Digest of the linked shard tip header.
    pub tip: Hash256,
}

/// A two-phase-commit lock held on one account by an in-flight
/// cross-shard transaction (DESIGN.md §12). Created by `XsPrepare`,
/// released by `XsFinalize`. A debit-side lock has already escrowed
/// `amount` out of the balance; an abort-finalize refunds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XsLock {
    /// Cross-shard transaction holding the lock.
    pub xid: Hash256,
    /// Amount escrowed (debit) or pending (credit).
    pub amount: u64,
    /// Whether this is the debit (escrow) side.
    pub debit: bool,
    /// Chain-time deadline after which the coordinator may abort.
    pub deadline_ms: u64,
}

/// The coordinator chain's recorded commit/abort decision for one
/// cross-shard transaction. At most one record ever exists per `xid`;
/// participants resolve interrupted 2PC rounds against it on restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XsDecisionRecord {
    /// `true` for commit, `false` for abort.
    pub commit: bool,
    /// Id of the `XsDecide` transaction, so gateways can serve the
    /// proof-carrying coordinator receipt for the decision.
    pub tx_id: Hash256,
}

/// An account record: token balance and replay-protection nonce.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Account {
    /// Token balance in base units.
    pub balance: u64,
    /// Next expected transaction nonce.
    pub nonce: u64,
}

/// An event emitted during contract execution.
///
/// The off-chain monitor node (paper Fig. 3) subscribes to these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Emitting contract.
    pub contract: Address,
    /// Topic string, e.g. `"DataRequested"`.
    pub topic: String,
    /// Opaque payload.
    pub data: Vec<u8>,
}

/// Execution receipt for one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// Transaction id.
    pub tx_id: Hash256,
    /// Whether execution succeeded.
    pub ok: bool,
    /// Gas consumed.
    pub gas_used: u64,
    /// Return data (empty on failure).
    pub output: Vec<u8>,
    /// Events emitted (empty on failure).
    pub events: Vec<Event>,
    /// Error description when `ok` is false.
    pub error: Option<String>,
}

/// Successful contract execution outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Gas consumed.
    pub gas_used: u64,
    /// Return data.
    pub output: Vec<u8>,
    /// Events emitted.
    pub events: Vec<Event>,
}

/// Error produced by contract execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Gas consumed before the failure.
    pub gas_used: u64,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "contract execution failed: {}", self.reason)
    }
}

impl std::error::Error for ExecError {}

/// Pluggable smart-contract execution layer.
///
/// Execution mutates state through the [`StateAccess`] trait rather
/// than a concrete [`WorldState`]: during block application the ledger
/// hands the runtime a buffered overlay, so contract writes stay
/// speculative until the block's delta commits (DESIGN.md §11).
#[allow(clippy::too_many_arguments)] // execution context is intrinsically wide
pub trait ContractRuntime: Send + Sync {
    /// Deploys `code` at `contract_addr`, running any constructor with
    /// `init`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the code is malformed or the constructor
    /// fails or runs out of gas.
    fn deploy(
        &self,
        sender: Address,
        contract_addr: Address,
        code: &[u8],
        init: &[u8],
        gas_limit: u64,
        now_ms: u64,
        state: &mut dyn StateAccess,
    ) -> Result<ExecOutcome, ExecError>;

    /// Invokes the contract at `contract` with `input`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on missing contract, trap, or out-of-gas.
    fn invoke(
        &self,
        sender: Address,
        contract: Address,
        input: &[u8],
        gas_limit: u64,
        now_ms: u64,
        state: &mut dyn StateAccess,
    ) -> Result<ExecOutcome, ExecError>;

    /// Statically classifies the state footprint of `code` for
    /// read/write-set inference (`exec::read_write_set`). The default is
    /// the conservative [`ExecScope::MayEscape`]; runtimes that can
    /// prove code touches only its own contract return
    /// [`ExecScope::SelfContained`] to unlock parallel scheduling.
    fn code_scope(&self, code: &[u8]) -> ExecScope {
        let _ = code;
        ExecScope::MayEscape
    }
}

/// Runtime that rejects all contract transactions; used by chain-only
/// deployments and tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRuntime;

impl ContractRuntime for NullRuntime {
    fn deploy(
        &self,
        _sender: Address,
        _contract_addr: Address,
        _code: &[u8],
        _init: &[u8],
        gas_limit: u64,
        _now_ms: u64,
        _state: &mut dyn StateAccess,
    ) -> Result<ExecOutcome, ExecError> {
        let _ = gas_limit;
        Err(ExecError { gas_used: 0, reason: "no contract runtime installed".into() })
    }

    fn invoke(
        &self,
        _sender: Address,
        _contract: Address,
        _input: &[u8],
        _gas_limit: u64,
        _now_ms: u64,
        _state: &mut dyn StateAccess,
    ) -> Result<ExecOutcome, ExecError> {
        Err(ExecError { gas_used: 0, reason: "no contract runtime installed".into() })
    }

    fn code_scope(&self, _code: &[u8]) -> ExecScope {
        // Rejecting an invoke touches no state at all.
        ExecScope::SelfContained
    }
}

/// Disk backing for cold account records (DESIGN.md §14) — implemented
/// by `medchain-storage`'s page cache.
///
/// The ledger's invariant is **hot/cold disjointness**: an address lives
/// in the resident map *or* in the pager, never both. Every write path
/// promotes (takes) the cold record first, and
/// [`WorldState::demote_accounts`] moves records the other way, so the
/// merged view — reads, iteration, counts, equality, and the canonical
/// encoding — is identical to a fully resident state. Paging is
/// representation, never semantics.
///
/// Only accounts page out. `storage`/`code` reads hand back borrowed
/// slices (`Option<&[u8]>`), which a disk fall-through behind `&self`
/// cannot produce without changing the `StateAccess` contract, so those
/// components stay resident; accounts are the patient-scale component
/// the paper's consortium actually grows by the million.
///
/// Implementors must tolerate `&self` mutation (interior mutability) and
/// concurrent readers: parallel block execution reads accounts from
/// worker lanes. Cold-record load failure is unrecoverable data loss —
/// panic with context, don't return a default (see the page-store
/// contract in `medchain-storage`).
pub trait AccountPager: Send + Sync {
    /// Reads the cold record for `addr` without promoting it.
    fn load(&self, addr: &Address) -> Option<Account>;
    /// Removes and returns the cold record for `addr` (promotion).
    fn take(&self, addr: &Address) -> Option<Account>;
    /// Demotes one record to cold storage (the address must not already
    /// be cold — the ledger only demotes hot records).
    fn store(&self, addr: &Address, account: &Account);
    /// Number of cold records.
    fn len(&self) -> usize;
    /// Whether no records are cold.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Every cold record in ascending address order — the merge feed for
    /// iteration and the canonical encoding.
    fn entries(&self) -> Vec<(Address, Account)>;
    /// Writes buffered pages to disk (called at snapshot boundaries).
    fn flush(&self);
}

/// The replicated world state.
///
/// Storage nests per-contract so hot-path slot reads resolve with two
/// borrowed-key lookups instead of building an owned `(Address, Vec<u8>)`
/// tuple per read. Invariant: no contract maps to an empty slot map
/// (deletes prune it), keeping equality and the codec canonical.
///
/// With an [`AccountPager`] attached, cold account records live on disk
/// and `accounts` holds only the hot set (see the trait's disjointness
/// contract). Everything observable — reads, deltas, roots, encoded
/// bytes — is independent of which records happen to be resident.
#[derive(Default)]
pub struct WorldState {
    accounts: BTreeMap<Address, Account>,
    storage: BTreeMap<Address, BTreeMap<Vec<u8>, Vec<u8>>>,
    code: BTreeMap<Address, Vec<u8>>,
    anchors: BTreeMap<String, Hash256>,
    crosslinks: BTreeMap<u16, CrossLinkRecord>,
    locks: BTreeMap<Address, XsLock>,
    xs_decisions: BTreeMap<Hash256, XsDecisionRecord>,
    /// Cold-account backing; `None` = fully resident. Not part of the
    /// value: excluded from `Clone`/`PartialEq`/codec (clones
    /// materialize, equality and bytes compare the merged view).
    pager: Option<Arc<dyn AccountPager>>,
}

impl fmt::Debug for WorldState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorldState")
            .field("accounts", &self.accounts)
            .field("paged_accounts", &self.paged_account_count())
            .field("storage", &self.storage)
            .field("code", &self.code)
            .field("anchors", &self.anchors)
            .field("crosslinks", &self.crosslinks)
            .field("locks", &self.locks)
            .field("xs_decisions", &self.xs_decisions)
            .finish()
    }
}

impl Clone for WorldState {
    /// Clones materialize: the copy is fully resident and detached from
    /// the pager (two states mutating one spill file would corrupt each
    /// other's cold sets).
    fn clone(&self) -> Self {
        let mut accounts = self.accounts.clone();
        if let Some(pager) = &self.pager {
            accounts.extend(pager.entries());
        }
        WorldState {
            accounts,
            storage: self.storage.clone(),
            code: self.code.clone(),
            anchors: self.anchors.clone(),
            crosslinks: self.crosslinks.clone(),
            locks: self.locks.clone(),
            xs_decisions: self.xs_decisions.clone(),
            pager: None,
        }
    }
}

impl PartialEq for WorldState {
    fn eq(&self, other: &Self) -> bool {
        let accounts_eq = if self.pager.is_none() && other.pager.is_none() {
            self.accounts == other.accounts
        } else {
            // Merged-view comparison: residency is representation, not
            // value.
            self.account_count() == other.account_count() && {
                let mut theirs = Vec::with_capacity(other.account_count());
                other.for_each_account(&mut |addr, account| theirs.push((*addr, *account)));
                let mut i = 0;
                let mut equal = true;
                self.for_each_account(&mut |addr, account| {
                    equal = equal && theirs[i] == (*addr, *account);
                    i += 1;
                });
                equal
            }
        };
        accounts_eq
            && self.storage == other.storage
            && self.code == other.code
            && self.anchors == other.anchors
            && self.crosslinks == other.crosslinks
            && self.locks == other.locks
            && self.xs_decisions == other.xs_decisions
    }
}

impl Eq for WorldState {}

impl WorldState {
    /// Creates an empty state.
    pub fn new() -> WorldState {
        WorldState::default()
    }

    /// Attaches the cold-account store. The pager must start empty; the
    /// resident map is the entire state at that moment, and only
    /// [`WorldState::demote_accounts`] moves records cold.
    pub fn attach_account_pager(&mut self, pager: Arc<dyn AccountPager>) {
        debug_assert!(pager.is_empty(), "account pager must be attached empty");
        self.pager = Some(pager);
    }

    /// Number of account records currently cold.
    pub fn paged_account_count(&self) -> usize {
        self.pager.as_ref().map_or(0, |p| p.len())
    }

    /// Moves hot accounts (outside `keep`) to the pager until at most
    /// `max_hot` stay resident; returns how many were demoted. Lowest
    /// addresses demote first — the ledger passes the block's written
    /// addresses as `keep`, so the write-hot set stays resident.
    pub fn demote_accounts(&mut self, max_hot: usize, keep: &BTreeSet<Address>) -> usize {
        let Some(pager) = self.pager.clone() else { return 0 };
        let excess = self.accounts.len().saturating_sub(max_hot);
        if excess == 0 {
            return 0;
        }
        let victims: Vec<Address> =
            self.accounts.keys().filter(|a| !keep.contains(a)).take(excess).copied().collect();
        for addr in &victims {
            let account = self.accounts.remove(addr).expect("victim is hot");
            pager.store(addr, &account);
        }
        victims.len()
    }

    /// Promotes `addr`'s cold record into the resident map, if it has
    /// one. Every `&mut` account path calls this first, preserving
    /// hot/cold disjointness.
    fn promote(&mut self, addr: &Address) {
        if self.accounts.contains_key(addr) {
            return;
        }
        if let Some(account) = self.pager.as_ref().and_then(|p| p.take(addr)) {
            self.accounts.insert(*addr, account);
        }
    }

    /// Feeds every account to `emit` in ascending address order, merging
    /// the resident map with the pager's cold records (disjoint by
    /// invariant, so the merge is a plain ordered zip).
    fn for_each_account(&self, emit: &mut dyn FnMut(&Address, &Account)) {
        let Some(pager) = &self.pager else {
            for (addr, account) in &self.accounts {
                emit(addr, account);
            }
            return;
        };
        let cold = pager.entries();
        let mut hot = self.accounts.iter().peekable();
        let mut cold = cold.iter().peekable();
        loop {
            match (hot.peek(), cold.peek()) {
                (Some((ha, _)), Some((ca, _))) => {
                    debug_assert_ne!(*ha, ca, "hot/cold disjointness violated");
                    if *ha < ca {
                        let (addr, account) = hot.next().expect("peeked");
                        emit(addr, account);
                    } else {
                        let (addr, account) = cold.next().expect("peeked");
                        emit(addr, account);
                    }
                }
                (Some(_), None) => {
                    let (addr, account) = hot.next().expect("peeked");
                    emit(addr, account);
                }
                (None, Some(_)) => {
                    let (addr, account) = cold.next().expect("peeked");
                    emit(addr, account);
                }
                (None, None) => return,
            }
        }
    }

    /// Returns the account for `addr` (default if absent), falling
    /// through to the pager for cold records.
    pub fn account(&self, addr: &Address) -> Account {
        if let Some(account) = self.accounts.get(addr) {
            return *account;
        }
        self.pager.as_ref().and_then(|p| p.load(addr)).unwrap_or_default()
    }

    /// Credits `amount` to `addr`.
    pub fn credit(&mut self, addr: Address, amount: u64) {
        self.promote(&addr);
        self.accounts.entry(addr).or_default().balance += amount;
    }

    /// Debits `amount` from `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::InsufficientBalance`] if funds are missing.
    pub fn debit(&mut self, addr: Address, amount: u64) -> Result<(), LedgerError> {
        self.promote(&addr);
        let account = self.accounts.entry(addr).or_default();
        if account.balance < amount {
            return Err(LedgerError::InsufficientBalance {
                address: addr,
                have: account.balance,
                need: amount,
            });
        }
        account.balance -= amount;
        Ok(())
    }

    /// Reads a contract storage slot. Allocation-free: both map lookups
    /// borrow the caller's key.
    pub fn storage(&self, contract: &Address, key: &[u8]) -> Option<&[u8]> {
        self.storage.get(contract)?.get(key).map(Vec::as_slice)
    }

    /// Writes a contract storage slot (empty value deletes).
    pub fn set_storage(&mut self, contract: Address, key: Vec<u8>, value: Vec<u8>) {
        if value.is_empty() {
            self.storage_remove(&contract, &key);
        } else {
            self.storage_insert(contract, key, value);
        }
    }

    /// Inserts one slot, returning the prior value.
    fn storage_insert(&mut self, contract: Address, key: Vec<u8>, value: Vec<u8>) -> Option<Vec<u8>> {
        self.storage.entry(contract).or_default().insert(key, value)
    }

    /// Removes one slot, returning the prior value and pruning the
    /// contract's slot map if it becomes empty (canonical-form
    /// invariant).
    fn storage_remove(&mut self, contract: &Address, key: &[u8]) -> Option<Vec<u8>> {
        let slots = self.storage.get_mut(contract)?;
        let prior = slots.remove(key);
        if slots.is_empty() {
            self.storage.remove(contract);
        }
        prior
    }

    /// Iterates over the storage slots of one contract.
    pub fn storage_of<'a>(
        &'a self,
        contract: &'a Address,
    ) -> impl Iterator<Item = (&'a [u8], &'a [u8])> + 'a {
        self.storage
            .get(contract)
            .into_iter()
            .flat_map(|slots| slots.iter().map(|(k, v)| (k.as_slice(), v.as_slice())))
    }

    /// Returns deployed code at `addr`.
    pub fn code(&self, addr: &Address) -> Option<&[u8]> {
        self.code.get(addr).map(Vec::as_slice)
    }

    /// Installs contract code.
    pub fn set_code(&mut self, addr: Address, code: Vec<u8>) {
        self.code.insert(addr, code);
    }

    /// Looks up a data anchor by label.
    pub fn anchor(&self, label: &str) -> Option<Hash256> {
        self.anchors.get(label).copied()
    }

    /// Records a data anchor directly (genesis/state construction; live
    /// chains anchor through [`TxPayload::Anchor`] transactions).
    pub fn set_anchor(&mut self, label: &str, root: Hash256) {
        self.anchors.insert(label.to_string(), root);
    }

    /// Number of recorded anchors.
    pub fn anchor_count(&self) -> usize {
        self.anchors.len()
    }

    /// The newest cross-link recorded for `shard` (coordinator chains
    /// only; always `None` on data shards).
    pub fn cross_link(&self, shard: ShardId) -> Option<CrossLinkRecord> {
        self.crosslinks.get(&shard.0).copied()
    }

    /// All recorded cross-links as `(shard, record)` pairs, sorted by
    /// shard — what recovery checks each sub-chain against.
    pub fn cross_links(&self) -> impl Iterator<Item = (ShardId, CrossLinkRecord)> + '_ {
        self.crosslinks.iter().map(|(s, r)| (ShardId(*s), *r))
    }

    /// The 2PC lock held on `addr`, if any (data shards only).
    pub fn lock(&self, addr: &Address) -> Option<XsLock> {
        self.locks.get(addr).copied()
    }

    /// All held 2PC locks as `(account, lock)` pairs, sorted by
    /// account — what the cross-shard resolver scans after a restart.
    pub fn locks(&self) -> impl Iterator<Item = (Address, XsLock)> + '_ {
        self.locks.iter().map(|(a, l)| (*a, *l))
    }

    /// The coordinator's recorded decision for cross-shard transaction
    /// `xid`, if one was ever committed (coordinator chains only).
    pub fn xs_decision(&self, xid: &Hash256) -> Option<XsDecisionRecord> {
        self.xs_decisions.get(xid).copied()
    }

    /// All recorded cross-shard decisions, sorted by `xid`.
    pub fn xs_decisions(&self) -> impl Iterator<Item = (Hash256, XsDecisionRecord)> + '_ {
        self.xs_decisions.iter().map(|(x, d)| (*x, *d))
    }

    /// Deterministic commitment to the entire state: the versioned root
    /// of the sparse Merkle tree over every leaf (DESIGN.md §13).
    ///
    /// This rebuilds the tree from scratch — O(total state) — and exists
    /// as the reference path for tests, recovery checks, and ad-hoc
    /// callers. The ledger itself never rebuilds per block: it maintains
    /// a [`StateTree`] incrementally and pays O(keys changed).
    pub fn state_root(&self) -> Hash256 {
        StateTree::from_state(self).versioned_root()
    }

    /// [`WorldState::state_root`] as if `delta` were already committed,
    /// without mutating the state. Identical to committing the delta and
    /// hashing (property-tested below); still O(total state) because it
    /// rebuilds the tree — the ledger's cached-tree path is the fast
    /// equivalent.
    pub fn state_root_with(&self, delta: &StateDelta) -> Hash256 {
        StateTree::from_state(self).with_delta(delta).versioned_root()
    }

    /// Feeds every state entry to `emit` as its canonical
    /// (leaf key, value bytes) pair — the single enumeration the
    /// authenticated tree builds from.
    pub(crate) fn for_each_leaf(&self, emit: &mut dyn FnMut(LeafKey, &[u8])) {
        let mut scratch = Vec::new();
        self.for_each_account(&mut |addr, account| {
            scratch.clear();
            account.encode(&mut scratch);
            emit(LeafKey::Account(*addr), &scratch);
        });
        for (contract, slots) in &self.storage {
            for (key, value) in slots {
                emit(LeafKey::Storage(*contract, key.clone()), value);
            }
        }
        for (addr, code) in &self.code {
            emit(LeafKey::Code(*addr), code);
        }
        for (label, root) in &self.anchors {
            emit(LeafKey::Anchor(label.clone()), &root.0);
        }
        for (shard, link) in &self.crosslinks {
            scratch.clear();
            link.encode(&mut scratch);
            emit(LeafKey::CrossLink(*shard), &scratch);
        }
        for (addr, lock) in &self.locks {
            scratch.clear();
            lock.encode(&mut scratch);
            emit(LeafKey::Lock(*addr), &scratch);
        }
        for (xid, decision) in &self.xs_decisions {
            scratch.clear();
            decision.encode(&mut scratch);
            emit(LeafKey::XsDecision(*xid), &scratch);
        }
    }

    /// Canonical authenticated-leaf value bytes stored at `key`, or
    /// `None` when the entry is absent. This is the byte string a
    /// [`StateProof`] for `key` commits to.
    pub fn leaf_value(&self, key: &LeafKey) -> Option<Vec<u8>> {
        match key {
            LeafKey::Account(addr) => self
                .accounts
                .get(addr)
                .copied()
                .or_else(|| self.pager.as_ref().and_then(|p| p.load(addr)))
                .map(|a| a.encoded()),
            LeafKey::Storage(contract, slot) => {
                self.storage(contract, slot).map(|v| v.to_vec())
            }
            LeafKey::Code(addr) => self.code(addr).map(|c| c.to_vec()),
            LeafKey::Anchor(label) => self.anchor(label).map(|root| root.0.to_vec()),
            LeafKey::CrossLink(shard) => {
                self.cross_link(ShardId(*shard)).map(|link| link.encoded())
            }
            LeafKey::Lock(addr) => self.lock(addr).map(|lock| lock.encoded()),
            LeafKey::XsDecision(xid) => self.xs_decision(xid).map(|d| d.encoded()),
        }
    }

    /// Total number of authenticated leaves (equals
    /// `StateTree::from_state(self).len()` without building the tree).
    pub fn leaf_count(&self) -> usize {
        self.account_count()
            + self.storage_slot_count()
            + self.code.len()
            + self.anchors.len()
            + self.crosslinks.len()
            + self.locks.len()
            + self.xs_decisions.len()
    }

    /// Number of accounts with a materialized record, hot or cold.
    pub fn account_count(&self) -> usize {
        self.accounts.len() + self.paged_account_count()
    }

    /// Total storage slots across all contracts.
    pub fn storage_slot_count(&self) -> usize {
        self.storage.values().map(BTreeMap::len).sum()
    }

    /// Number of contracts with deployed code.
    pub fn code_count(&self) -> usize {
        self.code.len()
    }

    /// Number of currently held 2PC locks.
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// Commits `delta` into the state, returning the undo log that
    /// [`WorldState::revert`] uses if the write-ahead store append fails
    /// after the in-memory mutation.
    pub(crate) fn apply_delta(&mut self, delta: StateDelta) -> StateUndo {
        let mut undo = StateUndo::default();
        let StateDelta { accounts, storage, code, anchors, crosslinks, locks, xs_decisions } =
            delta;
        for (addr, account) in accounts {
            // The undo records the *merged* prior value: a delta write to
            // a cold address removes its pager record (disjointness), so
            // revert must be able to re-materialize it hot.
            let cold = self.pager.as_ref().and_then(|p| p.take(&addr));
            let prior = self.accounts.insert(addr, account).or(cold);
            undo.accounts.push((addr, prior));
        }
        for ((contract, key), value) in storage {
            let prior = match value {
                Some(value) => self.storage_insert(contract, key.clone(), value),
                None => self.storage_remove(&contract, &key),
            };
            undo.storage.push(((contract, key), prior));
        }
        for (addr, code) in code {
            undo.code.push((addr, self.code.insert(addr, code)));
        }
        for (label, root) in anchors {
            let prior = self.anchors.insert(label.clone(), root);
            undo.anchors.push((label, prior));
        }
        for (shard, link) in crosslinks {
            undo.crosslinks.push((shard, self.crosslinks.insert(shard, link)));
        }
        for (addr, lock) in locks {
            let prior = match lock {
                Some(lock) => self.locks.insert(addr, lock),
                None => self.locks.remove(&addr),
            };
            undo.locks.push((addr, prior));
        }
        for (xid, decision) in xs_decisions {
            undo.xs_decisions.push((xid, self.xs_decisions.insert(xid, decision)));
        }
        undo
    }

    /// Rolls back a [`WorldState::apply_delta`] exactly.
    pub(crate) fn revert(&mut self, undo: StateUndo) {
        for (addr, prior) in undo.accounts {
            match prior {
                Some(account) => self.accounts.insert(addr, account),
                None => self.accounts.remove(&addr),
            };
        }
        for ((contract, key), prior) in undo.storage {
            match prior {
                Some(value) => self.storage_insert(contract, key, value),
                None => self.storage_remove(&contract, &key),
            };
        }
        for (addr, prior) in undo.code {
            match prior {
                Some(code) => self.code.insert(addr, code),
                None => self.code.remove(&addr),
            };
        }
        for (label, prior) in undo.anchors {
            match prior {
                Some(root) => self.anchors.insert(label, root),
                None => self.anchors.remove(&label),
            };
        }
        for (shard, prior) in undo.crosslinks {
            match prior {
                Some(link) => self.crosslinks.insert(shard, link),
                None => self.crosslinks.remove(&shard),
            };
        }
        for (addr, prior) in undo.locks {
            match prior {
                Some(lock) => self.locks.insert(addr, lock),
                None => self.locks.remove(&addr),
            };
        }
        for (xid, prior) in undo.xs_decisions {
            match prior {
                Some(decision) => self.xs_decisions.insert(xid, decision),
                None => self.xs_decisions.remove(&xid),
            };
        }
    }
}

/// Direct map access: [`WorldState`] is the root implementor of the
/// state-access surface that overlays buffer in front of.
impl StateAccess for WorldState {
    fn account(&self, addr: &Address) -> Account {
        WorldState::account(self, addr)
    }

    fn set_account(&mut self, addr: Address, account: Account) {
        // Drop any cold copy first: a write re-homes the record hot.
        if let Some(pager) = &self.pager {
            pager.take(&addr);
        }
        self.accounts.insert(addr, account);
    }

    fn storage(&self, contract: &Address, key: &[u8]) -> Option<&[u8]> {
        WorldState::storage(self, contract, key)
    }

    fn set_storage(&mut self, contract: Address, key: Vec<u8>, value: Vec<u8>) {
        WorldState::set_storage(self, contract, key, value)
    }

    fn code(&self, addr: &Address) -> Option<&[u8]> {
        WorldState::code(self, addr)
    }

    fn set_code(&mut self, addr: Address, code: Vec<u8>) {
        WorldState::set_code(self, addr, code)
    }

    fn anchor(&self, label: &str) -> Option<Hash256> {
        WorldState::anchor(self, label)
    }

    fn set_anchor(&mut self, label: &str, root: Hash256) {
        WorldState::set_anchor(self, label, root)
    }

    fn cross_link(&self, shard: ShardId) -> Option<CrossLinkRecord> {
        WorldState::cross_link(self, shard)
    }

    fn set_cross_link(&mut self, shard: ShardId, record: CrossLinkRecord) {
        self.crosslinks.insert(shard.0, record);
    }

    fn lock(&self, addr: &Address) -> Option<XsLock> {
        WorldState::lock(self, addr)
    }

    fn set_lock(&mut self, addr: Address, lock: XsLock) {
        self.locks.insert(addr, lock);
    }

    fn clear_lock(&mut self, addr: &Address) {
        self.locks.remove(addr);
    }

    fn xs_decision(&self, xid: &Hash256) -> Option<XsDecisionRecord> {
        WorldState::xs_decision(self, xid)
    }

    fn set_xs_decision(&mut self, xid: Hash256, decision: XsDecisionRecord) {
        self.xs_decisions.insert(xid, decision);
    }
}

/// Prior values captured by [`WorldState::apply_delta`], `None` meaning
/// the key was absent.
#[derive(Debug, Default)]
pub(crate) struct StateUndo {
    accounts: Vec<(Address, Option<Account>)>,
    storage: Vec<((Address, Vec<u8>), Option<Vec<u8>>)>,
    code: Vec<(Address, Option<Vec<u8>>)>,
    anchors: Vec<(String, Option<Hash256>)>,
    crosslinks: Vec<(u16, Option<CrossLinkRecord>)>,
    locks: Vec<(Address, Option<XsLock>)>,
    xs_decisions: Vec<(Hash256, Option<XsDecisionRecord>)>,
}

/// Errors raised while validating or applying blocks and transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// Transaction signature missing or invalid.
    BadSignature(Hash256),
    /// Transaction nonce does not match the account.
    BadNonce {
        /// Offending transaction.
        tx_id: Hash256,
        /// Nonce the account expected.
        expected: u64,
        /// Nonce the transaction carried.
        got: u64,
    },
    /// Account balance too low.
    InsufficientBalance {
        /// Debited account.
        address: Address,
        /// Current balance.
        have: u64,
        /// Required amount.
        need: u64,
    },
    /// Block's parent does not match the chain tip.
    WrongParent,
    /// Block height is not tip + 1.
    WrongHeight {
        /// Expected height.
        expected: u64,
        /// Header height.
        got: u64,
    },
    /// Header `tx_root` does not commit to the body.
    BodyMismatch,
    /// Header `state_root` does not match post-execution state.
    StateRootMismatch,
    /// Block belongs to a different shard sub-chain than this ledger.
    WrongShard {
        /// Shard this ledger follows.
        expected: ShardId,
        /// Shard the header carried.
        got: ShardId,
    },
    /// An anchor label was re-registered with a different root.
    AnchorConflict(String),
    /// The account is locked by an in-flight cross-shard transaction
    /// (DESIGN.md §12); admission defers until the lock resolves.
    AccountLocked {
        /// Locked account.
        address: Address,
        /// Cross-shard transaction holding the lock.
        xid: Hash256,
    },
    /// A cross-shard debit prepare was signed by someone other than the
    /// account it escrows from (DESIGN.md §12): only the owner may lock
    /// its own funds.
    XsUnauthorizedDebit {
        /// Who signed the prepare.
        sender: Address,
        /// The account the debit leg tried to escrow.
        account: Address,
    },
    /// The attached [`BlockStore`] failed to persist the block; the
    /// in-memory commit was aborted (write-ahead ordering).
    Storage(String),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::BadSignature(id) => write!(f, "bad signature on transaction {id:?}"),
            LedgerError::BadNonce { tx_id, expected, got } => {
                write!(f, "bad nonce on {tx_id:?}: expected {expected}, got {got}")
            }
            LedgerError::InsufficientBalance { address, have, need } => {
                write!(f, "insufficient balance on {address:?}: have {have}, need {need}")
            }
            LedgerError::WrongParent => f.write_str("block parent does not match chain tip"),
            LedgerError::WrongHeight { expected, got } => {
                write!(f, "wrong block height: expected {expected}, got {got}")
            }
            LedgerError::BodyMismatch => f.write_str("tx root does not commit to block body"),
            LedgerError::StateRootMismatch => {
                f.write_str("state root does not match post-execution state")
            }
            LedgerError::WrongShard { expected, got } => {
                write!(f, "block belongs to {got}, this ledger follows {expected}")
            }
            LedgerError::AnchorConflict(label) => {
                write!(f, "anchor label {label:?} already registered with different root")
            }
            LedgerError::AccountLocked { address, xid } => {
                write!(f, "account {address:?} locked by cross-shard transaction {xid:?}")
            }
            LedgerError::XsUnauthorizedDebit { sender, account } => {
                write!(
                    f,
                    "debit prepare from {sender:?} on {account:?}: only the owner may escrow"
                )
            }
            LedgerError::Storage(e) => write!(f, "block store rejected commit: {e}"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// Counters describing the work a ledger has performed — inputs to the
/// energy model and the duplicated-computing experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Blocks applied.
    pub blocks: u64,
    /// Transactions executed.
    pub transactions: u64,
    /// Total gas consumed by contract execution.
    pub gas_used: u64,
    /// Transactions that failed execution.
    pub failed: u64,
}

/// A node's replicated ledger: block store + world state + receipts.
///
/// The ledger retains a suffix of the chain in memory (`base_height` is
/// the height of the oldest retained block — 0 until
/// [`Ledger::prune_below`] or [`Ledger::restore`] is used) and, when a
/// [`BlockStore`] is attached, persists every block write-ahead before
/// the in-memory commit.
pub struct Ledger {
    /// Retained blocks; `blocks[0]` has height `base_height`.
    blocks: Vec<Block>,
    base_height: u64,
    state: WorldState,
    receipts: BTreeMap<Hash256, Receipt>,
    /// `tx id → (block height, index in body)` for every committed
    /// transaction, feeding [`Ledger::tx_receipt`] proofs.
    tx_locations: BTreeMap<Hash256, (u64, usize)>,
    registry: KeyRegistry,
    runtime: Box<dyn ContractRuntime>,
    stats: LedgerStats,
    store: Option<Box<dyn BlockStore>>,
    shard: ShardId,
    shard_count: u16,
    /// Worker lanes for parallel block execution; 0 or 1 = sequential.
    exec_threads: usize,
    metrics: Metrics,
    /// Incrementally maintained authenticated state tree, always in sync
    /// with `state` at the committed tip. `None` after a direct
    /// [`Ledger::state_mut`] mutation (genesis funding); lazily rebuilt
    /// by [`Ledger::state_tree`]. The `Mutex` exists only for that lazy
    /// rebuild from `&self` paths (`propose`, `prove_state`).
    tree: Mutex<Option<StateTree>>,
    /// Paged-state configuration (DESIGN.md §14); `None` = fully
    /// resident. When set, every commit demotes cold accounts past
    /// `max_hot_accounts` and spills cold tree subtrees past
    /// `node_budget`.
    state_cache: Option<StateCacheConfig>,
    /// Post-commit hook fed the block and its flattened leaf updates —
    /// how derived projections (`latest_state`) stay current without a
    /// second delta pass through public API.
    commit_observer: Option<CommitObserver>,
}

/// Post-commit callback: the committed block plus its state changes as
/// `(leaf key, new value)` pairs (`None` = deleted), in
/// [`delta_updates`](crate::auth::delta_updates) order.
pub type CommitObserver = Box<dyn FnMut(&Block, &[(LeafKey, Option<Vec<u8>>)]) + Send>;

/// Wiring for the paged state cache (DESIGN.md §14): where cold account
/// records and cold tree subtrees go, and how much stays resident.
pub struct StateCacheConfig {
    /// Disk store for cold account records.
    pub accounts: Arc<dyn AccountPager>,
    /// Disk store for spilled state-tree subtrees.
    pub nodes: Arc<dyn crate::auth::NodePager>,
    /// Account records kept resident; the rest demote after each commit
    /// (the block's written addresses always stay hot).
    pub max_hot_accounts: usize,
    /// Tree nodes kept resident; cold subtrees past this spill to pages.
    pub node_budget: usize,
}

impl fmt::Debug for StateCacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StateCacheConfig")
            .field("max_hot_accounts", &self.max_hot_accounts)
            .field("node_budget", &self.node_budget)
            .finish()
    }
}

impl fmt::Debug for Ledger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ledger")
            .field("height", &self.height())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Ledger {
    /// Creates a ledger with the genesis block for `chain_id` — the
    /// unsharded case: shard 0 of a one-shard topology.
    pub fn new(chain_id: &str, registry: KeyRegistry, runtime: Box<dyn ContractRuntime>) -> Ledger {
        Ledger::new_sharded(chain_id, ShardId::default(), 1, registry, runtime)
    }

    /// Creates the ledger of sub-chain `shard` in a `shard_count`-shard
    /// topology (DESIGN.md §9). Contract addresses deployed here are
    /// derived with [`sharded_contract_address`] when `shard_count > 1`,
    /// so the invoke routing rule maps them back to this shard; blocks
    /// from any other shard are rejected with
    /// [`LedgerError::WrongShard`]. Pass [`ShardId::COORDINATOR`] for
    /// the cross-link chain.
    pub fn new_sharded(
        chain_id: &str,
        shard: ShardId,
        shard_count: u16,
        registry: KeyRegistry,
        runtime: Box<dyn ContractRuntime>,
    ) -> Ledger {
        assert!(shard_count > 0, "shard_count must be at least 1");
        Ledger {
            blocks: vec![Block::genesis_sharded(chain_id, shard)],
            base_height: 0,
            state: WorldState::new(),
            receipts: BTreeMap::new(),
            tx_locations: BTreeMap::new(),
            registry,
            runtime,
            stats: LedgerStats::default(),
            store: None,
            shard,
            shard_count,
            exec_threads: 1,
            metrics: Metrics::noop(),
            tree: Mutex::new(Some(StateTree::new())),
            state_cache: None,
            commit_observer: None,
        }
    }

    /// Attaches the paged state cache (DESIGN.md §14): cold accounts and
    /// cold tree subtrees past the configured budgets move to the pagers
    /// after every commit, keeping the resident footprint bounded while
    /// state roots stay byte-identical to a fully-resident node.
    ///
    /// Attach **after** any recovery replay or [`Ledger::restore`]: both
    /// pagers must be empty (the page file is derived data, truncated on
    /// open), and a restore drops the cache so a stale pager can never
    /// shadow the restored state.
    pub fn attach_state_cache(&mut self, cache: StateCacheConfig) {
        self.state.attach_account_pager(Arc::clone(&cache.accounts));
        if let Some(tree) = self.tree.get_mut().expect("state tree cache poisoned").as_mut() {
            tree.attach_pager(Arc::clone(&cache.nodes));
            tree.spill_to_budget(cache.node_budget);
        }
        self.state.demote_accounts(cache.max_hot_accounts, &BTreeSet::new());
        self.state_cache = Some(cache);
    }

    /// Whether a paged state cache is attached.
    pub fn has_state_cache(&self) -> bool {
        self.state_cache.is_some()
    }

    /// Installs the post-commit observer: after every successful
    /// [`Ledger::apply`] it receives the block and its flattened
    /// `(leaf key, new value)` updates. Used by the `latest_state`
    /// projection; at most one observer is held (setting replaces).
    pub fn set_commit_observer(&mut self, observer: CommitObserver) {
        self.commit_observer = Some(observer);
    }

    /// Enables wave-parallel block execution over `threads` worker
    /// lanes (DESIGN.md §11). `0` or `1` keeps the sequential path; the
    /// parallel schedule is guaranteed — property-tested — to produce
    /// byte-identical state roots and receipts.
    pub fn set_parallel_exec(&mut self, threads: usize) {
        self.exec_threads = threads.max(1);
    }

    /// Configured parallel-execution lanes (1 = sequential).
    pub fn parallel_exec(&self) -> usize {
        self.exec_threads
    }

    /// Installs a metrics handle; block application reports `exec.*`
    /// counters and histograms (waves per block, wave widths, conflict
    /// rate, per-wave wall) through it.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    pub(crate) fn exec_ctx(&self) -> exec::ExecCtx<'_> {
        exec::ExecCtx {
            runtime: &*self.runtime,
            registry: &self.registry,
            shard: self.shard,
            shard_count: self.shard_count,
        }
    }

    /// Which sub-chain this ledger follows.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Number of data shards in the topology this ledger is part of
    /// (1 for unsharded chains).
    pub fn shard_count(&self) -> u16 {
        self.shard_count
    }

    /// Attaches a durable [`BlockStore`]: every subsequent
    /// [`Ledger::apply`] persists the block *before* committing it in
    /// memory. Attach after any recovery replay so replayed blocks are
    /// not re-appended.
    pub fn attach_store(&mut self, store: Box<dyn BlockStore>) {
        self.store = Some(store);
    }

    /// Whether a durable store is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Mutable access to the attached store (diagnostics, flushing).
    pub fn store_mut(&mut self) -> Option<&mut (dyn BlockStore + 'static)> {
        self.store.as_deref_mut()
    }

    /// Current chain height (genesis = 0).
    pub fn height(&self) -> u64 {
        self.blocks.last().expect("genesis always present").header.height
    }

    /// The tip block.
    pub fn tip(&self) -> &Block {
        self.blocks.last().expect("genesis always present")
    }

    /// Block at `height`, if applied **and still retained in memory**
    /// (pruned heights return `None`; a storage-backed node serves them
    /// from its block log).
    pub fn block(&self, height: u64) -> Option<&Block> {
        let index = height.checked_sub(self.base_height)?;
        self.blocks.get(index as usize)
    }

    /// The retained blocks, oldest first. Before any pruning this is the
    /// whole chain, genesis first; after [`Ledger::prune_below`] or a
    /// snapshot [`Ledger::restore`] it is the retained suffix starting
    /// at [`Ledger::base_height`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Height of the oldest retained block (0 until pruned/restored).
    pub fn base_height(&self) -> u64 {
        self.base_height
    }

    /// Retained blocks with height ≥ `height`, oldest first. Returns the
    /// whole retained suffix when `height` predates it — callers that
    /// need truly older blocks must go to the block store.
    pub fn blocks_from(&self, height: u64) -> &[Block] {
        let from = height.saturating_sub(self.base_height).min(self.blocks.len() as u64);
        &self.blocks[from as usize..]
    }

    /// Drops retained blocks below `height` (the tip is always kept), so
    /// a storage-backed node can bound in-memory history. Returns the
    /// number of blocks dropped. State, receipts, and stats are
    /// untouched; pruned heights remain readable from the block store.
    pub fn prune_below(&mut self, height: u64) -> usize {
        let keep_from = height.min(self.height());
        let drop = keep_from.saturating_sub(self.base_height) as usize;
        if drop > 0 {
            self.blocks.drain(..drop);
            self.base_height = keep_from;
        }
        drop
    }

    /// Fast-sync restore: installs a snapshot (`state` at `tip`) as the
    /// new chain suffix, replacing all retained history. Subsequent
    /// [`Ledger::apply`] calls replay blocks above `tip`'s height.
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::StateRootMismatch`] if `state` does not
    /// hash to `tip.header.state_root` — a snapshot that disagrees with
    /// its block is never installed.
    pub fn restore(&mut self, state: WorldState, tip: Block) -> Result<(), LedgerError> {
        let tree = StateTree::from_state(&state);
        self.restore_with_tree(state, tip, tree)
    }

    /// [`Ledger::restore`] with a pre-built authenticated tree (fast
    /// recovery: snapshots persist the tree, so installing it skips the
    /// O(total state) rehash entirely — the tree's cached root is
    /// checked against the tip header instead).
    ///
    /// The tree must be the tree *of* `state`: the root check binds its
    /// hashes to the block header, and the leaf-count check rejects a
    /// tree/state pair that drifted in size. A corrupt-but-root-matching
    /// tree would require a SHA-256 break or a tampered snapshot whose
    /// header root was also tampered — which recovery's header-chain
    /// validation catches.
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::StateRootMismatch`] if the tree's
    /// versioned root does not match `tip.header.state_root` or its leaf
    /// count disagrees with `state`.
    pub fn restore_with_tree(
        &mut self,
        state: WorldState,
        tip: Block,
        tree: StateTree,
    ) -> Result<(), LedgerError> {
        if tree.versioned_root() != tip.header.state_root || tree.len() != state.leaf_count() {
            return Err(LedgerError::StateRootMismatch);
        }
        self.base_height = tip.header.height;
        self.blocks = vec![tip];
        self.state = state;
        self.receipts.clear();
        // Like receipts, locations only cover blocks applied after the
        // snapshot: a restored node re-learns them as it replays.
        self.tx_locations.clear();
        self.stats = LedgerStats::default();
        *self.tree.get_mut().expect("state tree cache poisoned") = Some(tree);
        // A restored state is fully resident and the old pagers may hold
        // entries for the replaced state — drop the cache rather than
        // let stale pages shadow it. Wiring re-attaches a fresh cache.
        self.state_cache = None;
        Ok(())
    }

    /// Current world state.
    pub fn state(&self) -> &WorldState {
        &self.state
    }

    /// Mutable world state access, for genesis funding in simulations.
    ///
    /// Direct mutation bypasses the delta path the authenticated tree is
    /// maintained from, so the cached tree is dropped here and lazily
    /// rebuilt (O(total state), once) on the next root or proof request.
    pub fn state_mut(&mut self) -> &mut WorldState {
        *self.tree.get_mut().expect("state tree cache poisoned") = None;
        &mut self.state
    }

    /// The authenticated tree over the committed state (clone is O(1) —
    /// nodes are shared). Rebuilds the cache first if a [`state_mut`]
    /// mutation invalidated it.
    ///
    /// [`state_mut`]: Ledger::state_mut
    pub fn state_tree(&self) -> StateTree {
        let mut cached = self.tree.lock().expect("state tree cache poisoned");
        if cached.is_none() {
            let mut tree = StateTree::from_state(&self.state);
            if let Some(cache) = &self.state_cache {
                tree.attach_pager(Arc::clone(&cache.nodes));
                tree.spill_to_budget(cache.node_budget);
            }
            *cached = Some(tree);
        }
        cached.as_ref().expect("cache just filled").clone()
    }

    /// Builds the proof-carrying response for a light-client state query
    /// (DESIGN.md §13): the value at `key` (or `None`), its Merkle path,
    /// and the coordinates of the tip block the proof verifies against.
    ///
    /// The proof speaks about the *committed* state at the current tip.
    /// Between a direct [`Ledger::state_mut`] mutation (genesis funding)
    /// and the next applied block, state and tip header disagree by
    /// construction — proofs from that window fail client verification,
    /// matching the rule that only block-committed state is provable.
    pub fn prove_state(&self, key: &LeafKey) -> StateProof {
        let tree = self.state_tree();
        let tip = self.tip();
        StateProof {
            key: key.clone(),
            value: self.state.leaf_value(key),
            proof: tree.prove(key),
            state_root: tip.header.state_root,
            block_id: tip.id(),
            height: tip.header.height,
            shard: self.shard,
        }
    }

    /// Receipt for a transaction, if executed.
    pub fn receipt(&self, tx_id: &Hash256) -> Option<&Receipt> {
        self.receipts.get(tx_id)
    }

    /// `(block height, index in body)` of a committed transaction.
    pub fn locate_tx(&self, tx_id: &Hash256) -> Option<(u64, usize)> {
        self.tx_locations.get(tx_id).copied()
    }

    /// Builds the proof-carrying client receipt for a committed
    /// transaction (DESIGN.md §10).
    ///
    /// Returns `None` if the transaction never committed here or its
    /// block has been pruned from in-memory history — storage-backed
    /// nodes can still serve old blocks from the block log, but this
    /// fast path only proves against retained blocks.
    pub fn tx_receipt(&self, tx_id: &Hash256) -> Option<crate::receipt::TxReceipt> {
        let (height, _) = self.locate_tx(tx_id)?;
        let block = self.block(height)?;
        let exec = self.receipt(tx_id)?;
        crate::receipt::TxReceipt::for_block(block, *tx_id, exec)
    }

    /// Work counters.
    pub fn stats(&self) -> LedgerStats {
        self.stats
    }

    /// The consortium membership registry.
    pub fn registry(&self) -> &KeyRegistry {
        &self.registry
    }

    /// Validates `tx` statelessly plus nonce/balance against current
    /// state. Used by the mempool for admission control.
    ///
    /// # Errors
    ///
    /// Returns the specific [`LedgerError`] that admission failed with.
    pub fn check_admissible(&self, tx: &Transaction) -> Result<(), LedgerError> {
        if !tx.verify(&self.registry) {
            return Err(LedgerError::BadSignature(tx.id()));
        }
        let account = self.state.account(&tx.sender);
        if tx.nonce < account.nonce {
            return Err(LedgerError::BadNonce {
                tx_id: tx.id(),
                expected: account.nonce,
                got: tx.nonce,
            });
        }
        self.check_locks(tx)
    }

    /// Lock-aware admission (DESIGN.md §12): while a 2PC lock is held
    /// on an account, any new balance-moving transaction touching it is
    /// deferred instead of queueing work that is guaranteed to fail
    /// execution. `XsFinalize` stays admissible — it is what releases
    /// the lock.
    fn check_locks(&self, tx: &Transaction) -> Result<(), LedgerError> {
        let touched: &[&Address] = match &tx.payload {
            crate::tx::TxPayload::Transfer { to, .. } => &[&tx.sender, to],
            crate::tx::TxPayload::XsPrepare { leg, .. } => {
                // Mirror of the execution-time authorization (DESIGN.md
                // §12): a debit prepare not signed by the account owner
                // is refused here instead of queueing guaranteed-to-fail
                // work — and, more importantly, instead of letting a
                // hostile client freeze a victim's account.
                if leg.debit && tx.sender != leg.account {
                    return Err(LedgerError::XsUnauthorizedDebit {
                        sender: tx.sender,
                        account: leg.account,
                    });
                }
                &[&leg.account]
            }
            _ => &[],
        };
        for addr in touched {
            if let Some(lock) = self.state.lock(addr) {
                return Err(LedgerError::AccountLocked { address: **addr, xid: lock.xid });
            }
        }
        Ok(())
    }

    /// Nonce-only admission check against current state, for callers
    /// that have **already verified the signature** (the gateway's
    /// batch-verify path, see `ChainApp::submit_verified`).
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::BadNonce`] for an already-used nonce.
    pub fn check_nonce(&self, tx: &Transaction) -> Result<(), LedgerError> {
        let account = self.state.account(&tx.sender);
        if tx.nonce < account.nonce {
            return Err(LedgerError::BadNonce {
                tx_id: tx.id(),
                expected: account.nonce,
                got: tx.nonce,
            });
        }
        self.check_locks(tx)
    }

    /// Builds an unsealed block extending the tip with `txs`, executing
    /// them against a buffered overlay of the state (never a clone) to
    /// compute the state root.
    ///
    /// Transactions that fail admission are dropped; transactions that
    /// fail execution are included with failure receipts (as real chains
    /// do), so their gas is still accounted.
    pub fn propose(&self, proposer: Address, timestamp_ms: u64, txs: Vec<Transaction>) -> Block {
        let ctx = self.exec_ctx();
        let mut overlay = WorldStateOverlay::new(&self.state);
        let mut included = Vec::with_capacity(txs.len());
        for tx in txs {
            if exec::admission_check(&self.registry, &overlay, &tx).is_ok() {
                let _ = exec::execute_tx(&ctx, &mut overlay, &tx, timestamp_ms);
                included.push(tx);
            }
        }
        let delta = overlay.into_delta();
        let header = Header {
            height: self.height() + 1,
            parent: self.tip().id(),
            tx_root: MerkleTree::from_leaves(included.iter().map(Transaction::id).collect())
                .root(),
            // Incremental: delta applied to the cached tree, O(keys
            // changed), without touching committed state.
            state_root: self.state_tree().with_delta(&delta).versioned_root(),
            timestamp_ms,
            proposer,
            shard: self.shard,
        };
        Block { header, transactions: included, seal: crate::block::Seal::Genesis }
    }

    /// Validates and applies a sealed block, executing all transactions.
    ///
    /// # Errors
    ///
    /// Returns a [`LedgerError`] and leaves the ledger unchanged if any
    /// structural or execution-commitment check fails.
    pub fn apply(&mut self, block: &Block) -> Result<Vec<Receipt>, LedgerError> {
        if block.header.shard != self.shard {
            return Err(LedgerError::WrongShard {
                expected: self.shard,
                got: block.header.shard,
            });
        }
        if block.header.parent != self.tip().id() {
            return Err(LedgerError::WrongParent);
        }
        if block.header.height != self.height() + 1 {
            return Err(LedgerError::WrongHeight {
                expected: self.height() + 1,
                got: block.header.height,
            });
        }
        if !block.is_body_consistent() {
            return Err(LedgerError::BodyMismatch);
        }
        let started = Instant::now();
        let tx_count = block.transactions.len();
        // Execute against an overlay — sequentially, or wave-parallel
        // when enabled (exec::run_block_parallel guarantees identical
        // receipts and delta, falling back to sequential on any audited
        // footprint violation).
        let (receipts, delta, parallel_stats) = {
            let ctx = self.exec_ctx();
            if self.exec_threads > 1 && tx_count > 1 {
                let run = exec::run_block_parallel(
                    &ctx,
                    &self.state,
                    &block.transactions,
                    block.header.timestamp_ms,
                    self.exec_threads,
                )?;
                (run.receipts, run.delta, Some(run.stats))
            } else {
                let (receipts, delta) = exec::run_block_sequential(
                    &ctx,
                    &self.state,
                    &block.transactions,
                    block.header.timestamp_ms,
                )?;
                (receipts, delta, None)
            }
        };
        // Incremental root check before any mutation: the committed
        // delta folds into the cached authenticated tree at O(keys
        // changed · log n) — per-block root cost no longer scales with
        // total state size.
        let root_started = Instant::now();
        let updated_tree = self.state_tree().with_delta(&delta);
        let root_wall_us = root_started.elapsed().as_secs_f64() * 1e6;
        if updated_tree.versioned_root() != block.header.state_root {
            return Err(LedgerError::StateRootMismatch);
        }
        // Captured before `apply_delta` consumes the delta: the flat
        // leaf updates for the commit observer, and the written account
        // addresses that must stay hot through this commit's demotion.
        let observer_updates = self
            .commit_observer
            .as_ref()
            .map(|_| crate::auth::delta_updates(&delta));
        let written_accounts: Option<BTreeSet<Address>> = self
            .state_cache
            .as_ref()
            .map(|_| delta.accounts.keys().copied().collect());
        // Write-ahead: the block must be durable before the in-memory
        // commit, so a crash leaves disk and memory agreeing (disk may
        // carry a torn tail record, which recovery truncates). The store
        // needs the post-state, so the delta commits first and is
        // reverted exactly if the append fails.
        let undo = self.state.apply_delta(delta);
        if let Some(store) = self.store.as_mut() {
            if let Err(e) = store.append(block, &self.state) {
                self.state.revert(undo);
                return Err(LedgerError::Storage(e.to_string()));
            }
        }
        // State and tree now advance together (the revert path above
        // leaves the old cache in place, matching the reverted state).
        *self.tree.get_mut().expect("state tree cache poisoned") = Some(updated_tree);
        // Commit.
        for receipt in &receipts {
            self.stats.transactions += 1;
            self.stats.gas_used += receipt.gas_used;
            if !receipt.ok {
                self.stats.failed += 1;
            }
            self.receipts.insert(receipt.tx_id, receipt.clone());
        }
        for (index, tx) in block.transactions.iter().enumerate() {
            self.tx_locations.insert(tx.id(), (block.header.height, index));
        }
        self.stats.blocks += 1;
        self.blocks.push(block.clone());
        if let Some(observer) = self.commit_observer.as_mut() {
            let updates = observer_updates.as_deref().expect("captured before commit");
            observer(self.blocks.last().expect("just pushed"), updates);
        }
        // Paged state cache: after the commit is final, push cold
        // accounts and cold tree subtrees back under budget. Addresses
        // this block wrote stay hot — they are the working set.
        if let Some(cache) = &self.state_cache {
            let keep = written_accounts.as_ref().expect("captured before commit");
            let demoted = self.state.demote_accounts(cache.max_hot_accounts, keep);
            let tree_guard = self.tree.get_mut().expect("state tree cache poisoned");
            if let Some(tree) = tree_guard.as_mut() {
                if tree.pager().is_none() {
                    tree.attach_pager(Arc::clone(&cache.nodes));
                }
                tree.spill_to_budget(cache.node_budget);
            }
            if self.metrics.enabled() {
                if demoted > 0 {
                    self.metrics.counter("state.accounts_demoted", demoted as u64);
                }
                self.metrics
                    .gauge("state.paged_accounts", self.state.paged_account_count() as i64);
                if let Some(tree) = tree_guard.as_ref() {
                    self.metrics.gauge("auth.resident_nodes", tree.resident_nodes() as i64);
                }
            }
        }
        if self.metrics.enabled() {
            self.metrics.counter("exec.blocks", 1);
            self.metrics.counter("exec.txs", tx_count as u64);
            self.metrics.observe("exec.block_apply_us", started.elapsed().as_secs_f64() * 1e6);
            self.metrics.observe("auth.root_update_us", root_wall_us);
            self.metrics.gauge("state.accounts", self.state.account_count() as i64);
            self.metrics.gauge("state.storage_slots", self.state.storage_slot_count() as i64);
            self.metrics.gauge("state.code_entries", self.state.code_count() as i64);
            self.metrics.gauge("state.anchors", self.state.anchor_count() as i64);
            self.metrics.gauge("state.locks", self.state.lock_count() as i64);
            if let Some(stats) = parallel_stats {
                self.metrics.counter("exec.parallel_blocks", 1);
                self.metrics.observe("exec.waves_per_block", stats.waves as f64);
                self.metrics.observe(
                    "exec.conflict_rate",
                    stats.delayed as f64 / tx_count.max(1) as f64,
                );
                for width in stats.wave_widths {
                    self.metrics.observe("exec.wave_width", width as f64);
                }
                for wall in stats.wave_walls_us {
                    self.metrics.observe("exec.wave_wall_us", wall);
                }
                if stats.fell_back {
                    self.metrics.counter("exec.fallback_blocks", 1);
                }
            }
        }
        Ok(receipts)
    }
}

/// Deterministic contract address derivation: `H(sender ‖ nonce)`.
pub fn contract_address(sender: &Address, nonce: u64) -> Address {
    let mut bytes = sender.0.to_vec();
    bytes.extend_from_slice(&nonce.to_le_bytes());
    Address::from_key_material(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::sharded_contract_address;
    use crate::sig::AuthorityKey;
    use crate::tx::TxPayload;

    fn funded_ledger(keys: &[AuthorityKey]) -> Ledger {
        let mut registry = KeyRegistry::new();
        for k in keys {
            registry.enroll(k);
        }
        let mut ledger = Ledger::new("test-chain", registry, Box::new(NullRuntime));
        for k in keys {
            ledger.state_mut().credit(k.address(), 1_000);
        }
        ledger
    }

    fn transfer(key: &AuthorityKey, nonce: u64, to: Address, amount: u64) -> Transaction {
        Transaction::new(key.address(), nonce, TxPayload::Transfer { to, amount }, 100).signed(key)
    }

    fn grow_by_transfers(ledger: &mut Ledger, key: &AuthorityKey, to: Address, n: u64) {
        for _ in 0..n {
            let nonce = ledger.state().account(&key.address()).nonce;
            let block = ledger.propose(
                key.address(),
                (ledger.height() + 1) * 10,
                vec![transfer(key, nonce, to, 1)],
            );
            ledger.apply(&block).unwrap();
        }
    }

    #[test]
    fn blocks_from_and_prune_below_respect_base_height() {
        let alice = AuthorityKey::from_seed(1);
        let bob = AuthorityKey::from_seed(2);
        let mut ledger = funded_ledger(&[alice.clone(), bob.clone()]);
        grow_by_transfers(&mut ledger, &alice, bob.address(), 5);
        assert_eq!(ledger.base_height(), 0);
        assert_eq!(ledger.blocks_from(0).len(), 6); // genesis..=5
        assert_eq!(ledger.blocks_from(3).len(), 3);
        assert_eq!(ledger.blocks_from(3)[0].header.height, 3);
        assert!(ledger.blocks_from(99).is_empty());

        // Prune everything below height 4: 0..=3 dropped, 4..=5 kept.
        assert_eq!(ledger.prune_below(4), 4);
        assert_eq!(ledger.base_height(), 4);
        assert!(ledger.block(3).is_none());
        assert_eq!(ledger.block(4).unwrap().header.height, 4);
        assert_eq!(ledger.blocks_from(0).len(), 2);
        assert_eq!(ledger.tip().header.height, 5);

        // Pruning past the tip always keeps the tip block.
        assert_eq!(ledger.prune_below(100), 1);
        assert_eq!(ledger.base_height(), 5);
        assert_eq!(ledger.tip().header.height, 5);
        assert_eq!(ledger.blocks_from(5).len(), 1);

        // The pruned ledger still extends normally.
        grow_by_transfers(&mut ledger, &alice, bob.address(), 1);
        assert_eq!(ledger.height(), 6);
        assert_eq!(ledger.block(6).unwrap().header.height, 6);
    }

    #[test]
    fn propose_and_apply_transfer() {
        let alice = AuthorityKey::from_seed(1);
        let bob = AuthorityKey::from_seed(2);
        let mut ledger = funded_ledger(&[alice.clone(), bob.clone()]);
        let block =
            ledger.propose(alice.address(), 10, vec![transfer(&alice, 0, bob.address(), 250)]);
        let receipts = ledger.apply(&block).unwrap();
        assert!(receipts[0].ok);
        assert_eq!(ledger.state().account(&alice.address()).balance, 750);
        assert_eq!(ledger.state().account(&bob.address()).balance, 1_250);
        assert_eq!(ledger.height(), 1);
    }

    #[test]
    fn overdraft_produces_failed_receipt_but_block_applies() {
        let alice = AuthorityKey::from_seed(1);
        let bob = AuthorityKey::from_seed(2);
        let mut ledger = funded_ledger(&[alice.clone(), bob.clone()]);
        let block =
            ledger.propose(alice.address(), 10, vec![transfer(&alice, 0, bob.address(), 5_000)]);
        let receipts = ledger.apply(&block).unwrap();
        assert!(!receipts[0].ok);
        assert_eq!(ledger.state().account(&alice.address()).balance, 1_000);
        assert_eq!(ledger.stats().failed, 1);
        // Nonce still consumed.
        assert_eq!(ledger.state().account(&alice.address()).nonce, 1);
    }

    #[test]
    fn apply_rejects_wrong_parent() {
        let alice = AuthorityKey::from_seed(1);
        let mut ledger = funded_ledger(std::slice::from_ref(&alice));
        let mut block = ledger.propose(alice.address(), 10, Vec::new());
        block.header.parent = Hash256::digest(b"bogus");
        // Recompute nothing: parent check fires first.
        assert_eq!(ledger.apply(&block), Err(LedgerError::WrongParent));
    }

    #[test]
    fn apply_rejects_tampered_body() {
        let alice = AuthorityKey::from_seed(1);
        let bob = AuthorityKey::from_seed(2);
        let mut ledger = funded_ledger(&[alice.clone(), bob.clone()]);
        let mut block =
            ledger.propose(alice.address(), 10, vec![transfer(&alice, 0, bob.address(), 1)]);
        block.transactions[0].payload =
            TxPayload::Transfer { to: bob.address(), amount: 999 };
        assert_eq!(ledger.apply(&block), Err(LedgerError::BodyMismatch));
    }

    #[test]
    fn apply_rejects_state_root_mismatch() {
        let alice = AuthorityKey::from_seed(1);
        let mut ledger = funded_ledger(std::slice::from_ref(&alice));
        let mut block = ledger.propose(alice.address(), 10, Vec::new());
        block.header.state_root = Hash256::digest(b"wrong");
        assert_eq!(ledger.apply(&block), Err(LedgerError::StateRootMismatch));
    }

    #[test]
    fn propose_drops_bad_nonce_and_unsigned() {
        let alice = AuthorityKey::from_seed(1);
        let bob = AuthorityKey::from_seed(2);
        let ledger = funded_ledger(&[alice.clone(), bob.clone()]);
        let bad_nonce = transfer(&alice, 5, bob.address(), 1);
        let unsigned = Transaction::new(
            alice.address(),
            0,
            TxPayload::Transfer { to: bob.address(), amount: 1 },
            100,
        );
        let good = transfer(&alice, 0, bob.address(), 1);
        let block = ledger.propose(alice.address(), 10, vec![bad_nonce, unsigned, good]);
        assert_eq!(block.transactions.len(), 1);
    }

    #[test]
    fn anchor_round_trip_and_conflict() {
        let alice = AuthorityKey::from_seed(1);
        let mut ledger = funded_ledger(std::slice::from_ref(&alice));
        let root = Hash256::digest(b"dataset-v1");
        let anchor = |nonce, root, label: &str| {
            Transaction::new(
                alice.address(),
                nonce,
                TxPayload::Anchor { root, label: label.into() },
                100,
            )
            .signed(&alice)
        };
        let block =
            ledger.propose(alice.address(), 1, vec![anchor(0, root, "hospital-1/emr")]);
        ledger.apply(&block).unwrap();
        assert_eq!(ledger.state().anchor("hospital-1/emr"), Some(root));

        // Re-anchoring with a different root fails.
        let conflicting =
            anchor(1, Hash256::digest(b"dataset-v2-tampered"), "hospital-1/emr");
        let block2 = ledger.propose(alice.address(), 2, vec![conflicting]);
        let receipts = ledger.apply(&block2).unwrap();
        assert!(!receipts[0].ok);
        assert_eq!(ledger.state().anchor("hospital-1/emr"), Some(root));
    }

    #[test]
    fn sequential_nonces_apply_in_one_block() {
        let alice = AuthorityKey::from_seed(1);
        let bob = AuthorityKey::from_seed(2);
        let mut ledger = funded_ledger(&[alice.clone(), bob.clone()]);
        let txs = (0..5).map(|n| transfer(&alice, n, bob.address(), 10)).collect();
        let block = ledger.propose(alice.address(), 10, txs);
        assert_eq!(block.transactions.len(), 5);
        ledger.apply(&block).unwrap();
        assert_eq!(ledger.state().account(&bob.address()).balance, 1_050);
    }

    #[test]
    fn replay_is_rejected_by_nonce() {
        let alice = AuthorityKey::from_seed(1);
        let bob = AuthorityKey::from_seed(2);
        let mut ledger = funded_ledger(&[alice.clone(), bob.clone()]);
        let tx = transfer(&alice, 0, bob.address(), 10);
        let block = ledger.propose(alice.address(), 10, vec![tx.clone()]);
        ledger.apply(&block).unwrap();
        // Same tx again: dropped at proposal.
        let block2 = ledger.propose(alice.address(), 20, vec![tx]);
        assert!(block2.transactions.is_empty());
    }

    #[test]
    fn state_root_reflects_every_component() {
        let mut a = WorldState::new();
        let base = a.state_root();
        a.credit(Address::from_seed(1), 5);
        let with_account = a.state_root();
        assert_ne!(base, with_account);
        a.set_storage(Address::from_seed(2), b"k".to_vec(), b"v".to_vec());
        let with_storage = a.state_root();
        assert_ne!(with_account, with_storage);
        a.set_code(Address::from_seed(2), vec![1, 2, 3]);
        assert_ne!(with_storage, a.state_root());
    }

    #[test]
    fn state_root_with_matches_materialized_commit() {
        // Base with entries that get overridden, deleted, and kept.
        let mut base = WorldState::new();
        let a = Address::from_seed(1);
        let b = Address::from_seed(2);
        base.credit(a, 100);
        base.set_storage(a, b"keep".to_vec(), b"1".to_vec());
        base.set_storage(a, b"gone".to_vec(), b"2".to_vec());
        base.set_code(a, vec![9]);
        base.set_anchor("lbl", Hash256::digest(b"x"));

        let mut overlay = WorldStateOverlay::new(&base);
        overlay.credit(a, 5);
        overlay.credit(b, 7);
        overlay.set_storage(a, b"gone".to_vec(), Vec::new()); // tombstone
        overlay.set_storage(b, b"new".to_vec(), b"3".to_vec());
        overlay.set_code(b, vec![8]);
        overlay.set_anchor("lbl2", Hash256::digest(b"y"));
        overlay.set_cross_link(ShardId(3), CrossLinkRecord {
            height: 1,
            tip: Hash256::digest(b"t"),
        });
        let delta = overlay.into_delta();

        let merged_root = base.state_root_with(&delta);
        let mut materialized = base.clone();
        let undo = materialized.apply_delta(delta);
        assert_eq!(merged_root, materialized.state_root(), "merge-join root must match commit");
        assert_ne!(merged_root, base.state_root());

        // Revert restores the base exactly (write-ahead failure path).
        materialized.revert(undo);
        assert_eq!(materialized.state_root(), base.state_root());
        assert_eq!(materialized, base);
    }

    #[test]
    fn storage_of_iterates_only_own_contract() {
        let mut s = WorldState::new();
        let a = Address::from_seed(1);
        let b = Address::from_seed(2);
        s.set_storage(a, b"x".to_vec(), b"1".to_vec());
        s.set_storage(a, b"y".to_vec(), b"2".to_vec());
        s.set_storage(b, b"z".to_vec(), b"3".to_vec());
        let keys: Vec<&[u8]> = s.storage_of(&a).map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"x".as_slice(), b"y".as_slice()]);
    }

    #[test]
    fn contract_addresses_are_unique_per_nonce() {
        let sender = Address::from_seed(1);
        assert_ne!(contract_address(&sender, 0), contract_address(&sender, 1));
        assert_eq!(contract_address(&sender, 0), contract_address(&sender, 0));
    }

    // === Consensus-level sharding (DESIGN.md §9) ===

    fn sharded_ledger(shard: ShardId, shard_count: u16, keys: &[AuthorityKey]) -> Ledger {
        let mut registry = KeyRegistry::new();
        for k in keys {
            registry.enroll(k);
        }
        let mut ledger =
            Ledger::new_sharded("test-chain", shard, shard_count, registry, Box::new(NullRuntime));
        for k in keys {
            ledger.state_mut().credit(k.address(), 1_000);
        }
        ledger
    }

    fn cross_link_tx(key: &AuthorityKey, nonce: u64, shard: ShardId, height: u64) -> Transaction {
        let tip = Hash256::digest(&height.to_le_bytes());
        Transaction::new(
            key.address(),
            nonce,
            TxPayload::CrossLink { shard, height, tip },
            100,
        )
        .signed(key)
    }

    #[test]
    fn coordinator_records_monotonic_cross_links() {
        let alice = AuthorityKey::from_seed(1);
        let mut coord =
            sharded_ledger(ShardId::COORDINATOR, 2, std::slice::from_ref(&alice));
        let block = coord.propose(
            alice.address(),
            10,
            vec![
                cross_link_tx(&alice, 0, ShardId(0), 4),
                cross_link_tx(&alice, 1, ShardId(1), 3),
            ],
        );
        let receipts = coord.apply(&block).unwrap();
        assert!(receipts.iter().all(|r| r.ok));
        assert_eq!(coord.state().cross_link(ShardId(0)).unwrap().height, 4);
        assert_eq!(coord.state().cross_link(ShardId(1)).unwrap().height, 3);

        // Advancing shard 0 supersedes its record; rewinding it fails.
        let block = coord.propose(
            alice.address(),
            20,
            vec![
                cross_link_tx(&alice, 2, ShardId(0), 7),
                cross_link_tx(&alice, 3, ShardId(0), 5),
            ],
        );
        let receipts = coord.apply(&block).unwrap();
        assert!(receipts[0].ok);
        assert!(!receipts[1].ok, "height regression must fail");
        assert!(receipts[1].error.as_deref().unwrap().contains("regression"));
        assert_eq!(coord.state().cross_link(ShardId(0)).unwrap().height, 7);
        assert_eq!(coord.state().cross_links().count(), 2);
    }

    #[test]
    fn cross_link_fails_on_data_shard_and_for_coordinator_target() {
        let alice = AuthorityKey::from_seed(1);
        let mut data = sharded_ledger(ShardId(0), 2, std::slice::from_ref(&alice));
        let block =
            data.propose(alice.address(), 10, vec![cross_link_tx(&alice, 0, ShardId(1), 2)]);
        let receipts = data.apply(&block).unwrap();
        assert!(!receipts[0].ok);
        assert!(receipts[0].error.as_deref().unwrap().contains("non-coordinator"));

        let mut coord =
            sharded_ledger(ShardId::COORDINATOR, 2, std::slice::from_ref(&alice));
        let block = coord.propose(
            alice.address(),
            10,
            vec![cross_link_tx(&alice, 0, ShardId::COORDINATOR, 2)],
        );
        let receipts = coord.apply(&block).unwrap();
        assert!(!receipts[0].ok, "a cross-link cannot reference the coordinator");
    }

    #[test]
    fn apply_rejects_block_from_another_shard() {
        let alice = AuthorityKey::from_seed(1);
        let mut shard0 = sharded_ledger(ShardId(0), 2, std::slice::from_ref(&alice));
        let mut shard1 = sharded_ledger(ShardId(1), 2, std::slice::from_ref(&alice));
        let foreign = shard1.propose(alice.address(), 10, Vec::new());
        assert_eq!(
            shard0.apply(&foreign),
            Err(LedgerError::WrongShard { expected: ShardId(0), got: ShardId(1) })
        );
        // The rejected block would have applied cleanly on its own chain.
        assert!(shard1.apply(&foreign).is_ok());
    }

    /// Accepts every deploy by storing the code verbatim — enough to
    /// observe the derived contract address in the receipt.
    struct StoreCodeRuntime;

    impl ContractRuntime for StoreCodeRuntime {
        fn deploy(
            &self,
            _sender: Address,
            contract_addr: Address,
            code: &[u8],
            _init: &[u8],
            _gas_limit: u64,
            _now_ms: u64,
            state: &mut dyn StateAccess,
        ) -> Result<ExecOutcome, ExecError> {
            state.set_code(contract_addr, code.to_vec());
            Ok(ExecOutcome { gas_used: 50, ..ExecOutcome::default() })
        }

        fn invoke(
            &self,
            _sender: Address,
            _contract: Address,
            _input: &[u8],
            _gas_limit: u64,
            _now_ms: u64,
            _state: &mut dyn StateAccess,
        ) -> Result<ExecOutcome, ExecError> {
            Ok(ExecOutcome { gas_used: 10, ..ExecOutcome::default() })
        }
    }

    #[test]
    fn sharded_deploy_lands_in_own_shard() {
        let alice = AuthorityKey::from_seed(1);
        let shard_count = 3u16;
        let home = crate::shard::shard_for_key(&alice.address().0, shard_count);
        let mut registry = KeyRegistry::new();
        registry.enroll(&alice);
        let mut ledger = Ledger::new_sharded(
            "test-chain",
            home,
            shard_count,
            registry,
            Box::new(StoreCodeRuntime),
        );
        ledger.state_mut().credit(alice.address(), 1_000);
        let deploy = Transaction::new(
            alice.address(),
            0,
            TxPayload::Deploy { code: vec![1, 2, 3], init: Vec::new() },
            1_000,
        )
        .signed(&alice);
        let block = ledger.propose(alice.address(), 10, vec![deploy]);
        let receipts = ledger.apply(&block).unwrap();
        assert!(receipts[0].ok);
        let addr = Address(receipts[0].output.clone().try_into().unwrap());
        assert_eq!(
            crate::shard::shard_for_key(&addr.0, shard_count),
            home,
            "invoke routing must map the deployed address back to its shard"
        );
        assert_eq!(addr, sharded_contract_address(&alice.address(), 0, home, shard_count));
    }

    #[test]
    fn debit_prepare_by_non_owner_is_refused_and_fails_execution() {
        use crate::tx::XsLeg;
        let alice = AuthorityKey::from_seed(1);
        let mallory = AuthorityKey::from_seed(2);
        let mut ledger = funded_ledger(&[alice.clone(), mallory.clone()]);
        let leg = XsLeg {
            shard: crate::shard::shard_for_key(&alice.address().0, 1),
            account: alice.address(),
            amount: 400,
            debit: true,
        };
        let forged = Transaction::new(
            mallory.address(),
            0,
            TxPayload::XsPrepare { xid: Hash256::digest(b"forged"), leg, deadline_ms: 10_000 },
            1_000,
        )
        .signed(&mallory);
        // Admission refuses the forged escrow outright…
        assert!(matches!(
            ledger.check_admissible(&forged),
            Err(LedgerError::XsUnauthorizedDebit { .. })
        ));
        // …and a proposer including it anyway only produces a failed
        // receipt: no lock, no escrow, the victim's balance untouched.
        let block = ledger.propose(mallory.address(), 10, vec![forged]);
        let receipts = ledger.apply(&block).unwrap();
        assert_eq!(receipts.len(), 1);
        assert!(!receipts[0].ok);
        assert!(
            receipts[0].error.as_deref().unwrap().contains("only the owner"),
            "got: {:?}",
            receipts[0].error
        );
        assert!(ledger.state().lock(&alice.address()).is_none());
        assert_eq!(ledger.state().account(&alice.address()).balance, 1_000);

        // A *credit* leg prepared by a third party stays legal — paying
        // someone else is the point of the credit side.
        let credit_leg = XsLeg {
            shard: crate::shard::shard_for_key(&alice.address().0, 1),
            account: alice.address(),
            amount: 400,
            debit: false,
        };
        let credit = Transaction::new(
            mallory.address(),
            1,
            TxPayload::XsPrepare {
                xid: Hash256::digest(b"credit"),
                leg: credit_leg,
                deadline_ms: 10_000,
            },
            1_000,
        )
        .signed(&mallory);
        assert!(ledger.check_admissible(&credit).is_ok());
    }

    #[test]
    fn state_root_covers_cross_links() {
        // Two states differing only in the cross-link table must have
        // different roots, else a forged link would escape the header's
        // state commitment.
        let mut with_link = WorldState::new();
        with_link
            .crosslinks
            .insert(0, CrossLinkRecord { height: 1, tip: Hash256::digest(b"tip") });
        assert_ne!(with_link.state_root(), WorldState::new().state_root());

        let alice = AuthorityKey::from_seed(1);
        let mut coord = sharded_ledger(ShardId::COORDINATOR, 2, std::slice::from_ref(&alice));
        let block =
            coord.propose(alice.address(), 10, vec![cross_link_tx(&alice, 0, ShardId(0), 1)]);
        coord.apply(&block).unwrap();
        // Codec round-trip preserves the cross-link table and the root.
        use medchain_runtime::codec::{Decode, Encode};
        let bytes = coord.state().encoded();
        let decoded = WorldState::decoded(&bytes).unwrap();
        assert_eq!(decoded.cross_link(ShardId(0)), coord.state().cross_link(ShardId(0)));
        assert_eq!(decoded.state_root(), coord.state().state_root());
    }
}

mod codec_impls {
    use super::{
        Account, CrossLinkRecord, Event, Receipt, WorldState, XsDecisionRecord, XsLock,
    };
    use medchain_runtime::codec::{CodecError, Decode, Encode, Reader};
    use medchain_runtime::impl_codec_struct;

    impl_codec_struct!(Account { balance, nonce });
    impl_codec_struct!(Event { contract, topic, data });
    impl_codec_struct!(Receipt { tx_id, ok, gas_used, output, events, error });
    impl_codec_struct!(CrossLinkRecord { height, tip });
    impl_codec_struct!(XsLock { xid, amount, debit, deadline_ms });
    impl_codec_struct!(XsDecisionRecord { commit, tx_id });

    // Hand-rolled (not `impl_codec_struct!`) because the account
    // component streams the *merged* hot+cold view: byte-identical to a
    // fully resident `BTreeMap` encoding (u32 count, ascending pairs),
    // regardless of which records the pager holds. The remaining fields
    // follow declaration order exactly as the macro would emit them.
    impl Encode for WorldState {
        fn encode(&self, out: &mut Vec<u8>) {
            let count = u32::try_from(self.account_count())
                .expect("account count exceeds u32 — canonical codec limit");
            count.encode(out);
            self.for_each_account(&mut |addr, account| {
                addr.encode(out);
                account.encode(out);
            });
            self.storage.encode(out);
            self.code.encode(out);
            self.anchors.encode(out);
            self.crosslinks.encode(out);
            self.locks.encode(out);
            self.xs_decisions.encode(out);
        }
    }

    impl Decode for WorldState {
        fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
            // Decoded states start fully resident; recovery re-attaches
            // a pager (and re-demotes) after install.
            Ok(WorldState {
                accounts: Decode::decode(r)?,
                storage: Decode::decode(r)?,
                code: Decode::decode(r)?,
                anchors: Decode::decode(r)?,
                crosslinks: Decode::decode(r)?,
                locks: Decode::decode(r)?,
                xs_decisions: Decode::decode(r)?,
                pager: None,
            })
        }
    }

}

//! Client-facing transaction receipts with Merkle inclusion proofs.
//!
//! A [`TxReceipt`] is the public API for "your transaction committed"
//! (DESIGN.md §10): it names the committed block (id, height, shard),
//! carries the execution outcome, and includes a [`MerkleProof`] of the
//! transaction id under the block's `tx_root`. A client that knows the
//! committed header — or just its `tx_root` — verifies inclusion locally
//! with [`TxReceipt::verify_against`], without trusting the gateway that
//! relayed the receipt.

use crate::block::Block;
use crate::hash::Hash256;
use crate::ledger::Receipt;
use crate::merkle::{MerkleProof, MerkleTree};
use crate::shard::ShardId;

/// Proof-carrying commit receipt returned to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxReceipt {
    /// The committed transaction's id (the proven Merkle leaf).
    pub tx_id: Hash256,
    /// Id of the block that included the transaction.
    pub block_id: Hash256,
    /// Height of that block on its sub-chain.
    pub height: u64,
    /// Sub-chain the transaction committed on.
    pub shard: ShardId,
    /// Position of the transaction inside the block body.
    pub tx_index: usize,
    /// The block's transaction Merkle root, as committed in its header.
    pub tx_root: Hash256,
    /// Membership proof of `tx_id` under `tx_root`.
    pub proof: MerkleProof,
    /// Whether execution succeeded.
    pub ok: bool,
    /// Gas consumed.
    pub gas_used: u64,
    /// Execution return data (e.g. the 20-byte address of a deploy).
    pub output: Vec<u8>,
    /// Error description when `ok` is false.
    pub error: Option<String>,
}

impl TxReceipt {
    /// Builds the receipt for `tx_id` inside a committed `block`,
    /// pairing the inclusion proof with the execution outcome `exec`.
    ///
    /// Returns `None` if the block does not contain the transaction.
    pub fn for_block(block: &Block, tx_id: Hash256, exec: &Receipt) -> Option<TxReceipt> {
        let tx_index = block.transactions.iter().position(|tx| tx.id() == tx_id)?;
        let tree = MerkleTree::from_leaves(block.transactions.iter().map(|tx| tx.id()).collect());
        let proof = tree.prove(tx_index)?;
        Some(TxReceipt {
            tx_id,
            block_id: block.id(),
            height: block.header.height,
            shard: block.header.shard,
            tx_index,
            tx_root: block.header.tx_root,
            proof,
            ok: exec.ok,
            gas_used: exec.gas_used,
            output: exec.output.clone(),
            error: exec.error.clone(),
        })
    }

    /// Verifies the receipt's own inclusion proof against the `tx_root`
    /// it carries. This catches tampering anywhere in the (leaf, path,
    /// root) triple but still trusts the carried root; pair with
    /// [`TxReceipt::verify_against`] and an independently obtained
    /// header for a trustless check.
    pub fn verify(&self) -> bool {
        self.verify_against(&self.tx_root)
    }

    /// Verifies the inclusion proof against an **independently obtained**
    /// transaction root (e.g. from a header the client fetched or
    /// validated itself). This is the trustless client check: a gateway
    /// cannot fake it without breaking the hash function.
    pub fn verify_against(&self, tx_root: &Hash256) -> bool {
        self.proof.leaf_index == self.tx_index && self.proof.verify(&self.tx_id, tx_root)
    }
}

mod codec_impls {
    use super::TxReceipt;
    use medchain_runtime::impl_codec_struct;

    impl_codec_struct!(TxReceipt {
        tx_id,
        block_id,
        height,
        shard,
        tx_index,
        tx_root,
        proof,
        ok,
        gas_used,
        output,
        error
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{Ledger, NullRuntime};
    use crate::sig::{AuthorityKey, KeyRegistry};
    use crate::tx::{Transaction, TxPayload};

    fn committed_block(n_txs: u64) -> (Ledger, Block) {
        let key = AuthorityKey::from_seed(1);
        let mut registry = KeyRegistry::new();
        registry.enroll(&key);
        let mut ledger = Ledger::new("receipt-test", registry, Box::new(NullRuntime));
        let txs: Vec<Transaction> = (0..n_txs)
            .map(|nonce| {
                Transaction::new(
                    key.address(),
                    nonce,
                    TxPayload::Anchor {
                        root: Hash256::digest(&nonce.to_le_bytes()),
                        label: format!("ds/{nonce}"),
                    },
                    1_000,
                )
                .signed(&key)
            })
            .collect();
        let block = ledger.propose(key.address(), 10, txs);
        ledger.apply(&block).expect("block applies");
        (ledger, block)
    }

    #[test]
    fn receipt_verifies_against_committed_root() {
        let (ledger, block) = committed_block(5);
        for tx in &block.transactions {
            let exec = ledger.receipt(&tx.id()).expect("executed").clone();
            let receipt = TxReceipt::for_block(&block, tx.id(), &exec).expect("included");
            assert!(receipt.verify());
            assert!(receipt.verify_against(&block.header.tx_root));
            assert_eq!(receipt.block_id, block.id());
            assert_eq!(receipt.height, block.header.height);
            assert!(receipt.ok);
        }
    }

    #[test]
    fn missing_tx_yields_no_receipt() {
        let (ledger, block) = committed_block(3);
        let exec = ledger.receipt(&block.transactions[0].id()).unwrap().clone();
        assert!(TxReceipt::for_block(&block, Hash256::digest(b"absent"), &exec).is_none());
    }

    #[test]
    fn receipt_round_trips_through_codec() {
        use medchain_runtime::codec::{Decode, Encode};
        let (ledger, block) = committed_block(4);
        let tx = &block.transactions[2];
        let exec = ledger.receipt(&tx.id()).unwrap().clone();
        let receipt = TxReceipt::for_block(&block, tx.id(), &exec).unwrap();
        let bytes = receipt.encoded();
        let decoded = TxReceipt::decoded(&bytes).expect("decodes");
        assert_eq!(decoded, receipt);
        assert!(decoded.verify_against(&block.header.tx_root));
    }

    #[test]
    fn mismatched_root_fails() {
        let (ledger, block) = committed_block(4);
        let tx = &block.transactions[0];
        let exec = ledger.receipt(&tx.id()).unwrap().clone();
        let receipt = TxReceipt::for_block(&block, tx.id(), &exec).unwrap();
        assert!(!receipt.verify_against(&Hash256::digest(b"other root")));
    }
}

//! Blocks and block headers.

use crate::hash::Hash256;
use crate::merkle::MerkleTree;
use crate::shard::ShardId;
use crate::sig::{Address, AuthoritySignature};
use crate::tx::Transaction;

/// How a block was sealed by its consensus engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Seal {
    /// Genesis block has no seal.
    Genesis,
    /// Proof-of-authority: proposer signature plus validator vote
    /// signatures (> 2/3 of the validator set).
    Authority {
        /// The round-robin proposer's signature over the header digest.
        proposer: AuthoritySignature,
        /// Validator votes over the header digest.
        votes: Vec<AuthoritySignature>,
    },
    /// PBFT: the commit-phase quorum certificate.
    Pbft {
        /// View in which the block committed.
        view: u64,
        /// Commit signatures from 2f+1 replicas.
        commits: Vec<AuthoritySignature>,
    },
    /// Proof-of-work: nonce achieving the difficulty target.
    Work {
        /// Winning nonce.
        nonce: u64,
        /// Required leading zero bits.
        difficulty_bits: u32,
    },
    /// Proof-of-stake: the lottery winner's signature and stake weight.
    Stake {
        /// Winner's signature over the header digest.
        winner: AuthoritySignature,
        /// Winner's stake at selection time.
        stake: u64,
    },
}

/// Block header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Height in the chain (genesis = 0).
    pub height: u64,
    /// Parent header digest.
    pub parent: Hash256,
    /// Merkle root of the block's transactions.
    pub tx_root: Hash256,
    /// World-state root after executing this block.
    pub state_root: Hash256,
    /// Logical timestamp (simulation milliseconds).
    pub timestamp_ms: u64,
    /// Address of the proposer / miner.
    pub proposer: Address,
    /// Which sub-chain this block belongs to: `ShardId(0)` on an
    /// unsharded chain, `0..k` for data shards,
    /// [`ShardId::COORDINATOR`] for the cross-link chain (DESIGN.md §9).
    pub shard: ShardId,
}

impl Header {
    /// Digest of the header fields (excluding the seal).
    pub fn digest(&self) -> Hash256 {
        let mut bytes = Vec::with_capacity(118);
        bytes.extend_from_slice(&self.height.to_le_bytes());
        bytes.extend_from_slice(&self.parent.0);
        bytes.extend_from_slice(&self.tx_root.0);
        bytes.extend_from_slice(&self.state_root.0);
        bytes.extend_from_slice(&self.timestamp_ms.to_le_bytes());
        bytes.extend_from_slice(&self.proposer.0);
        bytes.extend_from_slice(&self.shard.0.to_le_bytes());
        Hash256::digest(&bytes)
    }

    /// Digest including a proof-of-work nonce.
    pub fn pow_digest(&self, nonce: u64) -> Hash256 {
        let mut bytes = self.digest().0.to_vec();
        bytes.extend_from_slice(&nonce.to_le_bytes());
        Hash256::digest(&bytes)
    }
}

/// A sealed block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Header.
    pub header: Header,
    /// Ordered transactions.
    pub transactions: Vec<Transaction>,
    /// Consensus seal.
    pub seal: Seal,
}

impl Block {
    /// The genesis block of a chain identified by `chain_id`.
    pub fn genesis(chain_id: &str) -> Block {
        Block::genesis_sharded(chain_id, ShardId::default())
    }

    /// The genesis block of sub-chain `shard` in a sharded topology.
    /// Distinct shards get distinct genesis ids even under one
    /// `chain_id`, because the header commits to the shard.
    pub fn genesis_sharded(chain_id: &str, shard: ShardId) -> Block {
        let header = Header {
            height: 0,
            parent: Hash256::ZERO,
            tx_root: MerkleTree::from_leaves(Vec::new()).root(),
            state_root: Hash256::digest(chain_id.as_bytes()),
            timestamp_ms: 0,
            proposer: Address::from_seed(0),
            shard,
        };
        Block { header, transactions: Vec::new(), seal: Seal::Genesis }
    }

    /// Block id: the header digest.
    pub fn id(&self) -> Hash256 {
        self.header.digest()
    }

    /// Recomputes the transaction Merkle root from the body.
    pub fn computed_tx_root(&self) -> Hash256 {
        MerkleTree::from_leaves(self.transactions.iter().map(Transaction::id).collect()).root()
    }

    /// Checks internal consistency: the header's `tx_root` must commit to
    /// the body.
    pub fn is_body_consistent(&self) -> bool {
        self.header.tx_root == self.computed_tx_root()
    }

    /// Exact wire size for network accounting: the canonical encoded
    /// length, which is what a socket transport actually frames.
    pub fn wire_size(&self) -> usize {
        use medchain_runtime::codec::Encode;
        self.encoded().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::AuthorityKey;
    use crate::tx::TxPayload;

    fn sample_block() -> Block {
        let key = AuthorityKey::from_seed(1);
        let txs: Vec<Transaction> = (0..3)
            .map(|n| {
                Transaction::new(
                    key.address(),
                    n,
                    TxPayload::Transfer { to: Address::from_seed(2), amount: n + 1 },
                    1_000,
                )
                .signed(&key)
            })
            .collect();
        let header = Header {
            height: 1,
            parent: Block::genesis("med").id(),
            tx_root: MerkleTree::from_leaves(txs.iter().map(Transaction::id).collect()).root(),
            state_root: Hash256::digest(b"state"),
            timestamp_ms: 1_000,
            proposer: key.address(),
            shard: ShardId::default(),
        };
        Block { header, transactions: txs, seal: Seal::Genesis }
    }

    #[test]
    fn genesis_is_deterministic_per_chain_id() {
        assert_eq!(Block::genesis("med").id(), Block::genesis("med").id());
        assert_ne!(Block::genesis("med").id(), Block::genesis("other").id());
    }

    #[test]
    fn sharded_genesis_differs_per_shard() {
        let a = Block::genesis_sharded("med", ShardId(0));
        let b = Block::genesis_sharded("med", ShardId(1));
        assert_ne!(a.id(), b.id());
        // The unsharded genesis is shard 0 of a one-shard topology.
        assert_eq!(Block::genesis("med").id(), a.id());
        assert_eq!(b.header.shard, ShardId(1));
    }

    #[test]
    fn body_consistency_detects_tampering() {
        let mut block = sample_block();
        assert!(block.is_body_consistent());
        block.transactions[1].payload =
            TxPayload::Transfer { to: Address::from_seed(2), amount: 9_999 };
        assert!(!block.is_body_consistent());
    }

    #[test]
    fn header_digest_covers_every_field() {
        let base = sample_block().header;
        let mut variants = Vec::new();
        let mut h = base.clone();
        h.height += 1;
        variants.push(h);
        let mut h = base.clone();
        h.parent = Hash256::digest(b"x");
        variants.push(h);
        let mut h = base.clone();
        h.state_root = Hash256::digest(b"y");
        variants.push(h);
        let mut h = base.clone();
        h.timestamp_ms += 1;
        variants.push(h);
        let mut h = base.clone();
        h.proposer = Address::from_seed(42);
        variants.push(h);
        let mut h = base.clone();
        h.shard = ShardId(7);
        variants.push(h);
        for v in variants {
            assert_ne!(v.digest(), base.digest());
        }
    }

    #[test]
    fn pow_digest_depends_on_nonce() {
        let header = sample_block().header;
        assert_ne!(header.pow_digest(0), header.pow_digest(1));
    }
}

mod codec_impls {
    use super::{Block, Header, Seal};
    use medchain_runtime::{impl_codec_enum, impl_codec_struct};

    impl_codec_enum!(Seal {
        0 => Genesis,
        1 => Authority { proposer, votes },
        2 => Pbft { view, commits },
        3 => Work { nonce, difficulty_bits },
        4 => Stake { winner, stake },
    });
    impl_codec_struct!(Header {
        height,
        parent,
        tx_root,
        state_root,
        timestamp_ms,
        proposer,
        shard
    });
    impl_codec_struct!(Block { header, transactions, seal });
}

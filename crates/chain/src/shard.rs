//! Consensus-level sharding: shard identities, deterministic
//! transaction→shard assignment, and cross-link records.
//!
//! The paper's §I notes that sharding only *partially* fixes duplicated
//! computing: each shard still re-executes its whole slice. This module
//! supplies the chain-layer vocabulary for doing that honestly — every
//! block header carries a [`ShardId`], transactions are assigned to
//! shards by a deterministic key rule, and a coordinator chain
//! periodically commits a [`CrossLink`] (tip hash + height) for every
//! shard so a shard cannot fork past its last cross-link unnoticed.
//! The full topology and invariants are specified in `DESIGN.md` §9.
//!
//! ## Assignment rule
//!
//! * `Invoke { contract, .. }` → [`shard_for_key`]`(contract)` — a
//!   contract pins all its invocations to one shard.
//! * `Deploy`, `Transfer`, `Anchor` → keyed by the *site key* (sender
//!   address) or anchor label.
//! * `CrossLink` → never routed to a data shard; it executes only on the
//!   coordinator chain ([`ShardId::COORDINATOR`]).
//! * `XsPrepare` → the shard named by its leg; `XsFinalize` → the locked
//!   account's home shard; `XsDecide` → the coordinator chain, like
//!   `CrossLink` (two-phase commit, DESIGN.md §12).
//!
//! Contract addresses on a sharded ledger are derived by
//! [`sharded_contract_address`], which grinds a salt until the address
//! maps back (under [`shard_for_key`]) to the shard the deploy executed
//! on — the Elrond-style trick that keeps the invoke routing rule a pure
//! function of the address.

use crate::hash::Hash256;
use crate::sig::Address;
use crate::tx::{Transaction, TxPayload};
use medchain_runtime::codec::{CodecError, Decode, Encode, Reader};

/// Identity of a shard sub-chain. Data shards are numbered `0..k`; the
/// coordinator chain that commits cross-links is
/// [`ShardId::COORDINATOR`]. An unsharded chain is shard 0 of a
/// one-shard topology, so every pre-sharding chain remains valid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u16);

impl ShardId {
    /// The coordinator chain: holds cross-links, never data
    /// transactions.
    pub const COORDINATOR: ShardId = ShardId(u16::MAX);

    /// Whether this is the coordinator chain.
    pub fn is_coordinator(&self) -> bool {
        *self == ShardId::COORDINATOR
    }
}

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_coordinator() {
            f.write_str("coordinator")
        } else {
            write!(f, "shard-{}", self.0)
        }
    }
}

impl Encode for ShardId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for ShardId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ShardId(u16::decode(r)?))
    }
}

/// Deterministic key→shard assignment: the first eight digest bytes of
/// `key`, reduced modulo `shard_count`. Every honest node computes the
/// same shard for the same key, with no routing table to distribute.
///
/// # Panics
///
/// Panics if `shard_count` is zero.
pub fn shard_for_key(key: &[u8], shard_count: u16) -> ShardId {
    assert!(shard_count > 0, "shard_count must be at least 1");
    let digest = Hash256::digest(key);
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&digest.0[..8]);
    ShardId((u64::from_le_bytes(bytes) % u64::from(shard_count)) as u16)
}

/// Deterministic transaction→shard assignment (the rule in the module
/// docs): invokes route by contract key, everything else by site key
/// (sender) or anchor label; cross-links belong to the coordinator.
pub fn shard_for_tx(tx: &Transaction, shard_count: u16) -> ShardId {
    match &tx.payload {
        TxPayload::Invoke { contract, .. } => shard_for_key(&contract.0, shard_count),
        TxPayload::Anchor { label, .. } => shard_for_key(label.as_bytes(), shard_count),
        TxPayload::CrossLink { .. } | TxPayload::XsDecide { .. } => ShardId::COORDINATOR,
        TxPayload::XsPrepare { leg, .. } => leg.shard,
        TxPayload::XsFinalize { account, .. } => shard_for_key(&account.0, shard_count),
        TxPayload::Transfer { .. } | TxPayload::Deploy { .. } => {
            shard_for_key(&tx.sender.0, shard_count)
        }
    }
}

/// Contract address derivation on a sharded ledger: grinds a salt into
/// `H(sender ‖ nonce ‖ salt ‖ "shard")` until the derived address maps
/// back to `shard` under [`shard_for_key`]. The result is a pure
/// function of `(sender, nonce, shard, shard_count)`, so every replica
/// of the hosting shard derives the same address, and the invoke
/// routing rule (`shard_for_key(contract)`) lands on the chain that
/// actually holds the code. Expected `shard_count` digest attempts.
///
/// # Panics
///
/// Panics if `shard` is the coordinator (which hosts no contracts) or
/// out of range.
pub fn sharded_contract_address(
    sender: &Address,
    nonce: u64,
    shard: ShardId,
    shard_count: u16,
) -> Address {
    assert!(!shard.is_coordinator(), "the coordinator chain hosts no contracts");
    assert!(shard.0 < shard_count, "shard {} out of range (k = {shard_count})", shard.0);
    let mut material = sender.0.to_vec();
    material.extend_from_slice(&nonce.to_le_bytes());
    material.extend_from_slice(b"shard");
    material.extend_from_slice(&[0u8; 8]);
    let salt_at = material.len() - 8;
    for salt in 0u64.. {
        material[salt_at..].copy_from_slice(&salt.to_le_bytes());
        let addr = Address::from_key_material(&material);
        if shard_for_key(&addr.0, shard_count) == shard {
            return addr;
        }
    }
    unreachable!("some salt always lands in the target shard")
}

/// One shard's committed tip as recorded on the coordinator chain: the
/// payload of a [`TxPayload::CrossLink`] transaction. The coordinator's
/// world state keeps the newest record per shard; recovery checks every
/// shard sub-chain against it (DESIGN.md §9 invariants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossLink {
    /// The shard whose tip is being committed.
    pub shard: ShardId,
    /// Height of the shard's tip block.
    pub height: u64,
    /// Digest of the shard's tip block header.
    pub tip: Hash256,
}

impl std::fmt::Display for CrossLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cross-link: {} height {} tip {:?}", self.shard, self.height, self.tip)
    }
}

mod codec_impls {
    use super::CrossLink;
    use medchain_runtime::impl_codec_struct;

    impl_codec_struct!(CrossLink { shard, height, tip });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::AuthorityKey;
    use medchain_runtime::codec::{Decode, Encode};

    #[test]
    fn shard_for_key_is_deterministic_and_in_range() {
        for k in [1u16, 2, 3, 7] {
            for i in 0..64u64 {
                let key = i.to_le_bytes();
                let a = shard_for_key(&key, k);
                assert_eq!(a, shard_for_key(&key, k));
                assert!(a.0 < k);
            }
        }
    }

    #[test]
    fn shard_for_key_spreads_keys() {
        let k = 4u16;
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..64u64 {
            seen.insert(shard_for_key(&i.to_le_bytes(), k).0);
        }
        assert_eq!(seen.len(), k as usize, "64 keys should hit all {k} shards");
    }

    #[test]
    fn tx_assignment_follows_the_rule() {
        let key = AuthorityKey::from_seed(1);
        let k = 4u16;
        let mk = |payload| Transaction::new(key.address(), 0, payload, 100);
        let contract = Address::from_seed(9);
        let invoke = mk(TxPayload::Invoke { contract, input: vec![] });
        assert_eq!(shard_for_tx(&invoke, k), shard_for_key(&contract.0, k));
        let transfer = mk(TxPayload::Transfer { to: Address::from_seed(2), amount: 1 });
        assert_eq!(shard_for_tx(&transfer, k), shard_for_key(&key.address().0, k));
        let anchor = mk(TxPayload::Anchor { root: Hash256::ZERO, label: "h/emr".into() });
        assert_eq!(shard_for_tx(&anchor, k), shard_for_key(b"h/emr", k));
        let link = mk(TxPayload::CrossLink {
            shard: ShardId(0),
            height: 1,
            tip: Hash256::ZERO,
        });
        assert_eq!(shard_for_tx(&link, k), ShardId::COORDINATOR);
        let account = Address::from_seed(5);
        let prepare = mk(TxPayload::XsPrepare {
            xid: Hash256::digest(b"xfer"),
            leg: crate::tx::XsLeg { shard: ShardId(3), account, amount: 5, debit: true },
            deadline_ms: 1_000,
        });
        assert_eq!(shard_for_tx(&prepare, k), ShardId(3), "prepare runs on its leg's shard");
        let decide = mk(TxPayload::XsDecide { xid: Hash256::digest(b"xfer"), commit: true });
        assert_eq!(shard_for_tx(&decide, k), ShardId::COORDINATOR);
        let finalize =
            mk(TxPayload::XsFinalize { xid: Hash256::digest(b"xfer"), account, commit: true });
        assert_eq!(shard_for_tx(&finalize, k), shard_for_key(&account.0, k));
    }

    #[test]
    fn sharded_contract_address_lands_in_its_shard() {
        let sender = Address::from_seed(3);
        for k in [2u16, 3, 5] {
            for s in 0..k {
                let addr = sharded_contract_address(&sender, 0, ShardId(s), k);
                assert_eq!(shard_for_key(&addr.0, k), ShardId(s));
                // Deterministic and nonce-sensitive.
                assert_eq!(addr, sharded_contract_address(&sender, 0, ShardId(s), k));
                assert_ne!(addr, sharded_contract_address(&sender, 1, ShardId(s), k));
            }
        }
    }

    #[test]
    fn shard_id_codec_and_display() {
        for id in [ShardId(0), ShardId(41), ShardId::COORDINATOR] {
            let bytes = id.encoded();
            assert_eq!(ShardId::decoded(&bytes).unwrap(), id);
        }
        assert_eq!(ShardId(2).to_string(), "shard-2");
        assert_eq!(ShardId::COORDINATOR.to_string(), "coordinator");
        assert!(ShardId::COORDINATOR.is_coordinator());
        assert!(!ShardId(0).is_coordinator());
    }
}

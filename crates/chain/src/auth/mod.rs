//! Authenticated world state: sparse Merkle commitments over every state
//! entry, incremental per-block root maintenance, and proof-carrying
//! reads for light clients (DESIGN.md §13).
//!
//! The subsystem has three layers:
//!
//! * [`leaf`] — the canonical [`LeafKey`] vocabulary and the one hashing
//!   scheme shared by every root computation in the codebase;
//! * [`smt`] — the persistent [`StateTree`] the ledger maintains
//!   incrementally from committed `StateDelta`s;
//! * this module — the wire-level proof objects. [`SmtProof`] is the bare
//!   Merkle path; [`StateProof`] packages it with the claimed value and
//!   the block coordinates it verifies against, mirroring the
//!   tx-inclusion `TxReceipt`.
//!
//! Trust boundary: `StateProof::verify()` checks internal consistency
//! against the root *carried in the proof* — sufficient when the
//! responder is trusted to name real blocks. A fully trustless client
//! calls `verify_against(&root)` with a root it fetched independently
//! (e.g. from a block header it validated), exactly like
//! `TxReceipt::verify_against`.

pub mod leaf;
pub mod smt;

pub use leaf::{key_hash, value_hash, versioned_root, LeafKey, EMPTY_SUBTREE};
pub use smt::{delta_updates, NodePager, StateTree};

use crate::hash::Hash256;
use crate::shard::ShardId;
use medchain_runtime::codec::Encode;
use medchain_runtime::{impl_codec_enum, impl_codec_struct};

/// What the prover found at the end of the Merkle path for a queried
/// key. Inclusion ends at the key's own leaf; absence ends at an empty
/// subtree or at a *different* leaf occupying the key's path prefix
/// (the compact-SMT encoding of "nothing else hangs below here").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofTerminal {
    /// The queried key's leaf, committing to this value hash.
    Leaf {
        /// Hash of the leaf's canonical value bytes.
        value_hash: Hash256,
    },
    /// An empty subtree: nothing is stored under this path.
    Empty,
    /// A single-leaf subtree holding some other key: the queried key is
    /// absent, because a compact SMT stores a lone leaf at the highest
    /// point of its unique path prefix.
    OtherLeaf {
        /// Key hash of the occupying leaf (must differ from the query's
        /// yet share its first `siblings.len()` path bits).
        key_hash: Hash256,
        /// Value hash of the occupying leaf.
        value_hash: Hash256,
    },
}

impl_codec_enum!(ProofTerminal {
    0 => Leaf { value_hash },
    1 => Empty,
    2 => OtherLeaf { key_hash, value_hash },
});

/// A Merkle path through the state tree: sibling hashes from the root
/// down to the [`ProofTerminal`]. ~`log₂(leaves)` siblings of 32 bytes
/// each, so proofs stay a few hundred bytes at millions of keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmtProof {
    /// Sibling hash at each level, root-down; `siblings[d]` is the hash
    /// of the subtree *not* taken at depth `d`.
    pub siblings: Vec<Hash256>,
    /// What sits at the end of the path.
    pub terminal: ProofTerminal,
}

impl_codec_struct!(SmtProof { siblings, terminal });

impl SmtProof {
    /// Verifies this path against a version-tagged root for the claim
    /// "`key` maps to `value`" (`Some`) or "`key` is absent" (`None`).
    ///
    /// Any mismatch — wrong terminal kind for the claim, value-hash
    /// mismatch, an `OtherLeaf` that is really the queried key or does
    /// not share the path prefix, or a fold that misses the root —
    /// returns `false`.
    pub fn verify(
        &self,
        key: &LeafKey,
        value: Option<&[u8]>,
        expected_versioned_root: &Hash256,
    ) -> bool {
        // Key hashes are 256 bits; a longer path cannot be honest.
        if self.siblings.len() > 256 {
            return false;
        }
        let kh = key_hash(key);
        let mut acc = match (&self.terminal, value) {
            (ProofTerminal::Leaf { value_hash: vh }, Some(value)) => {
                if leaf::value_hash(value) != *vh {
                    return false;
                }
                leaf::leaf_hash(&kh, vh)
            }
            (ProofTerminal::Empty, None) => EMPTY_SUBTREE,
            (ProofTerminal::OtherLeaf {
                key_hash: other_kh,
                value_hash: other_vh,
            }, None) => {
                if *other_kh == kh {
                    return false;
                }
                // The occupying leaf must genuinely live on the queried
                // key's path: its key hash shares every bit consumed by
                // the fold below. Without this check a prover could
                // recycle an arbitrary leaf from elsewhere in the tree.
                for depth in 0..self.siblings.len() {
                    if leaf::key_bit(other_kh, depth) != leaf::key_bit(&kh, depth) {
                        return false;
                    }
                }
                leaf::leaf_hash(other_kh, other_vh)
            }
            // Terminal kind contradicts the presence claim.
            _ => return false,
        };
        for depth in (0..self.siblings.len()).rev() {
            let sibling = &self.siblings[depth];
            acc = if leaf::key_bit(&kh, depth) {
                leaf::node_hash(sibling, &acc)
            } else {
                leaf::node_hash(&acc, sibling)
            };
        }
        versioned_root(&acc) == *expected_versioned_root
    }

    /// Encoded size in bytes (what travels over the gateway wire).
    pub fn size_bytes(&self) -> usize {
        self.encoded().len()
    }
}

/// A complete proof-carrying state read: the queried key, the value the
/// responder claims (or `None` for absence), the Merkle path, and the
/// coordinates of the block whose header root the proof folds up to.
///
/// The shape mirrors `TxReceipt`: `verify()` for a trusted responder,
/// [`verify_against`](StateProof::verify_against) with an independently
/// obtained header root for a trustless one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateProof {
    /// The state entry this proof speaks about.
    pub key: LeafKey,
    /// Canonical value bytes at `key`, or `None` if absent.
    pub value: Option<Vec<u8>>,
    /// Merkle path from `state_root` down to the key's position.
    pub proof: SmtProof,
    /// The versioned state root the path folds up to (copied from the
    /// block header by the prover).
    pub state_root: Hash256,
    /// Id of the block whose header carries `state_root`.
    pub block_id: Hash256,
    /// Height of that block on its chain.
    pub height: u64,
    /// The shard whose chain committed that block — proofs only verify
    /// against the key's home shard's root.
    pub shard: ShardId,
}

impl_codec_struct!(StateProof {
    key,
    value,
    proof,
    state_root,
    block_id,
    height,
    shard
});

impl StateProof {
    /// Verifies the path against the root carried in the proof itself.
    pub fn verify(&self) -> bool {
        self.verify_against(&self.state_root)
    }

    /// Verifies the path against an independently obtained header root
    /// (also re-checks the carried root, so a proof that passes here
    /// also passes [`verify`](StateProof::verify)).
    pub fn verify_against(&self, expected_root: &Hash256) -> bool {
        self.state_root == *expected_root
            && self
                .proof
                .verify(&self.key, self.value.as_deref(), expected_root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::Address;
    use medchain_runtime::codec::Decode;

    fn sample_tree() -> (StateTree, Vec<LeafKey>) {
        let mut tree = StateTree::new();
        let mut keys = Vec::new();
        for seed in 0..24u64 {
            let key = LeafKey::Account(Address::from_seed(seed));
            tree.update(&key, Some(&seed.to_le_bytes()));
            keys.push(key);
        }
        for label in ["alpha", "beta", "gamma"] {
            let key = LeafKey::Anchor(label.into());
            tree.update(&key, Some(label.as_bytes()));
            keys.push(key);
        }
        assert!(tree.audit());
        (tree, keys)
    }

    #[test]
    fn inclusion_proofs_verify_for_every_leaf() {
        let (tree, keys) = sample_tree();
        let root = tree.versioned_root();
        for (i, key) in keys.iter().enumerate() {
            let proof = tree.prove(key);
            let value: Vec<u8> = match key {
                LeafKey::Account(_) => (i as u64).to_le_bytes().to_vec(),
                LeafKey::Anchor(label) => label.as_bytes().to_vec(),
                _ => unreachable!(),
            };
            assert!(proof.verify(key, Some(&value), &root), "leaf {i}");
            // Inclusion proof must not double as absence proof.
            assert!(!proof.verify(key, None, &root));
            // Nor verify a different value.
            assert!(!proof.verify(key, Some(b"not the value"), &root));
        }
    }

    #[test]
    fn absence_proofs_verify_for_missing_keys() {
        let (tree, _) = sample_tree();
        let root = tree.versioned_root();
        for seed in 100..140u64 {
            let key = LeafKey::Account(Address::from_seed(seed));
            let proof = tree.prove(&key);
            assert!(proof.verify(&key, None, &root), "absent {seed}");
            assert!(!proof.verify(&key, Some(b"phantom"), &root));
        }
        // The empty tree proves absence of everything.
        let empty = StateTree::new();
        let key = LeafKey::Anchor("nothing".into());
        assert!(empty
            .prove(&key)
            .verify(&key, None, &empty.versioned_root()));
    }

    #[test]
    fn absence_proof_rejects_foreign_other_leaf() {
        let (tree, keys) = sample_tree();
        let root = tree.versioned_root();
        let missing = LeafKey::Account(Address::from_seed(999));
        let mut proof = tree.prove(&missing);
        if let ProofTerminal::OtherLeaf { .. } = proof.terminal {
            // Swap in a real leaf from elsewhere in the tree: same
            // hashes, wrong path — the prefix check must catch it.
            let foreign = key_hash(&keys[0]);
            let shares_path = (0..proof.siblings.len())
                .all(|d| leaf::key_bit(&foreign, d) == leaf::key_bit(&key_hash(&missing), d));
            if !shares_path {
                proof.terminal = ProofTerminal::OtherLeaf {
                    key_hash: foreign,
                    value_hash: value_hash(b"whatever"),
                };
                assert!(!proof.verify(&missing, None, &root));
            }
        }
        // Claiming the queried key itself as the "other" leaf is invalid.
        let self_leaf = ProofTerminal::OtherLeaf {
            key_hash: key_hash(&missing),
            value_hash: value_hash(b"v"),
        };
        let forged = SmtProof {
            siblings: Vec::new(),
            terminal: self_leaf,
        };
        assert!(!forged.verify(&missing, None, &versioned_root(&leaf::leaf_hash(
            &key_hash(&missing),
            &value_hash(b"v"),
        ))));
    }

    #[test]
    fn oversized_paths_are_rejected() {
        let key = LeafKey::Anchor("x".into());
        let proof = SmtProof {
            siblings: vec![Hash256::ZERO; 257],
            terminal: ProofTerminal::Empty,
        };
        assert!(!proof.verify(&key, None, &Hash256::ZERO));
    }

    #[test]
    fn proof_types_round_trip_codec() {
        let (tree, keys) = sample_tree();
        let proof = StateProof {
            key: keys[3].clone(),
            value: Some(b"payload".to_vec()),
            proof: tree.prove(&keys[3]),
            state_root: tree.versioned_root(),
            block_id: Hash256::digest(b"block"),
            height: 7,
            shard: ShardId(1),
        };
        assert_eq!(StateProof::decoded(&proof.encoded()).unwrap(), proof);
        let absent = tree.prove(&LeafKey::Anchor("missing".into()));
        assert_eq!(SmtProof::decoded(&absent.encoded()).unwrap(), absent);
    }

    #[test]
    fn delete_restores_prior_root_and_canonical_form() {
        let (mut tree, _) = sample_tree();
        let before = tree.root();
        let len_before = tree.len();
        let key = LeafKey::Anchor("transient".into());
        tree.update(&key, Some(b"here"));
        assert_eq!(tree.len(), len_before + 1);
        assert_ne!(tree.root(), before);
        assert!(tree.audit());
        tree.update(&key, None);
        assert_eq!(tree.len(), len_before);
        assert_eq!(tree.root(), before, "delete must restore canonical root");
        assert!(tree.audit());
        // Deleting a key that was never present is a no-op.
        tree.update(&LeafKey::Anchor("ghost".into()), None);
        assert_eq!(tree.root(), before);
        assert_eq!(tree.len(), len_before);
    }

    #[test]
    fn tree_codec_round_trips_without_rehashing() {
        let (tree, keys) = sample_tree();
        let decoded = StateTree::decoded(&tree.encoded()).unwrap();
        assert_eq!(decoded, tree);
        assert_eq!(decoded.len(), tree.len());
        assert!(decoded.audit());
        let root = decoded.versioned_root();
        let proof = decoded.prove(&keys[0]);
        assert!(proof.verify(&keys[0], Some(&0u64.to_le_bytes()), &root));
    }

    #[test]
    fn clones_are_independent_snapshots() {
        let (mut tree, _) = sample_tree();
        let snapshot = tree.clone();
        let root = snapshot.root();
        tree.update(&LeafKey::Anchor("new".into()), Some(b"v"));
        assert_ne!(tree.root(), root);
        assert_eq!(snapshot.root(), root);
    }
}

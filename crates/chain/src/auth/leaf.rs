//! Canonical leaf vocabulary and hashing of the authenticated state tree.
//!
//! Every entry of [`WorldState`](crate::ledger::WorldState) maps to exactly
//! one [`LeafKey`], and every leaf key has exactly one canonical value
//! encoding (see [`WorldState::leaf_value`](crate::ledger::WorldState::leaf_value)).
//! The sparse Merkle tree in [`super::smt`], the monolithic
//! `state_root()` reference path, and the incremental per-block update in
//! `Ledger::apply` all hash through the helpers in this module, so the
//! byte layout is written down once and cannot drift between them.
//!
//! `LeafKey` refines the coarser `StateKey` vocabulary used by the
//! parallel-execution scheduler (`exec::StateKey`): the scheduler only
//! needs contract-level conflict granularity, while proofs need one leaf
//! per slot. [`LeafKey::scheduling_key`] gives the mapping.

use crate::exec::StateKey;
use crate::hash::{Hash256, Sha256};
use crate::shard::{shard_for_key, ShardId};
use crate::sig::Address;
use medchain_runtime::codec::Encode;
use medchain_runtime::impl_codec_enum;

/// Domain tag mixed into every key hash.
const KEY_TAG: &[u8] = b"medchain/smt/key/v1";
/// Domain tag mixed into every value hash.
const VALUE_TAG: &[u8] = b"medchain/smt/value/v1";
/// First byte of a leaf-node preimage (domain-separates leaves from
/// internal nodes so a proof cannot present one as the other).
const LEAF_TAG: u8 = 0x00;
/// First byte of an internal-node preimage.
const NODE_TAG: u8 = 0x01;
/// Domain tag of the versioned block-header root. `v1` was the flat
/// sequential rehash of the whole state; `v2` commits to the sparse
/// Merkle tree root. Bumping the version changes every header root, so
/// mixed-version replicas cannot silently agree.
const ROOT_TAG: &[u8] = b"medchain/state-root/v2";

/// Hash of an empty subtree. A real node can never hash to all-zeroes
/// without a preimage break, so the sentinel is unambiguous.
pub const EMPTY_SUBTREE: Hash256 = Hash256::ZERO;

/// Identifies one provable entry of the committed world state.
///
/// The variant payloads reuse the exact types the state maps are keyed
/// by, so a light client can name any entry a transaction can touch.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LeafKey {
    /// Balance + nonce record of `Address`.
    Account(Address),
    /// One storage slot (`key`) of contract `Address`.
    Storage(Address, Vec<u8>),
    /// Deployed code of contract `Address`.
    Code(Address),
    /// Dataset anchor registered under a label.
    Anchor(String),
    /// Cross-link record for sub-chain `u16` (coordinator state).
    CrossLink(u16),
    /// Cross-shard escrow lock held against `Address`.
    Lock(Address),
    /// Cross-shard commit/abort decision for transfer `Hash256`.
    XsDecision(Hash256),
}

impl_codec_enum!(LeafKey {
    0 => Account(addr),
    1 => Storage(contract, key),
    2 => Code(contract),
    3 => Anchor(label),
    4 => CrossLink(shard),
    5 => Lock(addr),
    6 => XsDecision(xid),
});

impl LeafKey {
    /// The shard whose state tree holds this key, mirroring
    /// `shard_for_key` transaction routing: account-rooted keys live on
    /// the owner's shard, anchors hash their label, and cross-shard
    /// bookkeeping lives on the coordinator chain.
    pub fn home_shard(&self, shard_count: u16) -> ShardId {
        match self {
            LeafKey::Account(addr)
            | LeafKey::Storage(addr, _)
            | LeafKey::Code(addr)
            | LeafKey::Lock(addr) => shard_for_key(&addr.0, shard_count),
            LeafKey::Anchor(label) => shard_for_key(label.as_bytes(), shard_count),
            LeafKey::CrossLink(_) | LeafKey::XsDecision(_) => ShardId::COORDINATOR,
        }
    }

    /// The coarse conflict key the parallel-execution scheduler uses for
    /// this leaf (`StateKey` has contract-level granularity only).
    pub fn scheduling_key(&self) -> StateKey {
        match self {
            LeafKey::Account(addr) | LeafKey::Lock(addr) => StateKey::Account(*addr),
            LeafKey::Storage(addr, _) | LeafKey::Code(addr) => StateKey::Contract(*addr),
            LeafKey::Anchor(label) => StateKey::Anchor(label.clone()),
            LeafKey::CrossLink(shard) => StateKey::CrossLink(*shard),
            LeafKey::XsDecision(xid) => StateKey::XsDecision(*xid),
        }
    }
}

/// Position-defining hash of a leaf key. The 256 bits, consumed
/// MSB-first, are the leaf's path from the root.
pub fn key_hash(key: &LeafKey) -> Hash256 {
    let mut hasher = Sha256::new();
    hasher.update(KEY_TAG);
    hasher.update(&key.encoded());
    hasher.finalize()
}

/// Hash of a leaf's canonical value bytes.
pub fn value_hash(value: &[u8]) -> Hash256 {
    let mut hasher = Sha256::new();
    hasher.update(VALUE_TAG);
    hasher.update(value);
    hasher.finalize()
}

/// Hash of a leaf node: `H(0x00 ‖ key_hash ‖ value_hash)`.
pub fn leaf_hash(key_hash: &Hash256, value_hash: &Hash256) -> Hash256 {
    let mut hasher = Sha256::new();
    hasher.update(&[LEAF_TAG]);
    hasher.update(&key_hash.0);
    hasher.update(&value_hash.0);
    hasher.finalize()
}

/// Hash of an internal node: `H(0x01 ‖ left ‖ right)`.
pub fn node_hash(left: &Hash256, right: &Hash256) -> Hash256 {
    let mut hasher = Sha256::new();
    hasher.update(&[NODE_TAG]);
    hasher.update(&left.0);
    hasher.update(&right.0);
    hasher.finalize()
}

/// The root that goes into `Header.state_root`: the tree root wrapped in
/// a version tag, so the header stays a plain `Hash256` while the
/// commitment scheme stays upgradeable.
pub fn versioned_root(smt_root: &Hash256) -> Hash256 {
    let mut hasher = Sha256::new();
    hasher.update(ROOT_TAG);
    hasher.update(&smt_root.0);
    hasher.finalize()
}

/// Bit `depth` of a key hash, MSB-first (`depth` 0 is the top bit of
/// byte 0). `true` routes right.
pub fn key_bit(hash: &Hash256, depth: usize) -> bool {
    (hash.0[depth / 8] >> (7 - depth % 8)) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use medchain_runtime::codec::Decode;

    #[test]
    fn leaf_key_codec_round_trips() {
        let keys = [
            LeafKey::Account(Address::from_seed(1)),
            LeafKey::Storage(Address::from_seed(2), b"slot".to_vec()),
            LeafKey::Code(Address::from_seed(2)),
            LeafKey::Anchor("trial-1".into()),
            LeafKey::CrossLink(3),
            LeafKey::Lock(Address::from_seed(3)),
            LeafKey::XsDecision(Hash256::digest(b"x")),
        ];
        for key in &keys {
            assert_eq!(&LeafKey::decoded(&key.encoded()).unwrap(), key);
        }
    }

    #[test]
    fn key_hashes_are_domain_separated() {
        let addr = Address::from_seed(1);
        assert_ne!(
            key_hash(&LeafKey::Account(addr)),
            key_hash(&LeafKey::Code(addr))
        );
        assert_ne!(key_hash(&LeafKey::Account(addr)), Hash256::digest(&addr.0));
        let kh = key_hash(&LeafKey::Anchor("x".into()));
        let vh = value_hash(b"v");
        assert_ne!(leaf_hash(&kh, &vh), node_hash(&kh, &vh));
    }

    #[test]
    fn key_bit_walks_msb_first() {
        let mut h = Hash256::ZERO;
        h.0[0] = 0b1000_0001;
        assert!(key_bit(&h, 0));
        assert!(!key_bit(&h, 1));
        assert!(key_bit(&h, 7));
        h.0[31] = 1;
        assert!(key_bit(&h, 255));
    }

    #[test]
    fn coordinator_keys_route_to_coordinator() {
        assert_eq!(LeafKey::CrossLink(1).home_shard(4), ShardId::COORDINATOR);
        assert_eq!(
            LeafKey::XsDecision(Hash256::ZERO).home_shard(4),
            ShardId::COORDINATOR
        );
        let addr = Address::from_seed(4);
        assert_eq!(
            LeafKey::Account(addr).home_shard(4),
            shard_for_key(&addr.0, 4)
        );
        assert_eq!(
            LeafKey::Account(addr).home_shard(4),
            LeafKey::Lock(addr).home_shard(4)
        );
    }
}

//! Persistent (copy-on-write) sparse Merkle tree over the state leaves.
//!
//! The tree is the compact variant: an empty subtree hashes to
//! [`EMPTY_SUBTREE`] and a subtree holding a
//! single leaf hashes to the leaf itself, so depth is O(log n) in the
//! number of leaves rather than a fixed 256. Nodes are `Arc`-shared:
//! updating one leaf clones only the path from the root to that leaf
//! (~log n allocations), which is what makes per-block root maintenance
//! O(keys changed) while older tree versions stay readable for free.
//!
//! Canonical-form invariant: an internal node never has an empty child
//! paired with a leaf child (such a node collapses to the leaf) and never
//! has two empty children. Deleting a key therefore restores the exact
//! root the tree had before the key was inserted.
//!
//! ## Disk-resident cold subtrees (DESIGN.md §14)
//!
//! With a [`NodePager`] attached, [`StateTree::spill_to_budget`] swaps
//! cold subtrees for single-node `Node::Paged` stubs holding only the
//! subtree hash, leaf count, and page id; the subtree's preorder bytes
//! move to disk. Every traversal resolves stubs on descent (mutating
//! paths promote them back into the rebuilt path; read-only paths decode
//! transiently), and the serialized form splices page bytes verbatim —
//! so roots, proofs, and snapshot bytes are identical whether the tree
//! is fully resident or mostly cold. Spilling is representation only,
//! never semantics.

use std::sync::Arc;

use super::leaf::{self, LeafKey, EMPTY_SUBTREE};
use super::{ProofTerminal, SmtProof};
use crate::exec::StateDelta;
use crate::hash::Hash256;
use crate::ledger::WorldState;
use medchain_runtime::codec::{CodecError, Decode, Encode, Reader};

/// Hard ceiling on node depth: key hashes are 256 bits, so two distinct
/// keys must diverge by depth 256; anything deeper is corrupt data.
const MAX_DEPTH: usize = 256;

/// Disk backing for spilled (cold) subtrees — implemented by
/// `medchain-storage`'s page cache (DESIGN.md §14).
///
/// The stored bytes are the subtree's preorder encoding (the exact bytes
/// [`StateTree`]'s `Encode` impl would emit for it), which is what lets
/// the tree's snapshot encoding splice a spilled page verbatim: a tree
/// with cold subtrees serializes byte-identically to a fully resident
/// one.
///
/// Spill pages are *derived* data — everything in them is recomputable
/// from the snapshot + WAL — so implementors may discard them across
/// restarts, but a load failure **mid-run** is unrecoverable data loss
/// and implementors should panic with context rather than return
/// garbage.
pub trait NodePager: Send + Sync {
    /// Persists one encoded subtree, returning its page handle.
    fn store_node(&self, bytes: &[u8]) -> u64;
    /// Loads the bytes previously stored under `page`.
    fn load_node(&self, page: u64) -> Vec<u8>;
}

/// One node of the tree. Hashes are computed eagerly on construction and
/// cached, so reads never hash.
enum Node {
    /// An empty subtree (hash [`EMPTY_SUBTREE`]).
    Empty,
    /// A subtree holding exactly one leaf; hashes as the leaf itself.
    Leaf {
        hash: Hash256,
        key_hash: Hash256,
        value_hash: Hash256,
    },
    /// A subtree holding two or more leaves.
    Internal {
        hash: Hash256,
        left: Arc<Node>,
        right: Arc<Node>,
    },
    /// A cold subtree spilled to the node pager: only its hash and leaf
    /// count stay resident. Never produced by `Decode` — it exists only
    /// in memory, as the residue of [`StateTree::spill_to_budget`].
    Paged {
        hash: Hash256,
        leaves: u64,
        page: u64,
    },
}

impl Node {
    fn hash(&self) -> Hash256 {
        match self {
            Node::Empty => EMPTY_SUBTREE,
            Node::Leaf { hash, .. } | Node::Internal { hash, .. } | Node::Paged { hash, .. } => {
                *hash
            }
        }
    }

    fn leaf(key_hash: Hash256, value_hash: Hash256) -> Node {
        Node::Leaf {
            hash: leaf::leaf_hash(&key_hash, &value_hash),
            key_hash,
            value_hash,
        }
    }

    fn internal(left: Arc<Node>, right: Arc<Node>) -> Node {
        Node::Internal {
            hash: leaf::node_hash(&left.hash(), &right.hash()),
            left,
            right,
        }
    }
}

/// The authenticated index of a [`WorldState`]: one leaf per state
/// entry, rooted in the block header via
/// [`versioned_root`](StateTree::versioned_root).
///
/// Cloning is O(1) (an `Arc` bump); the clone is an immutable snapshot
/// unaffected by later [`update`](StateTree::update) calls on either
/// copy.
#[derive(Clone)]
pub struct StateTree {
    root: Arc<Node>,
    len: usize,
    /// Backing store for [`Node::Paged`] subtrees. `None` means the tree
    /// is (and stays) fully resident. Clones share the pager; spilled
    /// pages are never freed mid-run precisely because an older clone
    /// may still reference them (see [`NodePager`]).
    pager: Option<Arc<dyn NodePager>>,
}

impl Default for StateTree {
    fn default() -> Self {
        StateTree::new()
    }
}

impl std::fmt::Debug for StateTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateTree")
            .field("len", &self.len)
            .field("root", &self.root.hash())
            .finish()
    }
}

impl PartialEq for StateTree {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.root.hash() == other.root.hash()
    }
}

impl Eq for StateTree {}

impl StateTree {
    /// The empty tree (root commits to zero leaves).
    pub fn new() -> StateTree {
        StateTree {
            root: Arc::new(Node::Empty),
            len: 0,
            pager: None,
        }
    }

    /// Attaches the disk pager cold subtrees spill to. Attaching never
    /// moves anything by itself — spilling happens only at explicit
    /// [`spill_to_budget`](StateTree::spill_to_budget) calls.
    pub fn attach_pager(&mut self, pager: Arc<dyn NodePager>) {
        self.pager = Some(pager);
    }

    /// The attached node pager, if any.
    pub fn pager(&self) -> Option<Arc<dyn NodePager>> {
        self.pager.clone()
    }

    /// Builds the tree for an entire world state from scratch. This is
    /// the O(total state) reference path — the ledger calls it once per
    /// process (on construction or recovery), then maintains the tree
    /// incrementally via [`with_delta`](StateTree::with_delta).
    pub fn from_state(state: &WorldState) -> StateTree {
        let mut tree = StateTree::new();
        state.for_each_leaf(&mut |key, value| tree.update(&key, Some(value)));
        tree
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw sparse-Merkle-tree root.
    pub fn root(&self) -> Hash256 {
        self.root.hash()
    }

    /// The version-tagged root committed into `Header.state_root`.
    pub fn versioned_root(&self) -> Hash256 {
        leaf::versioned_root(&self.root())
    }

    /// Sets (`Some`) or deletes (`None`) one leaf, rebuilding only the
    /// root-to-leaf path.
    pub fn update(&mut self, key: &LeafKey, value: Option<&[u8]>) {
        let key_hash = leaf::key_hash(key);
        let pager = self.pager.as_deref();
        match value {
            Some(value) => {
                let value_hash = leaf::value_hash(value);
                let (root, was_present) = insert_at(&self.root, 0, key_hash, value_hash, pager);
                self.root = root;
                if !was_present {
                    self.len += 1;
                }
            }
            None => {
                let (root, removed) = remove_at(&self.root, 0, &key_hash, pager);
                self.root = root;
                if removed {
                    self.len -= 1;
                }
            }
        }
    }

    /// The tree after applying a committed block's [`StateDelta`]:
    /// tombstoned storage slots and cleared locks become deletions,
    /// everything else an upsert. Cost is O(keys changed · log n); the
    /// receiver is untouched.
    pub fn with_delta(&self, delta: &StateDelta) -> StateTree {
        let mut tree = self.clone();
        for (key, value) in delta_updates(delta) {
            tree.update(&key, value.as_deref());
        }
        tree
    }

    /// Merkle path for `key` against the current root, usable both to
    /// prove inclusion (the stored value) and absence (no leaf under
    /// this key). Pair it with the leaf's canonical value bytes in a
    /// [`StateProof`](super::StateProof).
    pub fn prove(&self, key: &LeafKey) -> SmtProof {
        let key_hash = leaf::key_hash(key);
        let mut siblings = Vec::new();
        // Owned cursor: descending into a spilled subtree resolves a
        // transient copy without touching the tree (`&self`); siblings
        // that stay cold contribute only their resident hash.
        let mut node = resolve(&self.root, self.pager.as_deref());
        let mut depth = 0;
        loop {
            let next = match &*node {
                Node::Empty => {
                    return SmtProof {
                        siblings,
                        terminal: ProofTerminal::Empty,
                    }
                }
                Node::Leaf {
                    key_hash: leaf_kh,
                    value_hash,
                    ..
                } => {
                    let terminal = if *leaf_kh == key_hash {
                        ProofTerminal::Leaf {
                            value_hash: *value_hash,
                        }
                    } else {
                        // A different leaf occupies the queried key's
                        // path prefix: proof of absence.
                        ProofTerminal::OtherLeaf {
                            key_hash: *leaf_kh,
                            value_hash: *value_hash,
                        }
                    };
                    return SmtProof { siblings, terminal };
                }
                Node::Internal { left, right, .. } => {
                    if leaf::key_bit(&key_hash, depth) {
                        siblings.push(left.hash());
                        resolve(right, self.pager.as_deref())
                    } else {
                        siblings.push(right.hash());
                        resolve(left, self.pager.as_deref())
                    }
                }
                Node::Paged { .. } => unreachable!("cursor is always resolved"),
            };
            node = next;
            depth += 1;
        }
    }

    /// Full structural self-check (recomputes every hash, verifies the
    /// canonical-form invariant, leaf paths, and the leaf count).
    /// Spilled subtrees are resolved transiently and checked against
    /// their resident hash. O(total state) — test and debugging aid
    /// only.
    pub fn audit(&self) -> bool {
        let mut leaves = 0usize;
        audit_node(&self.root, 0, &mut Vec::new(), &mut leaves, self.pager.as_deref())
            && leaves == self.len
    }

    /// Nodes currently held in memory, counting each spilled subtree as
    /// the single `Node::Paged` stub that represents it.
    pub fn resident_nodes(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Internal { left, right, .. } => 1 + count(left) + count(right),
                _ => 1,
            }
        }
        count(&self.root)
    }

    /// Spills cold subtrees to the attached pager until at most `budget`
    /// nodes stay resident (best effort: the root-to-spill paths
    /// themselves stay resident, so very small budgets floor out at the
    /// tree's spine). No hash is recomputed — a spilled subtree is
    /// replaced by a stub carrying the hash it already had — so the root
    /// is bit-identical before and after.
    ///
    /// No-op without a pager. Subtrees the next block touches are
    /// resolved (promoted) back on demand by `update`/`with_delta`;
    /// the ledger re-spills after each commit.
    pub fn spill_to_budget(&mut self, budget: usize) {
        let Some(pager) = self.pager.clone() else { return };
        let budget = budget.max(1);
        // Grow the spill unit until the tree fits: larger units collapse
        // bigger subtrees into one stub each, trading colder reads for
        // a smaller resident spine.
        let mut unit = 8usize;
        while self.resident_nodes() > budget {
            let (root, _, _) = spill_node(&self.root, unit, pager.as_ref());
            self.root = root;
            if unit > self.len.saturating_mul(2).max(8) {
                break; // spine alone exceeds the budget; nothing left to spill
            }
            unit = unit.saturating_mul(4);
        }
    }
}

/// Materializes a [`Node::Paged`] stub by decoding its page; any other
/// node passes through untouched. Mutating paths call this before
/// descending, so a touched cold subtree is naturally promoted into the
/// rebuilt path while untouched siblings stay spilled.
///
/// Panics on a missing pager, an undecodable page, or a hash mismatch:
/// spill pages are derived data with no second copy, so all three are
/// unrecoverable data loss (see [`NodePager`]).
fn resolve(node: &Arc<Node>, pager: Option<&dyn NodePager>) -> Arc<Node> {
    let Node::Paged { hash, page, .. } = &**node else {
        return node.clone();
    };
    let pager = pager.expect("paged subtree reached without an attached node pager");
    let bytes = pager.load_node(*page);
    let mut r = Reader::new(&bytes);
    let resolved =
        decode_node(&mut r, 0).expect("spilled subtree page holds a valid node encoding");
    assert_eq!(r.remaining(), 0, "spilled subtree page has trailing bytes");
    assert_eq!(resolved.hash(), *hash, "spilled subtree page hash mismatch (data loss)");
    resolved
}

/// Post-order spill pass: replaces every maximal subtree whose resident
/// footprint is ≤ `unit` nodes (and which holds ≥ 2 leaves — single
/// leaves are cheaper resident than paged) with a [`Node::Paged`] stub.
/// Returns the rebuilt node, its resident node count, and its leaf
/// count. Hashes are carried, never recomputed.
fn spill_node(node: &Arc<Node>, unit: usize, pager: &dyn NodePager) -> (Arc<Node>, usize, u64) {
    match &**node {
        Node::Empty => (node.clone(), 1, 0),
        Node::Leaf { .. } => (node.clone(), 1, 1),
        Node::Paged { leaves, .. } => (node.clone(), 1, *leaves),
        Node::Internal { hash, left, right } => {
            let (left, l_res, l_leaves) = spill_node(left, unit, pager);
            let (right, r_res, r_leaves) = spill_node(right, unit, pager);
            let resident = 1 + l_res + r_res;
            let leaves = l_leaves + r_leaves;
            if resident <= unit && leaves >= 2 {
                // Encode the whole subtree (splicing any already-spilled
                // children) and push it down to one page.
                let rebuilt = Node::Internal { hash: *hash, left, right };
                let mut bytes = Vec::new();
                encode_node(&rebuilt, &mut bytes, Some(pager));
                let page = pager.store_node(&bytes);
                (Arc::new(Node::Paged { hash: *hash, leaves, page }), 1, leaves)
            } else {
                (Arc::new(Node::Internal { hash: *hash, left, right }), resident, leaves)
            }
        }
    }
}

/// Returns the updated subtree and whether the key was already present.
fn insert_at(
    node: &Arc<Node>,
    depth: usize,
    key_hash: Hash256,
    value_hash: Hash256,
    pager: Option<&dyn NodePager>,
) -> (Arc<Node>, bool) {
    let node = resolve(node, pager);
    match &*node {
        Node::Empty => (Arc::new(Node::leaf(key_hash, value_hash)), false),
        Node::Leaf {
            key_hash: leaf_kh,
            value_hash: leaf_vh,
            ..
        } => {
            if *leaf_kh == key_hash {
                if *leaf_vh == value_hash {
                    (node.clone(), true)
                } else {
                    (Arc::new(Node::leaf(key_hash, value_hash)), true)
                }
            } else {
                (
                    split_leaves(depth, node.clone(), *leaf_kh, key_hash, value_hash),
                    false,
                )
            }
        }
        Node::Internal { left, right, .. } => {
            if leaf::key_bit(&key_hash, depth) {
                let (new_right, present) =
                    insert_at(right, depth + 1, key_hash, value_hash, pager);
                (
                    Arc::new(Node::internal(left.clone(), new_right)),
                    present,
                )
            } else {
                let (new_left, present) =
                    insert_at(left, depth + 1, key_hash, value_hash, pager);
                (
                    Arc::new(Node::internal(new_left, right.clone())),
                    present,
                )
            }
        }
        Node::Paged { .. } => unreachable!("resolved above"),
    }
}

/// Replaces a single-leaf subtree at `depth` with the minimal internal
/// chain separating the existing leaf from a new one: internals with an
/// empty sibling down to the first differing key-hash bit, then a node
/// with both leaves as children.
fn split_leaves(
    depth: usize,
    existing: Arc<Node>,
    existing_kh: Hash256,
    key_hash: Hash256,
    value_hash: Hash256,
) -> Arc<Node> {
    let mut fork = depth;
    while leaf::key_bit(&existing_kh, fork) == leaf::key_bit(&key_hash, fork) {
        fork += 1;
        assert!(fork < MAX_DEPTH, "distinct leaf keys share all 256 path bits");
    }
    let new_leaf = Arc::new(Node::leaf(key_hash, value_hash));
    let (left, right) = if leaf::key_bit(&key_hash, fork) {
        (existing, new_leaf)
    } else {
        (new_leaf, existing)
    };
    let mut node = Arc::new(Node::internal(left, right));
    for level in (depth..fork).rev() {
        node = Arc::new(if leaf::key_bit(&key_hash, level) {
            Node::internal(Arc::new(Node::Empty), node)
        } else {
            Node::internal(node, Arc::new(Node::Empty))
        });
    }
    node
}

/// Returns the updated subtree and whether a leaf was removed. Restores
/// canonical form on the way back up: an internal node left with a
/// single leaf child collapses to that leaf.
fn remove_at(
    node: &Arc<Node>,
    depth: usize,
    key_hash: &Hash256,
    pager: Option<&dyn NodePager>,
) -> (Arc<Node>, bool) {
    let node = resolve(node, pager);
    match &*node {
        Node::Empty => (node.clone(), false),
        Node::Leaf { key_hash: leaf_kh, .. } => {
            if leaf_kh == key_hash {
                (Arc::new(Node::Empty), true)
            } else {
                (node.clone(), false)
            }
        }
        Node::Internal { left, right, .. } => {
            let (new_left, new_right, removed) = if leaf::key_bit(key_hash, depth) {
                let (nr, removed) = remove_at(right, depth + 1, key_hash, pager);
                (left.clone(), nr, removed)
            } else {
                let (nl, removed) = remove_at(left, depth + 1, key_hash, pager);
                (nl, right.clone(), removed)
            };
            if !removed {
                return (node.clone(), false);
            }
            // A `Paged` sibling always holds ≥ 2 leaves (spill policy),
            // so it can only appear in the no-collapse arm — same as the
            // internal node it stands for.
            let collapsed = match (&*new_left, &*new_right) {
                (Node::Empty, Node::Leaf { .. }) => new_right,
                (Node::Leaf { .. }, Node::Empty) => new_left,
                (Node::Empty, Node::Empty) => Arc::new(Node::Empty),
                _ => Arc::new(Node::internal(new_left, new_right)),
            };
            (collapsed, true)
        }
        Node::Paged { .. } => unreachable!("resolved above"),
    }
}

/// Flattens a committed [`StateDelta`] into `(leaf key, new value)`
/// updates, where `None` deletes the leaf. This is the single bridge
/// between the execution layer's delta vocabulary and the tree: storage
/// tombstones and cleared locks delete, every other component upserts
/// (accounts, code, anchors, cross-links, and decisions are never
/// removed from state).
pub fn delta_updates(delta: &StateDelta) -> Vec<(LeafKey, Option<Vec<u8>>)> {
    let mut updates = Vec::new();
    for (addr, account) in &delta.accounts {
        updates.push((LeafKey::Account(*addr), Some(account.encoded())));
    }
    for ((contract, key), value) in &delta.storage {
        updates.push((LeafKey::Storage(*contract, key.clone()), value.clone()));
    }
    for (contract, code) in &delta.code {
        updates.push((LeafKey::Code(*contract), Some(code.clone())));
    }
    for (label, root) in &delta.anchors {
        updates.push((LeafKey::Anchor(label.clone()), Some(root.0.to_vec())));
    }
    for (shard, link) in &delta.crosslinks {
        updates.push((LeafKey::CrossLink(*shard), Some(link.encoded())));
    }
    for (addr, lock) in &delta.locks {
        updates.push((LeafKey::Lock(*addr), lock.as_ref().map(|l| l.encoded())));
    }
    for (xid, decision) in &delta.xs_decisions {
        updates.push((LeafKey::XsDecision(*xid), Some(decision.encoded())));
    }
    updates
}

fn audit_node(
    node: &Arc<Node>,
    depth: usize,
    path: &mut Vec<u8>,
    leaves: &mut usize,
    pager: Option<&dyn NodePager>,
) -> bool {
    if depth > MAX_DEPTH {
        return false;
    }
    // Resolve a spilled subtree transiently; `resolve` itself asserts
    // the decoded subtree hashes to the resident stub's hash.
    let node = resolve(node, pager);
    match &*node {
        Node::Paged { .. } => unreachable!("resolved above"),
        Node::Empty => depth == 0, // non-root empties violate canonical form
        Node::Leaf {
            hash,
            key_hash,
            value_hash,
        } => {
            // Hash integrity + the leaf actually lives under its path.
            if *hash != leaf::leaf_hash(key_hash, value_hash) {
                return false;
            }
            for (level, bit) in path.iter().enumerate() {
                if leaf::key_bit(key_hash, level) != (*bit == 1) {
                    return false;
                }
            }
            *leaves += 1;
            true
        }
        Node::Internal { hash, left, right } => {
            if *hash != leaf::node_hash(&left.hash(), &right.hash()) {
                return false;
            }
            // Canonical form: no empty+leaf pairs, no empty+empty.
            match (&**left, &**right) {
                (Node::Empty, Node::Empty)
                | (Node::Empty, Node::Leaf { .. })
                | (Node::Leaf { .. }, Node::Empty) => return false,
                _ => {}
            }
            let ok_left = {
                path.push(0);
                let ok = matches!(&**left, Node::Empty)
                    || audit_node(left, depth + 1, path, leaves, pager);
                path.pop();
                ok
            };
            let ok_right = {
                path.push(1);
                let ok = matches!(&**right, Node::Empty)
                    || audit_node(right, depth + 1, path, leaves, pager);
                path.pop();
                ok
            };
            ok_left && ok_right
        }
    }
}

// Snapshot persistence: the tree serializes preorder with its cached
// hashes, so decoding rebuilds the root without a single hash
// computation — that is what lets recovery skip the full state rehash.
const TAG_EMPTY: u8 = 0;
const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;

fn encode_node(node: &Node, out: &mut Vec<u8>, pager: Option<&dyn NodePager>) {
    match node {
        Node::Empty => out.push(TAG_EMPTY),
        Node::Leaf {
            hash,
            key_hash,
            value_hash,
        } => {
            out.push(TAG_LEAF);
            hash.encode(out);
            key_hash.encode(out);
            value_hash.encode(out);
        }
        Node::Internal { hash, left, right } => {
            out.push(TAG_INTERNAL);
            hash.encode(out);
            encode_node(left, out, pager);
            encode_node(right, out, pager);
        }
        // A spilled page *is* the subtree's preorder encoding: splice it
        // verbatim, so a paged tree serializes byte-identically to a
        // fully resident one (there is no on-disk `Paged` tag).
        Node::Paged { page, .. } => {
            let pager = pager.expect("paged subtree encoded without an attached node pager");
            out.extend_from_slice(&pager.load_node(*page));
        }
    }
}

fn decode_node(r: &mut Reader<'_>, depth: usize) -> Result<Arc<Node>, CodecError> {
    match u8::decode(r)? {
        TAG_EMPTY => Ok(Arc::new(Node::Empty)),
        TAG_LEAF => Ok(Arc::new(Node::Leaf {
            hash: Hash256::decode(r)?,
            key_hash: Hash256::decode(r)?,
            value_hash: Hash256::decode(r)?,
        })),
        // Deeper than the key width means corrupt input; erroring here
        // also bounds decode recursion against hostile bytes.
        TAG_INTERNAL if depth >= MAX_DEPTH => Err(CodecError::InvalidTag {
            ty: "StateTree (node deeper than key width)",
            tag: TAG_INTERNAL,
        }),
        TAG_INTERNAL => {
            let hash = Hash256::decode(r)?;
            let left = decode_node(r, depth + 1)?;
            let right = decode_node(r, depth + 1)?;
            Ok(Arc::new(Node::Internal { hash, left, right }))
        }
        tag => Err(CodecError::InvalidTag {
            ty: "StateTree",
            tag,
        }),
    }
}

impl Encode for StateTree {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len as u64).encode(out);
        encode_node(&self.root, out, self.pager.as_deref());
    }
}

impl Decode for StateTree {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = u64::decode(r)? as usize;
        let root = decode_node(r, 0)?;
        // Decoded trees start fully resident and unpaged; recovery
        // re-attaches a pager (and re-spills) after install.
        Ok(StateTree { root, len, pager: None })
    }
}

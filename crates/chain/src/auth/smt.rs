//! Persistent (copy-on-write) sparse Merkle tree over the state leaves.
//!
//! The tree is the compact variant: an empty subtree hashes to
//! [`EMPTY_SUBTREE`](super::leaf::EMPTY_SUBTREE) and a subtree holding a
//! single leaf hashes to the leaf itself, so depth is O(log n) in the
//! number of leaves rather than a fixed 256. Nodes are `Arc`-shared:
//! updating one leaf clones only the path from the root to that leaf
//! (~log n allocations), which is what makes per-block root maintenance
//! O(keys changed) while older tree versions stay readable for free.
//!
//! Canonical-form invariant: an internal node never has an empty child
//! paired with a leaf child (such a node collapses to the leaf) and never
//! has two empty children. Deleting a key therefore restores the exact
//! root the tree had before the key was inserted.

use std::sync::Arc;

use super::leaf::{self, LeafKey, EMPTY_SUBTREE};
use super::{ProofTerminal, SmtProof};
use crate::exec::StateDelta;
use crate::hash::Hash256;
use crate::ledger::WorldState;
use medchain_runtime::codec::{CodecError, Decode, Encode, Reader};

/// Hard ceiling on node depth: key hashes are 256 bits, so two distinct
/// keys must diverge by depth 256; anything deeper is corrupt data.
const MAX_DEPTH: usize = 256;

/// One node of the tree. Hashes are computed eagerly on construction and
/// cached, so reads never hash.
enum Node {
    /// An empty subtree (hash [`EMPTY_SUBTREE`]).
    Empty,
    /// A subtree holding exactly one leaf; hashes as the leaf itself.
    Leaf {
        hash: Hash256,
        key_hash: Hash256,
        value_hash: Hash256,
    },
    /// A subtree holding two or more leaves.
    Internal {
        hash: Hash256,
        left: Arc<Node>,
        right: Arc<Node>,
    },
}

impl Node {
    fn hash(&self) -> Hash256 {
        match self {
            Node::Empty => EMPTY_SUBTREE,
            Node::Leaf { hash, .. } | Node::Internal { hash, .. } => *hash,
        }
    }

    fn leaf(key_hash: Hash256, value_hash: Hash256) -> Node {
        Node::Leaf {
            hash: leaf::leaf_hash(&key_hash, &value_hash),
            key_hash,
            value_hash,
        }
    }

    fn internal(left: Arc<Node>, right: Arc<Node>) -> Node {
        Node::Internal {
            hash: leaf::node_hash(&left.hash(), &right.hash()),
            left,
            right,
        }
    }
}

/// The authenticated index of a [`WorldState`]: one leaf per state
/// entry, rooted in the block header via
/// [`versioned_root`](StateTree::versioned_root).
///
/// Cloning is O(1) (an `Arc` bump); the clone is an immutable snapshot
/// unaffected by later [`update`](StateTree::update) calls on either
/// copy.
#[derive(Clone)]
pub struct StateTree {
    root: Arc<Node>,
    len: usize,
}

impl Default for StateTree {
    fn default() -> Self {
        StateTree::new()
    }
}

impl std::fmt::Debug for StateTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateTree")
            .field("len", &self.len)
            .field("root", &self.root.hash())
            .finish()
    }
}

impl PartialEq for StateTree {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.root.hash() == other.root.hash()
    }
}

impl Eq for StateTree {}

impl StateTree {
    /// The empty tree (root commits to zero leaves).
    pub fn new() -> StateTree {
        StateTree {
            root: Arc::new(Node::Empty),
            len: 0,
        }
    }

    /// Builds the tree for an entire world state from scratch. This is
    /// the O(total state) reference path — the ledger calls it once per
    /// process (on construction or recovery), then maintains the tree
    /// incrementally via [`with_delta`](StateTree::with_delta).
    pub fn from_state(state: &WorldState) -> StateTree {
        let mut tree = StateTree::new();
        state.for_each_leaf(&mut |key, value| tree.update(&key, Some(value)));
        tree
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw sparse-Merkle-tree root.
    pub fn root(&self) -> Hash256 {
        self.root.hash()
    }

    /// The version-tagged root committed into `Header.state_root`.
    pub fn versioned_root(&self) -> Hash256 {
        leaf::versioned_root(&self.root())
    }

    /// Sets (`Some`) or deletes (`None`) one leaf, rebuilding only the
    /// root-to-leaf path.
    pub fn update(&mut self, key: &LeafKey, value: Option<&[u8]>) {
        let key_hash = leaf::key_hash(key);
        match value {
            Some(value) => {
                let value_hash = leaf::value_hash(value);
                let (root, was_present) = insert_at(&self.root, 0, key_hash, value_hash);
                self.root = root;
                if !was_present {
                    self.len += 1;
                }
            }
            None => {
                let (root, removed) = remove_at(&self.root, 0, &key_hash);
                self.root = root;
                if removed {
                    self.len -= 1;
                }
            }
        }
    }

    /// The tree after applying a committed block's [`StateDelta`]:
    /// tombstoned storage slots and cleared locks become deletions,
    /// everything else an upsert. Cost is O(keys changed · log n); the
    /// receiver is untouched.
    pub fn with_delta(&self, delta: &StateDelta) -> StateTree {
        let mut tree = self.clone();
        for (key, value) in delta_updates(delta) {
            tree.update(&key, value.as_deref());
        }
        tree
    }

    /// Merkle path for `key` against the current root, usable both to
    /// prove inclusion (the stored value) and absence (no leaf under
    /// this key). Pair it with the leaf's canonical value bytes in a
    /// [`StateProof`](super::StateProof).
    pub fn prove(&self, key: &LeafKey) -> SmtProof {
        let key_hash = leaf::key_hash(key);
        let mut siblings = Vec::new();
        let mut node = &self.root;
        let mut depth = 0;
        loop {
            match &**node {
                Node::Empty => {
                    return SmtProof {
                        siblings,
                        terminal: ProofTerminal::Empty,
                    }
                }
                Node::Leaf {
                    key_hash: leaf_kh,
                    value_hash,
                    ..
                } => {
                    let terminal = if *leaf_kh == key_hash {
                        ProofTerminal::Leaf {
                            value_hash: *value_hash,
                        }
                    } else {
                        // A different leaf occupies the queried key's
                        // path prefix: proof of absence.
                        ProofTerminal::OtherLeaf {
                            key_hash: *leaf_kh,
                            value_hash: *value_hash,
                        }
                    };
                    return SmtProof { siblings, terminal };
                }
                Node::Internal { left, right, .. } => {
                    if leaf::key_bit(&key_hash, depth) {
                        siblings.push(left.hash());
                        node = right;
                    } else {
                        siblings.push(right.hash());
                        node = left;
                    }
                    depth += 1;
                }
            }
        }
    }

    /// Full structural self-check (recomputes every hash, verifies the
    /// canonical-form invariant, leaf paths, and the leaf count).
    /// O(total state) — test and debugging aid only.
    pub fn audit(&self) -> bool {
        let mut leaves = 0usize;
        audit_node(&self.root, 0, &mut Vec::new(), &mut leaves) && leaves == self.len
    }
}

/// Returns the updated subtree and whether the key was already present.
fn insert_at(
    node: &Arc<Node>,
    depth: usize,
    key_hash: Hash256,
    value_hash: Hash256,
) -> (Arc<Node>, bool) {
    match &**node {
        Node::Empty => (Arc::new(Node::leaf(key_hash, value_hash)), false),
        Node::Leaf {
            key_hash: leaf_kh,
            value_hash: leaf_vh,
            ..
        } => {
            if *leaf_kh == key_hash {
                if *leaf_vh == value_hash {
                    (node.clone(), true)
                } else {
                    (Arc::new(Node::leaf(key_hash, value_hash)), true)
                }
            } else {
                (
                    split_leaves(depth, node.clone(), *leaf_kh, key_hash, value_hash),
                    false,
                )
            }
        }
        Node::Internal { left, right, .. } => {
            if leaf::key_bit(&key_hash, depth) {
                let (new_right, present) = insert_at(right, depth + 1, key_hash, value_hash);
                (
                    Arc::new(Node::internal(left.clone(), new_right)),
                    present,
                )
            } else {
                let (new_left, present) = insert_at(left, depth + 1, key_hash, value_hash);
                (
                    Arc::new(Node::internal(new_left, right.clone())),
                    present,
                )
            }
        }
    }
}

/// Replaces a single-leaf subtree at `depth` with the minimal internal
/// chain separating the existing leaf from a new one: internals with an
/// empty sibling down to the first differing key-hash bit, then a node
/// with both leaves as children.
fn split_leaves(
    depth: usize,
    existing: Arc<Node>,
    existing_kh: Hash256,
    key_hash: Hash256,
    value_hash: Hash256,
) -> Arc<Node> {
    let mut fork = depth;
    while leaf::key_bit(&existing_kh, fork) == leaf::key_bit(&key_hash, fork) {
        fork += 1;
        assert!(fork < MAX_DEPTH, "distinct leaf keys share all 256 path bits");
    }
    let new_leaf = Arc::new(Node::leaf(key_hash, value_hash));
    let (left, right) = if leaf::key_bit(&key_hash, fork) {
        (existing, new_leaf)
    } else {
        (new_leaf, existing)
    };
    let mut node = Arc::new(Node::internal(left, right));
    for level in (depth..fork).rev() {
        node = Arc::new(if leaf::key_bit(&key_hash, level) {
            Node::internal(Arc::new(Node::Empty), node)
        } else {
            Node::internal(node, Arc::new(Node::Empty))
        });
    }
    node
}

/// Returns the updated subtree and whether a leaf was removed. Restores
/// canonical form on the way back up: an internal node left with a
/// single leaf child collapses to that leaf.
fn remove_at(node: &Arc<Node>, depth: usize, key_hash: &Hash256) -> (Arc<Node>, bool) {
    match &**node {
        Node::Empty => (node.clone(), false),
        Node::Leaf { key_hash: leaf_kh, .. } => {
            if leaf_kh == key_hash {
                (Arc::new(Node::Empty), true)
            } else {
                (node.clone(), false)
            }
        }
        Node::Internal { left, right, .. } => {
            let (new_left, new_right, removed) = if leaf::key_bit(key_hash, depth) {
                let (nr, removed) = remove_at(right, depth + 1, key_hash);
                (left.clone(), nr, removed)
            } else {
                let (nl, removed) = remove_at(left, depth + 1, key_hash);
                (nl, right.clone(), removed)
            };
            if !removed {
                return (node.clone(), false);
            }
            let collapsed = match (&*new_left, &*new_right) {
                (Node::Empty, Node::Leaf { .. }) => new_right,
                (Node::Leaf { .. }, Node::Empty) => new_left,
                (Node::Empty, Node::Empty) => Arc::new(Node::Empty),
                _ => Arc::new(Node::internal(new_left, new_right)),
            };
            (collapsed, true)
        }
    }
}

/// Flattens a committed [`StateDelta`] into `(leaf key, new value)`
/// updates, where `None` deletes the leaf. This is the single bridge
/// between the execution layer's delta vocabulary and the tree: storage
/// tombstones and cleared locks delete, every other component upserts
/// (accounts, code, anchors, cross-links, and decisions are never
/// removed from state).
pub fn delta_updates(delta: &StateDelta) -> Vec<(LeafKey, Option<Vec<u8>>)> {
    let mut updates = Vec::new();
    for (addr, account) in &delta.accounts {
        updates.push((LeafKey::Account(*addr), Some(account.encoded())));
    }
    for ((contract, key), value) in &delta.storage {
        updates.push((LeafKey::Storage(*contract, key.clone()), value.clone()));
    }
    for (contract, code) in &delta.code {
        updates.push((LeafKey::Code(*contract), Some(code.clone())));
    }
    for (label, root) in &delta.anchors {
        updates.push((LeafKey::Anchor(label.clone()), Some(root.0.to_vec())));
    }
    for (shard, link) in &delta.crosslinks {
        updates.push((LeafKey::CrossLink(*shard), Some(link.encoded())));
    }
    for (addr, lock) in &delta.locks {
        updates.push((LeafKey::Lock(*addr), lock.as_ref().map(|l| l.encoded())));
    }
    for (xid, decision) in &delta.xs_decisions {
        updates.push((LeafKey::XsDecision(*xid), Some(decision.encoded())));
    }
    updates
}

fn audit_node(node: &Arc<Node>, depth: usize, path: &mut Vec<u8>, leaves: &mut usize) -> bool {
    if depth > MAX_DEPTH {
        return false;
    }
    match &**node {
        Node::Empty => depth == 0, // non-root empties violate canonical form
        Node::Leaf {
            hash,
            key_hash,
            value_hash,
        } => {
            // Hash integrity + the leaf actually lives under its path.
            if *hash != leaf::leaf_hash(key_hash, value_hash) {
                return false;
            }
            for (level, bit) in path.iter().enumerate() {
                if leaf::key_bit(key_hash, level) != (*bit == 1) {
                    return false;
                }
            }
            *leaves += 1;
            true
        }
        Node::Internal { hash, left, right } => {
            if *hash != leaf::node_hash(&left.hash(), &right.hash()) {
                return false;
            }
            // Canonical form: no empty+leaf pairs, no empty+empty.
            match (&**left, &**right) {
                (Node::Empty, Node::Empty)
                | (Node::Empty, Node::Leaf { .. })
                | (Node::Leaf { .. }, Node::Empty) => return false,
                _ => {}
            }
            let ok_left = {
                path.push(0);
                let ok = matches!(&**left, Node::Empty) || audit_node(left, depth + 1, path, leaves);
                path.pop();
                ok
            };
            let ok_right = {
                path.push(1);
                let ok =
                    matches!(&**right, Node::Empty) || audit_node(right, depth + 1, path, leaves);
                path.pop();
                ok
            };
            ok_left && ok_right
        }
    }
}

// Snapshot persistence: the tree serializes preorder with its cached
// hashes, so decoding rebuilds the root without a single hash
// computation — that is what lets recovery skip the full state rehash.
const TAG_EMPTY: u8 = 0;
const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;

fn encode_node(node: &Node, out: &mut Vec<u8>) {
    match node {
        Node::Empty => out.push(TAG_EMPTY),
        Node::Leaf {
            hash,
            key_hash,
            value_hash,
        } => {
            out.push(TAG_LEAF);
            hash.encode(out);
            key_hash.encode(out);
            value_hash.encode(out);
        }
        Node::Internal { hash, left, right } => {
            out.push(TAG_INTERNAL);
            hash.encode(out);
            encode_node(left, out);
            encode_node(right, out);
        }
    }
}

fn decode_node(r: &mut Reader<'_>, depth: usize) -> Result<Arc<Node>, CodecError> {
    match u8::decode(r)? {
        TAG_EMPTY => Ok(Arc::new(Node::Empty)),
        TAG_LEAF => Ok(Arc::new(Node::Leaf {
            hash: Hash256::decode(r)?,
            key_hash: Hash256::decode(r)?,
            value_hash: Hash256::decode(r)?,
        })),
        // Deeper than the key width means corrupt input; erroring here
        // also bounds decode recursion against hostile bytes.
        TAG_INTERNAL if depth >= MAX_DEPTH => Err(CodecError::InvalidTag {
            ty: "StateTree (node deeper than key width)",
            tag: TAG_INTERNAL,
        }),
        TAG_INTERNAL => {
            let hash = Hash256::decode(r)?;
            let left = decode_node(r, depth + 1)?;
            let right = decode_node(r, depth + 1)?;
            Ok(Arc::new(Node::Internal { hash, left, right }))
        }
        tag => Err(CodecError::InvalidTag {
            ty: "StateTree",
            tag,
        }),
    }
}

impl Encode for StateTree {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len as u64).encode(out);
        encode_node(&self.root, out);
    }
}

impl Decode for StateTree {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = u64::decode(r)? as usize;
        let root = decode_node(r, 0)?;
        Ok(StateTree { root, len })
    }
}

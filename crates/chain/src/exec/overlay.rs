//! Buffered world-state access: the overlay commit cache.
//!
//! [`StateAccess`] is the uniform read/write surface over
//! [`WorldState`]: the ledger, the contract runtime, and the VM all
//! mutate state through it, never through the maps directly. That
//! indirection is what makes block execution cheap to speculate:
//! a [`WorldStateOverlay`] implements the same trait with reads falling
//! through to a base and writes buffered in a [`StateDelta`], so
//!
//! - sequential apply runs a whole block against one overlay and
//!   commits the delta only after the state-root check passes (no more
//!   whole-state clone per block);
//! - contract atomicity is a *child* overlay discarded on trap (no more
//!   whole-state snapshot per `Deploy`/`Invoke`);
//! - parallel apply gives every transaction its own recording overlay
//!   over the shared block overlay, audits the recorded footprint
//!   against the declared read/write set, and commits deltas in
//!   deterministic tx order (DESIGN.md §11).
//!
//! Deletion semantics mirror [`WorldState::set_storage`]: an empty
//! value is a delete, buffered here as a `None` tombstone so the delta
//! replays identically onto any base.

use super::read_write_set::StateKey;
use crate::hash::Hash256;
use crate::ledger::{Account, CrossLinkRecord, LedgerError, XsDecisionRecord, XsLock};
use crate::shard::ShardId;
use crate::sig::Address;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

/// Uniform mutable access to world state.
///
/// Implemented by [`WorldState`] itself (direct map access) and by
/// [`WorldStateOverlay`] (buffered). During block application all
/// mutation flows through this trait — verify.sh greps that nothing
/// outside `exec/` and the ledger commit path touches the maps.
pub trait StateAccess: Send + Sync {
    /// Returns the account for `addr` (default if absent).
    fn account(&self, addr: &Address) -> Account;
    /// Installs `account` at `addr` (materializes the entry even when
    /// default-valued — entry presence is root-visible).
    fn set_account(&mut self, addr: Address, account: Account);
    /// Reads a contract storage slot.
    fn storage(&self, contract: &Address, key: &[u8]) -> Option<&[u8]>;
    /// Writes a contract storage slot (empty value deletes).
    fn set_storage(&mut self, contract: Address, key: Vec<u8>, value: Vec<u8>);
    /// Returns deployed code at `addr`.
    fn code(&self, addr: &Address) -> Option<&[u8]>;
    /// Installs contract code.
    fn set_code(&mut self, addr: Address, code: Vec<u8>);
    /// Looks up a data anchor by label.
    fn anchor(&self, label: &str) -> Option<Hash256>;
    /// Records a data anchor.
    fn set_anchor(&mut self, label: &str, root: Hash256);
    /// The newest cross-link recorded for `shard`.
    fn cross_link(&self, shard: ShardId) -> Option<CrossLinkRecord>;
    /// Records a cross-link.
    fn set_cross_link(&mut self, shard: ShardId, record: CrossLinkRecord);
    /// The 2PC lock held on `addr`, if any (DESIGN.md §12).
    fn lock(&self, addr: &Address) -> Option<XsLock>;
    /// Places a 2PC lock on `addr`.
    fn set_lock(&mut self, addr: Address, lock: XsLock);
    /// Releases the 2PC lock on `addr`.
    fn clear_lock(&mut self, addr: &Address);
    /// The coordinator's recorded decision for `xid`, if any.
    fn xs_decision(&self, xid: &Hash256) -> Option<XsDecisionRecord>;
    /// Records a cross-shard commit/abort decision.
    fn set_xs_decision(&mut self, xid: Hash256, decision: XsDecisionRecord);

    /// Credits `amount` to `addr`, materializing the entry.
    fn credit(&mut self, addr: Address, amount: u64) {
        let mut account = self.account(&addr);
        account.balance += amount;
        self.set_account(addr, account);
    }

    /// Debits `amount` from `addr`.
    ///
    /// Like [`WorldState::debit`], the account entry is materialized
    /// even when the debit fails — byte-compatible state roots depend
    /// on it.
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::InsufficientBalance`] if funds are missing.
    fn debit(&mut self, addr: Address, amount: u64) -> Result<(), LedgerError> {
        let mut account = self.account(&addr);
        if account.balance < amount {
            let have = account.balance;
            self.set_account(addr, account);
            return Err(LedgerError::InsufficientBalance { address: addr, have, need: amount });
        }
        account.balance -= amount;
        self.set_account(addr, account);
        Ok(())
    }
}

/// The buffered writes of one overlay: everything needed to replay its
/// effects onto the base, in map order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateDelta {
    pub(crate) accounts: BTreeMap<Address, Account>,
    /// `None` is a deletion tombstone (empty-value `set_storage`).
    pub(crate) storage: BTreeMap<(Address, Vec<u8>), Option<Vec<u8>>>,
    pub(crate) code: BTreeMap<Address, Vec<u8>>,
    pub(crate) anchors: BTreeMap<String, Hash256>,
    pub(crate) crosslinks: BTreeMap<u16, CrossLinkRecord>,
    /// `None` is a release tombstone (a finalize dropped the lock).
    pub(crate) locks: BTreeMap<Address, Option<XsLock>>,
    pub(crate) xs_decisions: BTreeMap<Hash256, XsDecisionRecord>,
}

impl StateDelta {
    /// Whether the delta buffers no writes at all.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
            && self.storage.is_empty()
            && self.code.is_empty()
            && self.anchors.is_empty()
            && self.crosslinks.is_empty()
            && self.locks.is_empty()
            && self.xs_decisions.is_empty()
    }

    /// Number of buffered entries across all maps.
    pub fn len(&self) -> usize {
        self.accounts.len()
            + self.storage.len()
            + self.code.len()
            + self.anchors.len()
            + self.crosslinks.len()
            + self.locks.len()
            + self.xs_decisions.len()
    }

    /// The [`StateKey`]s this delta writes — what the parallel executor
    /// audits against the declared write set.
    pub fn write_keys(&self) -> BTreeSet<StateKey> {
        let mut keys = BTreeSet::new();
        for addr in self.accounts.keys() {
            keys.insert(StateKey::Account(*addr));
        }
        for (addr, _) in self.storage.keys() {
            keys.insert(StateKey::Contract(*addr));
        }
        for addr in self.code.keys() {
            keys.insert(StateKey::Contract(*addr));
        }
        for label in self.anchors.keys() {
            keys.insert(StateKey::Anchor(label.clone()));
        }
        for shard in self.crosslinks.keys() {
            keys.insert(StateKey::CrossLink(*shard));
        }
        // A lock is account-scoped state: scheduling under the account
        // key keeps 2PC writes ordered against transfers on the same
        // account without a second conflict dimension.
        for addr in self.locks.keys() {
            keys.insert(StateKey::Account(*addr));
        }
        for xid in self.xs_decisions.keys() {
            keys.insert(StateKey::XsDecision(*xid));
        }
        keys
    }

    /// Replays the buffered writes onto `target` — the single commit
    /// path by which speculative execution reaches real state.
    pub fn apply_to(self, target: &mut dyn StateAccess) {
        for (addr, account) in self.accounts {
            target.set_account(addr, account);
        }
        for ((addr, key), value) in self.storage {
            // A tombstone replays as the empty-value delete.
            target.set_storage(addr, key, value.unwrap_or_default());
        }
        for (addr, code) in self.code {
            target.set_code(addr, code);
        }
        for (label, root) in self.anchors {
            target.set_anchor(&label, root);
        }
        for (shard, record) in self.crosslinks {
            target.set_cross_link(ShardId(shard), record);
        }
        for (addr, lock) in self.locks {
            match lock {
                Some(lock) => target.set_lock(addr, lock),
                None => target.clear_lock(&addr),
            }
        }
        for (xid, decision) in self.xs_decisions {
            target.set_xs_decision(xid, decision);
        }
    }
}

/// A copy-on-write view over any [`StateAccess`] base: reads fall
/// through, writes buffer in a [`StateDelta`]. Dropping the overlay
/// discards the speculation; [`WorldStateOverlay::into_delta`] extracts
/// it for commit.
///
/// Overlays chain: a per-transaction overlay sits on the shared block
/// overlay, and contract execution gets a further child for trap
/// atomicity. With [`WorldStateOverlay::recording`] enabled, every read
/// is logged as a [`StateKey`] so the executor can audit the actual
/// footprint against the declared one.
pub struct WorldStateOverlay<'a> {
    base: &'a dyn StateAccess,
    delta: StateDelta,
    read_log: Option<Mutex<BTreeSet<StateKey>>>,
}

impl<'a> WorldStateOverlay<'a> {
    /// Creates an overlay over `base` with read recording off.
    pub fn new(base: &'a dyn StateAccess) -> WorldStateOverlay<'a> {
        WorldStateOverlay { base, delta: StateDelta::default(), read_log: None }
    }

    /// Enables read recording (builder style).
    pub fn recording(mut self) -> WorldStateOverlay<'a> {
        self.read_log = Some(Mutex::new(BTreeSet::new()));
        self
    }

    /// The buffered writes so far (borrowing inspection).
    pub fn delta(&self) -> &StateDelta {
        &self.delta
    }

    /// Consumes the overlay, returning its buffered writes.
    pub fn into_delta(self) -> StateDelta {
        self.delta
    }

    /// Consumes the overlay, returning buffered writes plus the
    /// recorded read footprint (empty when recording was off).
    pub fn into_parts(self) -> (StateDelta, BTreeSet<StateKey>) {
        let reads = self
            .read_log
            .map(|log| log.into_inner().expect("read log poisoned"))
            .unwrap_or_default();
        (self.delta, reads)
    }

    fn record(&self, key: StateKey) {
        if let Some(log) = &self.read_log {
            log.lock().expect("read log poisoned").insert(key);
        }
    }
}

impl StateAccess for WorldStateOverlay<'_> {
    fn account(&self, addr: &Address) -> Account {
        self.record(StateKey::Account(*addr));
        match self.delta.accounts.get(addr) {
            Some(account) => *account,
            None => self.base.account(addr),
        }
    }

    fn set_account(&mut self, addr: Address, account: Account) {
        self.delta.accounts.insert(addr, account);
    }

    fn storage(&self, contract: &Address, key: &[u8]) -> Option<&[u8]> {
        self.record(StateKey::Contract(*contract));
        match self.delta.storage.get(&(*contract, key.to_vec())) {
            Some(Some(value)) => Some(value.as_slice()),
            Some(None) => None, // deleted in this overlay
            None => self.base.storage(contract, key),
        }
    }

    fn set_storage(&mut self, contract: Address, key: Vec<u8>, value: Vec<u8>) {
        let buffered = if value.is_empty() { None } else { Some(value) };
        self.delta.storage.insert((contract, key), buffered);
    }

    fn code(&self, addr: &Address) -> Option<&[u8]> {
        self.record(StateKey::Contract(*addr));
        match self.delta.code.get(addr) {
            Some(code) => Some(code.as_slice()),
            None => self.base.code(addr),
        }
    }

    fn set_code(&mut self, addr: Address, code: Vec<u8>) {
        self.delta.code.insert(addr, code);
    }

    fn anchor(&self, label: &str) -> Option<Hash256> {
        self.record(StateKey::Anchor(label.to_string()));
        match self.delta.anchors.get(label) {
            Some(root) => Some(*root),
            None => self.base.anchor(label),
        }
    }

    fn set_anchor(&mut self, label: &str, root: Hash256) {
        self.delta.anchors.insert(label.to_string(), root);
    }

    fn cross_link(&self, shard: ShardId) -> Option<CrossLinkRecord> {
        self.record(StateKey::CrossLink(shard.0));
        match self.delta.crosslinks.get(&shard.0) {
            Some(record) => Some(*record),
            None => self.base.cross_link(shard),
        }
    }

    fn set_cross_link(&mut self, shard: ShardId, record: CrossLinkRecord) {
        self.delta.crosslinks.insert(shard.0, record);
    }

    fn lock(&self, addr: &Address) -> Option<XsLock> {
        // Lock state is account-scoped: record under the account key so
        // the declared sets (which already cover touched accounts) stay
        // supersets of the actual footprint.
        self.record(StateKey::Account(*addr));
        match self.delta.locks.get(addr) {
            Some(lock) => *lock,
            None => self.base.lock(addr),
        }
    }

    fn set_lock(&mut self, addr: Address, lock: XsLock) {
        self.delta.locks.insert(addr, Some(lock));
    }

    fn clear_lock(&mut self, addr: &Address) {
        self.delta.locks.insert(*addr, None);
    }

    fn xs_decision(&self, xid: &Hash256) -> Option<XsDecisionRecord> {
        self.record(StateKey::XsDecision(*xid));
        match self.delta.xs_decisions.get(xid) {
            Some(decision) => Some(*decision),
            None => self.base.xs_decision(xid),
        }
    }

    fn set_xs_decision(&mut self, xid: Hash256, decision: XsDecisionRecord) {
        self.delta.xs_decisions.insert(xid, decision);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::WorldState;

    #[test]
    fn reads_fall_through_and_writes_buffer() {
        let mut base = WorldState::new();
        let a = Address::from_seed(1);
        base.credit(a, 100);
        base.set_storage(a, b"k".to_vec(), b"v".to_vec());

        let mut overlay = WorldStateOverlay::new(&base);
        assert_eq!(overlay.account(&a).balance, 100);
        assert_eq!(overlay.storage(&a, b"k"), Some(b"v".as_slice()));

        overlay.credit(a, 50);
        overlay.set_storage(a, b"k".to_vec(), b"w".to_vec());
        assert_eq!(overlay.account(&a).balance, 150);
        assert_eq!(overlay.storage(&a, b"k"), Some(b"w".as_slice()));
        // Base untouched until commit.
        assert_eq!(base.account(&a).balance, 100);
        assert_eq!(base.storage(&a, b"k"), Some(b"v".as_slice()));
    }

    #[test]
    fn empty_value_tombstone_shadows_base_and_replays_as_delete() {
        let mut base = WorldState::new();
        let a = Address::from_seed(1);
        base.set_storage(a, b"k".to_vec(), b"v".to_vec());

        let mut overlay = WorldStateOverlay::new(&base);
        overlay.set_storage(a, b"k".to_vec(), Vec::new());
        assert_eq!(overlay.storage(&a, b"k"), None, "tombstone hides the base value");

        let delta = overlay.into_delta();
        delta.apply_to(&mut base);
        assert_eq!(base.storage(&a, b"k"), None, "delete replayed onto base");
    }

    #[test]
    fn chained_overlays_commit_through_parent() {
        let mut base = WorldState::new();
        let a = Address::from_seed(1);
        base.credit(a, 10);

        let mut block = WorldStateOverlay::new(&base);
        block.credit(a, 5);
        let child_delta = {
            let mut child = WorldStateOverlay::new(&block);
            assert_eq!(child.account(&a).balance, 15, "child sees parent's buffer");
            child.credit(a, 1);
            child.into_delta()
        };
        child_delta.apply_to(&mut block);
        assert_eq!(block.account(&a).balance, 16);
        assert_eq!(base.account(&a).balance, 10);
    }

    #[test]
    fn recording_overlay_logs_read_keys() {
        let base = WorldState::new();
        let overlay = WorldStateOverlay::new(&base).recording();
        let a = Address::from_seed(1);
        let _ = overlay.account(&a);
        let _ = overlay.storage(&a, b"k");
        let _ = overlay.anchor("lbl");
        let (_, reads) = overlay.into_parts();
        assert!(reads.contains(&StateKey::Account(a)));
        assert!(reads.contains(&StateKey::Contract(a)));
        assert!(reads.contains(&StateKey::Anchor("lbl".into())));
    }

    #[test]
    fn failed_debit_materializes_entry_like_world_state() {
        // WorldState::debit inserts a default entry on failure; the
        // overlay must replay the same, or roots diverge.
        let a = Address::from_seed(7);
        let mut direct = WorldState::new();
        let _ = direct.debit(a, 5);

        let base = WorldState::new();
        let mut overlay = WorldStateOverlay::new(&base);
        assert!(overlay.debit(a, 5).is_err());
        let mut via_overlay = base.clone();
        overlay.into_delta().apply_to(&mut via_overlay);
        assert_eq!(direct.state_root(), via_overlay.state_root());
    }
}

//! Conflict-free wave scheduling over read/write sets.
//!
//! List scheduling by levels: transaction *i* lands at
//! `level(i) = 1 + max(level(j))` over every earlier transaction *j*
//! it conflicts with (W∩W, W∩R, or R∩W on [`StateKey`]s), level 0 when
//! it conflicts with nothing before it. All transactions at one level
//! form a **wave**: within a wave no two transactions share a written
//! key, so they execute on separate cores; waves themselves run in
//! order, so every conflict edge is respected. Because a transaction's
//! level only ever depends on *earlier* transactions, committing each
//! wave's deltas in ascending tx index reproduces the sequential
//! serialization exactly (DESIGN.md §11).
//!
//! Global transactions (unbounded footprint) act as barriers: strictly
//! after everything before them, strictly before everything after, so
//! they always run alone against fully committed state.
//!
//! Complexity is O(n · s · log k) for n transactions with sets of size
//! s over k distinct keys — the per-key maps below replace the O(n²)
//! pairwise conflict scan.

use super::read_write_set::{RwSet, StateKey};
use std::collections::BTreeMap;

/// The wave plan for one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Transaction indices grouped by level, ascending within a wave.
    pub waves: Vec<Vec<usize>>,
    /// Level assigned to each transaction, by tx index.
    pub levels: Vec<usize>,
    /// Transactions pushed past level 0 by a conflict — the numerator
    /// of the `exec.conflict_rate` metric.
    pub delayed: usize,
}

impl Schedule {
    /// Fraction of transactions delayed by conflicts (0 when empty).
    pub fn conflict_rate(&self) -> f64 {
        if self.levels.is_empty() {
            0.0
        } else {
            self.delayed as f64 / self.levels.len() as f64
        }
    }

    /// Width of the widest wave.
    pub fn max_width(&self) -> usize {
        self.waves.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Builds the wave schedule for one block's inferred sets (indexed by
/// tx position in the block body).
pub fn schedule(sets: &[RwSet]) -> Schedule {
    // For each key: the highest level that wrote it / read it so far.
    let mut writer_level: BTreeMap<&StateKey, usize> = BTreeMap::new();
    let mut reader_level: BTreeMap<&StateKey, usize> = BTreeMap::new();
    // One past the level of the last global tx: a floor for everyone after.
    let mut barrier = 0usize;
    // Highest level assigned so far, if any tx was placed.
    let mut highest: Option<usize> = None;
    let mut levels = Vec::with_capacity(sets.len());
    let mut delayed = 0usize;

    for set in sets {
        let level = if set.global {
            // Conflicts with every earlier tx: one past the highest.
            highest.map_or(0, |h| h + 1)
        } else {
            let mut level = barrier;
            for key in &set.reads {
                if let Some(w) = writer_level.get(key) {
                    level = level.max(w + 1);
                }
            }
            for key in &set.writes {
                if let Some(w) = writer_level.get(key) {
                    level = level.max(w + 1);
                }
                if let Some(r) = reader_level.get(key) {
                    level = level.max(r + 1);
                }
            }
            level
        };
        if level > 0 {
            delayed += 1;
        }
        for key in &set.writes {
            writer_level
                .entry(key)
                .and_modify(|l| *l = (*l).max(level))
                .or_insert(level);
        }
        for key in &set.reads {
            reader_level
                .entry(key)
                .and_modify(|l| *l = (*l).max(level))
                .or_insert(level);
        }
        if set.global {
            // Everything after must start strictly above this tx.
            barrier = level + 1;
        }
        highest = Some(highest.map_or(level, |h| h.max(level)));
        levels.push(level);
    }

    let wave_count = highest.map_or(0, |h| h + 1);
    let mut waves = vec![Vec::new(); wave_count];
    for (index, &level) in levels.iter().enumerate() {
        waves[level].push(index);
    }
    Schedule { waves, levels, delayed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::Address;

    fn set(reads: &[u8], writes: &[u8]) -> RwSet {
        let mut s = RwSet::new();
        for &r in reads {
            s.read(StateKey::Account(Address::from_seed(r as u64)));
        }
        for &w in writes {
            s.write(StateKey::Account(Address::from_seed(w as u64)));
        }
        s
    }

    fn global() -> RwSet {
        RwSet { global: true, ..RwSet::new() }
    }

    #[test]
    fn independent_txs_share_one_wave() {
        let sched = schedule(&[set(&[], &[1, 2]), set(&[], &[3, 4]), set(&[], &[5, 6])]);
        assert_eq!(sched.waves, vec![vec![0, 1, 2]]);
        assert_eq!(sched.delayed, 0);
        assert_eq!(sched.conflict_rate(), 0.0);
    }

    #[test]
    fn write_write_chains_serialize() {
        // Same written key: a dependency chain, one wave each.
        let sched = schedule(&[set(&[], &[1]), set(&[], &[1]), set(&[], &[1])]);
        assert_eq!(sched.waves, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(sched.delayed, 2);
    }

    #[test]
    fn readers_pack_together_between_writers() {
        // w(1) ; r(1) r(1) ; w(1) — both readers share wave 1, the
        // second writer must wait for them.
        let sched =
            schedule(&[set(&[], &[1]), set(&[1], &[2]), set(&[1], &[3]), set(&[], &[1])]);
        assert_eq!(sched.waves, vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn later_independent_tx_may_schedule_before_earlier_conflicting_one() {
        // tx0 w(1), tx1 w(1) (level 1), tx2 w(9) independent → level 0.
        // Commit-in-index-order within each wave keeps this equivalent.
        let sched = schedule(&[set(&[], &[1]), set(&[], &[1]), set(&[], &[9])]);
        assert_eq!(sched.levels, vec![0, 1, 0]);
        assert_eq!(sched.waves, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn global_tx_is_a_barrier_alone_in_its_wave() {
        let sched = schedule(&[set(&[], &[1]), set(&[], &[2]), global(), set(&[], &[3])]);
        assert_eq!(sched.levels, vec![0, 0, 1, 2]);
        assert_eq!(sched.waves, vec![vec![0, 1], vec![2], vec![3]]);
        // A leading global tx still occupies level 0 alone.
        let sched = schedule(&[global(), set(&[], &[1])]);
        assert_eq!(sched.levels, vec![0, 1]);
    }

    #[test]
    fn consecutive_globals_each_get_their_own_wave() {
        let sched = schedule(&[global(), global(), global()]);
        assert_eq!(sched.waves, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(sched.max_width(), 1);
    }

    #[test]
    fn empty_block_schedules_to_no_waves() {
        let sched = schedule(&[]);
        assert!(sched.waves.is_empty());
        assert_eq!(sched.conflict_rate(), 0.0);
    }
}

//! Parallel block execution (DESIGN.md §11).
//!
//! The execution subsystem turns a block body into `(receipts, state
//! delta)` two ways that are — by hard invariant — byte-identical:
//!
//! - [`run_block_sequential`]: one overlay, transactions in order; this
//!   is what `Ledger::apply` uses below the parallelism threshold and
//!   what defines the semantics.
//! - [`run_block_parallel`]: infer a [`RwSet`] per transaction
//!   ([`read_write_set`]), partition into conflict-free waves
//!   ([`scheduler`]), execute each wave's transactions on separate OS
//!   threads (`sync::scoped_map`) against private recording overlays
//!   over the shared block overlay, audit every recorded footprint
//!   against its declared set, and commit deltas in ascending tx index.
//!   Any undeclared access discards all speculation and re-runs the
//!   whole block sequentially — equivalence is never negotiable, the
//!   parallel path is only ever an optimization.
//!
//! The equivalence argument: a transaction's wave level exceeds the
//! level of every earlier transaction it conflicts with, so when it
//! executes, exactly its conflict-predecessors are committed; audited
//! footprints of same- or earlier-wave neighbours are disjoint from its
//! reads, so it observes precisely the sequential prefix state on every
//! key it touches. Admission errors surface as the lowest-index failure,
//! matching the sequential early-exit.

pub mod overlay;
pub mod read_write_set;
pub mod scheduler;

pub use overlay::{StateAccess, StateDelta, WorldStateOverlay};
pub use read_write_set::{infer_rw_set, ExecScope, RwSet, StateKey};
pub use scheduler::{schedule, Schedule};

use crate::block::Block;
use crate::ledger::{
    contract_address, ContractRuntime, ExecError, ExecOutcome, LedgerError, Receipt, WorldState,
};
use crate::shard::{sharded_contract_address, ShardId};
use crate::sig::KeyRegistry;
use crate::tx::{Transaction, TxPayload};
use medchain_runtime::sync::scoped_map;
use std::collections::BTreeSet;
use std::time::Instant;

/// Everything tx execution needs from the ledger, as shareable borrows
/// (the ledger itself holds a `BlockStore` and is not `Sync`).
pub(crate) struct ExecCtx<'a> {
    pub runtime: &'a dyn ContractRuntime,
    pub registry: &'a KeyRegistry,
    pub shard: ShardId,
    pub shard_count: u16,
}

/// Per-block scheduling/execution telemetry, surfaced as `exec.*`.
pub(crate) struct ExecStats {
    pub waves: usize,
    pub wave_widths: Vec<usize>,
    pub wave_walls_us: Vec<f64>,
    pub delayed: usize,
    pub fell_back: bool,
}

/// Result of executing one block body.
pub(crate) struct BlockRun {
    pub receipts: Vec<Receipt>,
    pub delta: StateDelta,
    pub stats: ExecStats,
}

/// Signature + expected-nonce admission against arbitrary state.
pub(crate) fn admission_check(
    registry: &KeyRegistry,
    state: &dyn StateAccess,
    tx: &Transaction,
) -> Result<(), LedgerError> {
    if !tx.verify(registry) {
        return Err(LedgerError::BadSignature(tx.id()));
    }
    let account = state.account(&tx.sender);
    if tx.nonce != account.nonce {
        return Err(LedgerError::BadNonce {
            tx_id: tx.id(),
            expected: account.nonce,
            got: tx.nonce,
        });
    }
    Ok(())
}

/// Executes one admissible transaction against `state`.
///
/// Contract execution is atomic: `Deploy`/`Invoke` run against a child
/// overlay whose delta only lands on `state` on success — a trap leaves
/// no partial writes (the nonce bump happens before and survives).
pub(crate) fn execute_tx(
    ctx: &ExecCtx<'_>,
    state: &mut WorldStateOverlay<'_>,
    tx: &Transaction,
    now_ms: u64,
) -> Receipt {
    // Bump nonce first: failed transactions still consume it.
    let mut account = state.account(&tx.sender);
    account.nonce += 1;
    state.set_account(tx.sender, account);

    let result: Result<ExecOutcome, ExecError> = match &tx.payload {
        TxPayload::Transfer { to, amount } => state
            .debit(tx.sender, *amount)
            .map(|()| {
                state.credit(*to, *amount);
                ExecOutcome { gas_used: 21, ..ExecOutcome::default() }
            })
            .map_err(|e| ExecError { gas_used: 21, reason: e.to_string() }),
        TxPayload::Deploy { code, init } => {
            // On a sharded ledger the address is ground so that the
            // invoke routing rule (shard_for_key on the address) lands
            // back on this shard (DESIGN.md §9).
            let contract_addr = if ctx.shard_count > 1 {
                sharded_contract_address(&tx.sender, tx.nonce, ctx.shard, ctx.shard_count)
            } else {
                contract_address(&tx.sender, tx.nonce)
            };
            let attempt = {
                let mut child = WorldStateOverlay::new(state);
                ctx.runtime
                    .deploy(tx.sender, contract_addr, code, init, tx.gas_limit, now_ms, &mut child)
                    .map(|outcome| (outcome, child.into_delta()))
            };
            attempt.map(|(mut outcome, delta)| {
                delta.apply_to(state);
                outcome.output = contract_addr.0.to_vec();
                outcome
            })
        }
        TxPayload::Invoke { contract, input } => {
            let attempt = {
                let mut child = WorldStateOverlay::new(state);
                ctx.runtime
                    .invoke(tx.sender, *contract, input, tx.gas_limit, now_ms, &mut child)
                    .map(|outcome| (outcome, child.into_delta()))
            };
            attempt.map(|(outcome, delta)| {
                delta.apply_to(state);
                outcome
            })
        }
        TxPayload::Anchor { root, label } => match state.anchor(label) {
            Some(existing) if existing != *root => Err(ExecError {
                gas_used: 30,
                reason: LedgerError::AnchorConflict(label.clone()).to_string(),
            }),
            _ => {
                state.set_anchor(label, *root);
                Ok(ExecOutcome { gas_used: 30, ..ExecOutcome::default() })
            }
        },
        TxPayload::CrossLink { shard, height, tip } => {
            if !ctx.shard.is_coordinator() {
                Err(ExecError {
                    gas_used: 40,
                    reason: format!("cross-link for {shard} on non-coordinator chain"),
                })
            } else if shard.is_coordinator() {
                Err(ExecError {
                    gas_used: 40,
                    reason: "cross-link cannot reference the coordinator itself".into(),
                })
            } else {
                match state.cross_link(*shard) {
                    // A shard's committed height is monotonic: a link at
                    // or below the last one is a rewind.
                    Some(prev) if prev.height >= *height => Err(ExecError {
                        gas_used: 40,
                        reason: format!(
                            "cross-link height regression for {shard}: \
                             have {}, got {height}",
                            prev.height
                        ),
                    }),
                    _ => {
                        state.set_cross_link(
                            *shard,
                            crate::ledger::CrossLinkRecord { height: *height, tip: *tip },
                        );
                        Ok(ExecOutcome { gas_used: 40, ..ExecOutcome::default() })
                    }
                }
            }
        }
        TxPayload::XsPrepare { xid, leg, deadline_ms } => {
            if ctx.shard.is_coordinator() {
                Err(ExecError {
                    gas_used: 45,
                    reason: "cross-shard prepare on the coordinator chain".into(),
                })
            } else if leg.shard != ctx.shard {
                Err(ExecError {
                    gas_used: 45,
                    reason: format!("prepare leg for {} executed on {}", leg.shard, ctx.shard),
                })
            } else if leg.shard != crate::shard::shard_for_key(&leg.account.0, ctx.shard_count) {
                // Locks must live on the account's home shard, because the
                // finalize that releases them routes by `shard_for_key` —
                // a lock anywhere else would be unreachable forever.
                Err(ExecError {
                    gas_used: 45,
                    reason: format!(
                        "prepare leg locks {:?} away from its home shard",
                        leg.account
                    ),
                })
            } else if leg.debit && tx.sender != leg.account {
                // Only the owner may escrow its own funds. Prepares are
                // client-mintable, so without this check any enrolled
                // client could lock (and, paired with a credit leg to
                // itself, drain) an arbitrary victim account. Credit
                // legs stay open to third parties — paying someone else
                // is the point.
                Err(ExecError {
                    gas_used: 45,
                    reason: LedgerError::XsUnauthorizedDebit {
                        sender: tx.sender,
                        account: leg.account,
                    }
                    .to_string(),
                })
            } else if let Some(held) = state.lock(&leg.account) {
                Err(ExecError {
                    gas_used: 45,
                    reason: LedgerError::AccountLocked { address: leg.account, xid: held.xid }
                        .to_string(),
                })
            } else {
                // A debit leg escrows the amount at prepare time, so a
                // later commit can never fail for funds; a credit leg
                // only records the pending payout.
                let escrow = if leg.debit { state.debit(leg.account, leg.amount) } else { Ok(()) };
                match escrow {
                    Err(e) => Err(ExecError { gas_used: 45, reason: e.to_string() }),
                    Ok(()) => {
                        state.set_lock(
                            leg.account,
                            crate::ledger::XsLock {
                                xid: *xid,
                                amount: leg.amount,
                                debit: leg.debit,
                                deadline_ms: *deadline_ms,
                            },
                        );
                        Ok(ExecOutcome { gas_used: 45, ..ExecOutcome::default() })
                    }
                }
            }
        }
        TxPayload::XsDecide { xid, commit } => {
            if !ctx.shard.is_coordinator() {
                Err(ExecError {
                    gas_used: 45,
                    reason: "cross-shard decision on non-coordinator chain".into(),
                })
            } else if state.xs_decision(xid).is_some() {
                // Decisions are write-once: participants resolving an
                // interrupted round must never see the verdict flip.
                Err(ExecError {
                    gas_used: 45,
                    reason: format!("cross-shard transaction {xid:?} already decided"),
                })
            } else {
                state.set_xs_decision(
                    *xid,
                    crate::ledger::XsDecisionRecord { commit: *commit, tx_id: tx.id() },
                );
                Ok(ExecOutcome {
                    gas_used: 45,
                    output: vec![u8::from(*commit)],
                    ..ExecOutcome::default()
                })
            }
        }
        TxPayload::XsFinalize { xid, account, commit } => match state.lock(account) {
            None => Err(ExecError {
                gas_used: 45,
                reason: format!("no cross-shard lock held on {account:?}"),
            }),
            Some(lock) if lock.xid != *xid => Err(ExecError {
                gas_used: 45,
                reason: format!(
                    "lock on {account:?} held by a different cross-shard transaction"
                ),
            }),
            Some(lock) => {
                // Commit: a debit leg's escrow is burned here (the
                // credit leg mints on its own shard); a credit leg pays
                // out. Abort: the debit escrow is refunded; a credit
                // leg never moved funds.
                if *commit != lock.debit {
                    state.credit(*account, lock.amount);
                }
                state.clear_lock(account);
                Ok(ExecOutcome { gas_used: 45, ..ExecOutcome::default() })
            }
        },
    };

    match result {
        Ok(outcome) => Receipt {
            tx_id: tx.id(),
            ok: true,
            gas_used: outcome.gas_used,
            output: outcome.output,
            events: outcome.events,
            error: None,
        },
        Err(err) => Receipt {
            tx_id: tx.id(),
            ok: false,
            gas_used: err.gas_used,
            output: Vec::new(),
            events: Vec::new(),
            error: Some(err.reason),
        },
    }
}

/// Reference semantics: one overlay, transactions in block order.
///
/// # Errors
///
/// Returns the first transaction's admission failure, leaving no state
/// effects (the overlay is simply dropped).
pub(crate) fn run_block_sequential(
    ctx: &ExecCtx<'_>,
    base: &WorldState,
    txs: &[Transaction],
    now_ms: u64,
) -> Result<(Vec<Receipt>, StateDelta), LedgerError> {
    let mut overlay = WorldStateOverlay::new(base);
    let mut receipts = Vec::with_capacity(txs.len());
    for tx in txs {
        admission_check(ctx.registry, &overlay, tx)?;
        receipts.push(execute_tx(ctx, &mut overlay, tx, now_ms));
    }
    Ok((receipts, overlay.into_delta()))
}

/// One transaction's speculative run inside a wave.
struct TxRun {
    index: usize,
    admission: Option<LedgerError>,
    receipt: Option<Receipt>,
    delta: StateDelta,
    reads: BTreeSet<StateKey>,
}

fn run_speculative(
    ctx: &ExecCtx<'_>,
    base: &dyn StateAccess,
    txs: &[Transaction],
    index: usize,
    now_ms: u64,
) -> TxRun {
    let mut tx_overlay = WorldStateOverlay::new(base).recording();
    match admission_check(ctx.registry, &tx_overlay, &txs[index]) {
        Err(err) => TxRun {
            index,
            admission: Some(err),
            receipt: None,
            delta: StateDelta::default(),
            reads: BTreeSet::new(),
        },
        Ok(()) => {
            let receipt = execute_tx(ctx, &mut tx_overlay, &txs[index], now_ms);
            let (delta, reads) = tx_overlay.into_parts();
            TxRun { index, admission: None, receipt: Some(receipt), delta, reads }
        }
    }
}

/// Distributes a wave's tx indices round-robin over `lanes` worker
/// lanes (index order preserved within each lane).
fn round_robin(wave: &[usize], lanes: usize) -> Vec<Vec<usize>> {
    let mut chunks = vec![Vec::with_capacity(wave.len() / lanes + 1); lanes];
    for (position, &index) in wave.iter().enumerate() {
        chunks[position % lanes].push(index);
    }
    chunks
}

/// Wave-parallel execution of one block body over `threads` lanes.
///
/// # Errors
///
/// Returns the lowest-index admission failure across the whole body —
/// exactly the error sequential execution would have stopped at.
pub(crate) fn run_block_parallel(
    ctx: &ExecCtx<'_>,
    base: &WorldState,
    txs: &[Transaction],
    now_ms: u64,
    threads: usize,
) -> Result<BlockRun, LedgerError> {
    let sets: Vec<RwSet> = txs
        .iter()
        .map(|tx| infer_rw_set(tx, ctx.shard, ctx.shard_count, base, ctx.runtime))
        .collect();
    let sched = schedule(&sets);

    let mut overlay = WorldStateOverlay::new(base);
    let mut receipts: Vec<Option<Receipt>> = txs.iter().map(|_| None).collect();
    let mut first_failure: Option<(usize, LedgerError)> = None;
    let note_failure = |slot: &mut Option<(usize, LedgerError)>, index: usize, err| {
        if slot.as_ref().map_or(true, |(i, _)| index < *i) {
            *slot = Some((index, err));
        }
    };
    let mut wave_widths = Vec::with_capacity(sched.waves.len());
    let mut wave_walls_us = Vec::with_capacity(sched.waves.len());

    for wave in &sched.waves {
        let started = Instant::now();
        wave_widths.push(wave.len());
        if wave.len() == 1 && sets[wave[0]].global {
            // A barrier tx runs alone against fully committed state —
            // that *is* the sequential position, no audit needed.
            let index = wave[0];
            match admission_check(ctx.registry, &overlay, &txs[index]) {
                Err(err) => note_failure(&mut first_failure, index, err),
                Ok(()) => receipts[index] = Some(execute_tx(ctx, &mut overlay, &txs[index], now_ms)),
            }
        } else {
            let runs: Vec<TxRun> = if wave.len() >= 2 && threads >= 2 {
                let shared: &WorldStateOverlay<'_> = &overlay;
                let lanes = round_robin(wave, threads.min(wave.len()));
                scoped_map(lanes, |lane| {
                    lane.into_iter()
                        .map(|index| run_speculative(ctx, shared, txs, index, now_ms))
                        .collect::<Vec<TxRun>>()
                })
                .into_iter()
                .flatten()
                .collect()
            } else {
                wave.iter().map(|&i| run_speculative(ctx, &overlay, txs, i, now_ms)).collect()
            };

            // Footprint audit: every actual access must be declared. A
            // violation means the static sets lied (e.g. a runtime whose
            // code_scope misclassifies) — discard all speculation and
            // fall back to the reference semantics.
            let violated = runs.iter().any(|run| {
                run.admission.is_none() && !sets[run.index].global && {
                    run.reads.iter().any(|k| !sets[run.index].declares(k))
                        || run.delta.write_keys().iter().any(|k| !sets[run.index].declares_write(k))
                }
            });
            if violated {
                let (receipts, delta) = run_block_sequential(ctx, base, txs, now_ms)?;
                return Ok(BlockRun {
                    receipts,
                    delta,
                    stats: ExecStats {
                        waves: sched.waves.len(),
                        wave_widths,
                        wave_walls_us,
                        delayed: sched.delayed,
                        fell_back: true,
                    },
                });
            }

            // Commit in ascending tx index (wave order is ascending by
            // construction) — deterministic and write-disjoint.
            for run in runs.into_iter() {
                match run.admission {
                    Some(err) => note_failure(&mut first_failure, run.index, err),
                    None => {
                        run.delta.apply_to(&mut overlay);
                        receipts[run.index] = run.receipt;
                    }
                }
            }
        }
        wave_walls_us.push(started.elapsed().as_secs_f64() * 1e6);
    }

    if let Some((_, err)) = first_failure {
        return Err(err);
    }
    let receipts =
        receipts.into_iter().map(|r| r.expect("every admissible tx executed")).collect();
    Ok(BlockRun {
        receipts,
        delta: overlay.into_delta(),
        stats: ExecStats {
            waves: sched.waves.len(),
            wave_widths,
            wave_walls_us,
            delayed: sched.delayed,
            fell_back: false,
        },
    })
}

/// Parallel apply of a full pre-checked block — used by `Ledger::apply`.
#[allow(dead_code)] // kept for symmetry; Ledger calls run_block_parallel directly
pub(crate) fn run_block(
    ctx: &ExecCtx<'_>,
    base: &WorldState,
    block: &Block,
    threads: usize,
) -> Result<BlockRun, LedgerError> {
    run_block_parallel(ctx, base, &block.transactions, block.header.timestamp_ms, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{ExecError, ExecOutcome, WorldState};
    use crate::sig::{Address, AuthorityKey};

    fn ctx<'a>(runtime: &'a dyn ContractRuntime, registry: &'a KeyRegistry) -> ExecCtx<'a> {
        ExecCtx { runtime, registry, shard: ShardId::default(), shard_count: 1 }
    }

    fn enrolled(n: u64) -> (Vec<AuthorityKey>, KeyRegistry) {
        let keys: Vec<AuthorityKey> = (1..=n).map(AuthorityKey::from_seed).collect();
        let mut registry = KeyRegistry::new();
        for k in &keys {
            registry.enroll(k);
        }
        (keys, registry)
    }

    fn transfer(key: &AuthorityKey, nonce: u64, to: Address, amount: u64) -> Transaction {
        Transaction::new(key.address(), nonce, TxPayload::Transfer { to, amount }, 100).signed(key)
    }

    fn assert_equivalent(
        ctx: &ExecCtx<'_>,
        base: &WorldState,
        txs: &[Transaction],
        threads: usize,
    ) {
        let sequential = run_block_sequential(ctx, base, txs, 10);
        let parallel = run_block_parallel(ctx, base, txs, 10, threads);
        match (sequential, parallel) {
            (Ok((seq_receipts, seq_delta)), Ok(run)) => {
                assert_eq!(seq_receipts, run.receipts);
                let mut seq_state = base.clone();
                let mut par_state = base.clone();
                seq_delta.apply_to(&mut seq_state);
                run.delta.apply_to(&mut par_state);
                assert_eq!(seq_state.state_root(), par_state.state_root());
            }
            (Err(seq_err), Err(par_err)) => assert_eq!(seq_err, par_err),
            (seq, par) => panic!("divergent outcomes: seq ok={}, par ok={}", seq.is_ok(), par.is_ok()),
        }
    }

    #[test]
    fn disjoint_transfers_match_sequential_at_all_thread_counts() {
        let (keys, registry) = enrolled(8);
        let mut base = WorldState::new();
        for k in &keys {
            base.credit(k.address(), 1_000);
        }
        let txs: Vec<Transaction> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| transfer(k, 0, Address::from_seed(100 + i as u64), 10))
            .collect();
        let runtime = crate::ledger::NullRuntime;
        let ctx = ctx(&runtime, &registry);
        for threads in [1, 2, 4, 8] {
            assert_equivalent(&ctx, &base, &txs, threads);
        }
    }

    #[test]
    fn same_sender_chain_serializes_and_matches() {
        let (keys, registry) = enrolled(1);
        let mut base = WorldState::new();
        base.credit(keys[0].address(), 1_000);
        let txs: Vec<Transaction> =
            (0..6).map(|n| transfer(&keys[0], n, Address::from_seed(50), 10)).collect();
        let runtime = crate::ledger::NullRuntime;
        let ctx = ctx(&runtime, &registry);
        assert_equivalent(&ctx, &base, &txs, 4);
    }

    #[test]
    fn admission_failure_reports_lowest_index_like_sequential() {
        let (keys, registry) = enrolled(2);
        let mut base = WorldState::new();
        base.credit(keys[0].address(), 1_000);
        base.credit(keys[1].address(), 1_000);
        // tx0 fine; tx1 has a nonce gap (sequential stops here); tx2 fine.
        let txs = vec![
            transfer(&keys[0], 0, Address::from_seed(50), 1),
            transfer(&keys[1], 7, Address::from_seed(51), 1),
            transfer(&keys[0], 1, Address::from_seed(52), 1),
        ];
        let runtime = crate::ledger::NullRuntime;
        let ctx = ctx(&runtime, &registry);
        assert_equivalent(&ctx, &base, &txs, 4);
    }

    /// Claims self-containment but writes another contract's storage —
    /// the defense-in-depth audit must catch it and fall back.
    struct LyingRuntime {
        escape_to: Address,
    }

    impl ContractRuntime for LyingRuntime {
        fn deploy(
            &self,
            _sender: Address,
            contract_addr: Address,
            code: &[u8],
            _init: &[u8],
            _gas_limit: u64,
            _now_ms: u64,
            state: &mut dyn StateAccess,
        ) -> Result<ExecOutcome, ExecError> {
            state.set_code(contract_addr, code.to_vec());
            Ok(ExecOutcome { gas_used: 10, ..ExecOutcome::default() })
        }

        fn invoke(
            &self,
            _sender: Address,
            contract: Address,
            _input: &[u8],
            _gas_limit: u64,
            _now_ms: u64,
            state: &mut dyn StateAccess,
        ) -> Result<ExecOutcome, ExecError> {
            // Undeclared escape: bump a counter on a *different* contract.
            let current = state
                .storage(&self.escape_to, b"hits")
                .map(|v| v[0])
                .unwrap_or(0);
            state.set_storage(self.escape_to, b"hits".to_vec(), vec![current + 1]);
            let _ = contract;
            Ok(ExecOutcome { gas_used: 10, ..ExecOutcome::default() })
        }

        fn code_scope(&self, _code: &[u8]) -> ExecScope {
            ExecScope::SelfContained // the lie
        }
    }

    #[test]
    fn undeclared_escape_triggers_sequential_fallback_with_identical_results() {
        let (keys, registry) = enrolled(2);
        let escape_to = Address::from_seed(99);
        let runtime = LyingRuntime { escape_to };
        let c1 = Address::from_seed(201);
        let c2 = Address::from_seed(202);
        let mut base = WorldState::new();
        base.credit(keys[0].address(), 1_000);
        base.credit(keys[1].address(), 1_000);
        base.set_code(c1, b"a".to_vec());
        base.set_code(c2, b"b".to_vec());
        // Two "independent" invokes that actually race on escape_to.
        let txs = vec![
            Transaction::new(
                keys[0].address(),
                0,
                TxPayload::Invoke { contract: c1, input: Vec::new() },
                100,
            )
            .signed(&keys[0]),
            Transaction::new(
                keys[1].address(),
                0,
                TxPayload::Invoke { contract: c2, input: Vec::new() },
                100,
            )
            .signed(&keys[1]),
        ];
        let ctx = ctx(&runtime, &registry);
        let run = run_block_parallel(&ctx, &base, &txs, 10, 4).unwrap();
        assert!(run.stats.fell_back, "audit must detect the undeclared write");
        let (seq_receipts, seq_delta) = run_block_sequential(&ctx, &base, &txs, 10).unwrap();
        assert_eq!(run.receipts, seq_receipts);
        let mut seq_state = base.clone();
        let mut par_state = base.clone();
        seq_delta.apply_to(&mut seq_state);
        run.delta.apply_to(&mut par_state);
        assert_eq!(seq_state.state_root(), par_state.state_root());
        // Both applied the escape twice — the fallback preserved it.
        assert_eq!(par_state.storage(&escape_to, b"hits"), Some([2u8].as_slice()));
    }
}

/// Seeded property: for every [`TxPayload`] variant, the statically
/// inferred [`RwSet`] is a superset of the keys execution actually
/// touches (unless declared global, which dominates everything). This
/// is the soundness condition the wave scheduler rests on; the runtime
/// audit in [`run_block_parallel`] re-checks it dynamically.
#[cfg(test)]
mod inference_props {
    use super::*;
    use crate::hash::Hash256;
    use crate::ledger::{ExecError, ExecOutcome, WorldState};
    use crate::sig::{Address, AuthorityKey};
    use medchain_runtime::check::{check, CheckConfig, Gen};
    use medchain_runtime::ensure;

    /// Honest fuzzing runtime: code starting with `b'S'` is
    /// self-contained (touches only the executing contract's slice);
    /// any other code may escape to one fixed foreign address.
    struct ScribbleRuntime;

    fn escape_addr() -> Address {
        Address::from_seed(0xE5CA9E)
    }

    fn self_contained(code: &[u8]) -> bool {
        code.first() == Some(&b'S')
    }

    impl ContractRuntime for ScribbleRuntime {
        fn deploy(
            &self,
            _sender: Address,
            contract_addr: Address,
            code: &[u8],
            init: &[u8],
            _gas_limit: u64,
            _now_ms: u64,
            state: &mut dyn StateAccess,
        ) -> Result<ExecOutcome, ExecError> {
            state.set_code(contract_addr, code.to_vec());
            if !init.is_empty() {
                state.set_storage(contract_addr, b"init".to_vec(), init.to_vec());
                if !self_contained(code) {
                    state.set_storage(escape_addr(), b"esc".to_vec(), vec![1]);
                }
            }
            Ok(ExecOutcome { gas_used: 10, ..ExecOutcome::default() })
        }

        fn invoke(
            &self,
            _sender: Address,
            contract: Address,
            input: &[u8],
            _gas_limit: u64,
            _now_ms: u64,
            state: &mut dyn StateAccess,
        ) -> Result<ExecOutcome, ExecError> {
            let code = state.code(&contract).map(<[u8]>::to_vec).ok_or_else(|| ExecError {
                gas_used: 5,
                reason: "no contract".into(),
            })?;
            let mut calls =
                state.storage(&contract, b"calls").map(<[u8]>::to_vec).unwrap_or_default();
            calls.extend_from_slice(input);
            state.set_storage(contract, b"calls".to_vec(), calls);
            if !self_contained(&code) {
                state.set_storage(escape_addr(), b"esc".to_vec(), vec![2]);
            }
            Ok(ExecOutcome { gas_used: 10, ..ExecOutcome::default() })
        }

        fn code_scope(&self, code: &[u8]) -> ExecScope {
            if self_contained(code) {
                ExecScope::SelfContained
            } else {
                ExecScope::MayEscape
            }
        }
    }

    /// A small shared xid pool so random prepares, decisions, and
    /// finalizes actually collide on the same cross-shard transaction —
    /// exercising the success paths, not just the failure arms.
    fn random_xid(g: &mut Gen) -> Hash256 {
        Hash256::digest(&[g.usize_in(0, 3) as u8])
    }

    fn random_payload(g: &mut Gen, contracts: &[Address]) -> TxPayload {
        match g.usize_in(0, 8) {
            0 => TxPayload::Transfer {
                to: Address::from_seed(100 + g.usize_in(0, 6) as u64),
                amount: g.usize_in(0, 60) as u64,
            },
            1 => {
                let mut code = vec![if g.bool() { b'S' } else { b'E' }];
                code.extend(g.bytes(0, 8));
                TxPayload::Deploy { code, init: g.bytes(0, 4) }
            }
            2 => TxPayload::Invoke {
                contract: if g.bool() {
                    contracts[g.usize_in(0, contracts.len())]
                } else {
                    Address::from_seed(400 + g.usize_in(0, 4) as u64)
                },
                input: g.bytes(0, 6),
            },
            3 => TxPayload::Anchor {
                root: Hash256::digest(&g.bytes(0, 8)),
                label: format!("label-{}", g.usize_in(0, 4)),
            },
            4 => TxPayload::CrossLink {
                shard: ShardId(1 + g.usize_in(0, 3) as u16),
                height: g.usize_in(0, 100) as u64,
                tip: Hash256::digest(&g.bytes(0, 8)),
            },
            5 => TxPayload::XsPrepare {
                xid: random_xid(g),
                leg: crate::tx::XsLeg {
                    shard: ShardId(g.usize_in(0, 3) as u16),
                    account: Address::from_seed(100 + g.usize_in(0, 6) as u64),
                    amount: g.usize_in(0, 60) as u64,
                    debit: g.bool(),
                },
                deadline_ms: g.usize_in(0, 1_000) as u64,
            },
            6 => TxPayload::XsDecide { xid: random_xid(g), commit: g.bool() },
            _ => TxPayload::XsFinalize {
                xid: random_xid(g),
                account: Address::from_seed(100 + g.usize_in(0, 6) as u64),
                commit: g.bool(),
            },
        }
    }

    #[test]
    fn inferred_sets_cover_actual_footprints() {
        check("rw-set inference covers execution footprint", CheckConfig::cases(48), |g| {
            let keys: Vec<AuthorityKey> = (1..=4).map(AuthorityKey::from_seed).collect();
            let mut registry = KeyRegistry::new();
            for k in &keys {
                registry.enroll(k);
            }
            // Sweep the topologies inference special-cases: flat,
            // coordinator, and a data shard of a 2-shard consortium.
            let (shard, shard_count) = match g.usize_in(0, 3) {
                0 => (ShardId::default(), 1),
                1 => (ShardId::COORDINATOR, 1),
                _ => (ShardId(0), 2),
            };
            let runtime = ScribbleRuntime;
            let ctx = ExecCtx { runtime: &runtime, registry: &registry, shard, shard_count };
            let mut state = WorldState::new();
            for k in &keys {
                state.credit(k.address(), 1_000);
            }
            let sc = Address::from_seed(300);
            let ec = Address::from_seed(301);
            state.set_code(sc, b"S-pre".to_vec());
            state.set_code(ec, b"E-pre".to_vec());
            state.set_anchor("label-0", Hash256::digest(b"pre"));
            let contracts = [sc, ec];

            for _ in 0..8 {
                let key = &keys[g.usize_in(0, keys.len())];
                let nonce = state.account(&key.address()).nonce;
                let tx = Transaction::new(
                    key.address(),
                    nonce,
                    random_payload(g, &contracts),
                    1_000,
                )
                .signed(key);
                let set = infer_rw_set(&tx, shard, shard_count, &state, &runtime);
                let mut overlay = WorldStateOverlay::new(&state).recording();
                execute_tx(&ctx, &mut overlay, &tx, 10);
                let (delta, reads) = overlay.into_parts();
                if !set.global {
                    for k in &reads {
                        ensure!(set.declares(k), "undeclared read {k:?} for {:?}", tx.payload);
                    }
                    for k in delta.write_keys().iter() {
                        ensure!(
                            set.declares_write(k),
                            "undeclared write {k:?} for {:?}",
                            tx.payload
                        );
                    }
                }
                // Evolve the state so later cases see deployed code,
                // existing anchors, advancing nonces, and cross-links.
                delta.apply_to(&mut state);
            }
            Ok(())
        });
    }

    /// Satellite of DESIGN.md §12: a 2PC prepare leg's inferred rw-set
    /// is a superset of its actual footprint on flat, coordinator, and
    /// sharded topologies — across every outcome arm (escrow success,
    /// credit-side success, already-locked, wrong shard, insufficient
    /// escrow funds). An under-declared prepare would let the wave
    /// scheduler race a lock write against a transfer on the same
    /// account.
    #[test]
    fn prepare_rw_set_covers_every_outcome_on_all_topologies() {
        check("2PC prepare rw-set superset", CheckConfig::cases(64), |g| {
            let key = AuthorityKey::from_seed(1);
            let mut registry = KeyRegistry::new();
            registry.enroll(&key);
            let (shard, shard_count) = match g.usize_in(0, 3) {
                0 => (ShardId::default(), 1),
                1 => (ShardId::COORDINATOR, 1),
                _ => (ShardId(g.usize_in(0, 2) as u16), 2),
            };
            let runtime = ScribbleRuntime;
            let ctx = ExecCtx { runtime: &runtime, registry: &registry, shard, shard_count };
            let mut state = WorldState::new();
            state.credit(key.address(), 1_000);
            let account = Address::from_seed(200 + g.usize_in(0, 3) as u64);
            if g.bool() {
                state.credit(account, g.usize_in(0, 100) as u64);
            }
            if g.bool() {
                // A pre-held lock forces the already-locked arm.
                StateAccess::set_lock(
                    &mut state,
                    account,
                    crate::ledger::XsLock {
                        xid: Hash256::digest(b"held"),
                        amount: 5,
                        debit: g.bool(),
                        deadline_ms: 100,
                    },
                );
            }
            let tx = Transaction::new(
                key.address(),
                state.account(&key.address()).nonce,
                TxPayload::XsPrepare {
                    xid: Hash256::digest(&g.bytes(1, 8)),
                    leg: crate::tx::XsLeg {
                        shard: ShardId(g.usize_in(0, 3) as u16),
                        account,
                        amount: g.usize_in(0, 120) as u64,
                        debit: g.bool(),
                    },
                    deadline_ms: g.usize_in(0, 10_000) as u64,
                },
                1_000,
            )
            .signed(&key);
            let set = infer_rw_set(&tx, shard, shard_count, &state, &runtime);
            ensure!(!set.global, "a prepare is account-keyed, never global");
            let mut overlay = WorldStateOverlay::new(&state).recording();
            execute_tx(&ctx, &mut overlay, &tx, 10);
            let (delta, reads) = overlay.into_parts();
            for k in &reads {
                ensure!(set.declares(k), "undeclared prepare read {k:?}");
            }
            for k in delta.write_keys().iter() {
                ensure!(set.declares_write(k), "undeclared prepare write {k:?}");
            }
            Ok(())
        });
    }
}

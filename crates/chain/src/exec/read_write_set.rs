//! Static read/write-set inference for transactions.
//!
//! Every [`TxPayload`] variant maps to a set of
//! [`StateKey`]s it may read or write during execution. The scheduler
//! (`exec::scheduler`) partitions a block into conflict-free waves by
//! key overlap, so the sets must be **supersets** of what execution
//! actually touches — an under-declared access would be a silent race.
//! The inference here is deliberately conservative: anything it cannot
//! bound statically is marked *global* and serializes against the whole
//! block (see [`RwSet::global`]).
//!
//! Inference rules (DESIGN.md §11):
//!
//! - every tx writes `Account(sender)` — admission reads the nonce and
//!   execution bumps it;
//! - `Transfer` additionally writes `Account(to)`;
//! - `Anchor` writes `Anchor(label)` (the conflict check reads the same
//!   label);
//! - `CrossLink` writes `CrossLink(shard)`;
//! - `XsPrepare` / `XsFinalize` write `Account(account)` of their leg —
//!   lock state is account-scoped, so the account key already covers
//!   both the balance and the lock; `XsDecide` writes
//!   `XsDecision(xid)`;
//! - `Deploy` writes `Contract(addr)` for the statically derivable
//!   contract address; a non-empty constructor runs the deployed code,
//!   so the code is classified via [`ContractRuntime::code_scope`];
//! - `Invoke` writes `Contract(contract)` when the installed code is
//!   [`ExecScope::SelfContained`]; code that may re-enter other
//!   contracts — or code not yet visible in committed state (it may be
//!   deployed earlier in the same block) — is global.

use crate::ledger::{contract_address, ContractRuntime, WorldState};
use crate::shard::{sharded_contract_address, ShardId};
use crate::sig::Address;
use crate::tx::{Transaction, TxPayload};
use std::collections::BTreeSet;

/// Static classification of a piece of contract code's state footprint,
/// reported by [`ContractRuntime::code_scope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecScope {
    /// Execution touches only the invoked contract's own storage/code
    /// (plus whatever the ledger itself declares, e.g. the sender
    /// account). Safe to schedule under `Contract(addr)`.
    SelfContained,
    /// Execution may reach other contracts or accounts (e.g. via a
    /// cross-contract call instruction); the tx serializes against the
    /// whole block.
    MayEscape,
}

/// One unit of conflict granularity over [`WorldState`].
///
/// `Contract(addr)` covers the contract's code *and all of its storage
/// slots* — coarse, but it makes self-contained invokes of distinct
/// contracts provably independent without tracking per-slot keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum StateKey {
    /// Balance + nonce of one account.
    Account(Address),
    /// Code and every storage slot of one contract address.
    Contract(Address),
    /// One data-anchor label.
    Anchor(String),
    /// The coordinator's cross-link record for one shard.
    CrossLink(u16),
    /// The coordinator's commit/abort record for one cross-shard
    /// transaction (2PC locks themselves are account-scoped and ride
    /// under [`StateKey::Account`]).
    XsDecision(crate::hash::Hash256),
}

/// The declared read/write footprint of one transaction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RwSet {
    /// Keys execution may read.
    pub reads: BTreeSet<StateKey>,
    /// Keys execution may write (a write implies read access).
    pub writes: BTreeSet<StateKey>,
    /// Escape hatch: the footprint could not be bounded statically; the
    /// tx conflicts with every other tx in the block.
    pub global: bool,
}

impl RwSet {
    /// Empty set.
    pub fn new() -> RwSet {
        RwSet::default()
    }

    /// Declares a read of `key`.
    pub fn read(&mut self, key: StateKey) {
        self.reads.insert(key);
    }

    /// Declares a write of `key`.
    pub fn write(&mut self, key: StateKey) {
        self.writes.insert(key);
    }

    /// Whether `key` is covered by this set (reads or writes).
    pub fn declares(&self, key: &StateKey) -> bool {
        self.global || self.writes.contains(key) || self.reads.contains(key)
    }

    /// Whether `key` is covered as a write.
    pub fn declares_write(&self, key: &StateKey) -> bool {
        self.global || self.writes.contains(key)
    }

    /// Whether two sets conflict: W∩W, W∩R, or R∩W overlap (R∩R is
    /// fine), or either side is global.
    pub fn conflicts_with(&self, other: &RwSet) -> bool {
        if self.global || other.global {
            return true;
        }
        let hits = |a: &BTreeSet<StateKey>, b: &BTreeSet<StateKey>| a.iter().any(|k| b.contains(k));
        hits(&self.writes, &other.writes)
            || hits(&self.writes, &other.reads)
            || hits(&self.reads, &other.writes)
    }
}

/// Infers the read/write set of `tx` as it would execute on a ledger
/// following `shard` of a `shard_count`-shard topology, against the
/// committed `state` (pre-block; in-block deploys are *not* visible,
/// which is exactly why an invoke of an unknown address goes global).
///
/// The inferred set is a superset of the keys [`Ledger::apply`]
/// (crate::ledger::Ledger::apply) actually touches — property-tested in
/// `tests/exec_parallel.rs` against a recording overlay.
pub fn infer_rw_set(
    tx: &Transaction,
    shard: ShardId,
    shard_count: u16,
    state: &WorldState,
    runtime: &dyn ContractRuntime,
) -> RwSet {
    let mut set = RwSet::new();
    // Admission reads the sender nonce; execution bumps it.
    set.write(StateKey::Account(tx.sender));
    match &tx.payload {
        TxPayload::Transfer { to, .. } => set.write(StateKey::Account(*to)),
        TxPayload::Anchor { label, .. } => set.write(StateKey::Anchor(label.clone())),
        TxPayload::CrossLink { shard, .. } => set.write(StateKey::CrossLink(shard.0)),
        // 2PC lock state is account-scoped (DESIGN.md §12): prepare and
        // finalize read/write the lock *and* the balance of the leg's
        // account, both covered by `Account(account)`.
        TxPayload::XsPrepare { leg, .. } => set.write(StateKey::Account(leg.account)),
        TxPayload::XsFinalize { account, .. } => set.write(StateKey::Account(*account)),
        TxPayload::XsDecide { xid, .. } => set.write(StateKey::XsDecision(*xid)),
        TxPayload::Deploy { code, init } => {
            if shard_count > 1 && shard.is_coordinator() {
                // No data-shard address exists for a coordinator deploy;
                // execution is undefined here, so stay maximally wide.
                set.global = true;
            } else {
                let addr = if shard_count > 1 {
                    sharded_contract_address(&tx.sender, tx.nonce, shard, shard_count)
                } else {
                    contract_address(&tx.sender, tx.nonce)
                };
                set.write(StateKey::Contract(addr));
                // A constructor runs the freshly deployed code.
                if !init.is_empty() && runtime.code_scope(code) == ExecScope::MayEscape {
                    set.global = true;
                }
            }
        }
        TxPayload::Invoke { contract, .. } => {
            set.write(StateKey::Contract(*contract));
            match state.code(contract) {
                // Code is immutable once installed (set_code only runs at
                // a fresh address), so classifying the committed bytes is
                // stable for the whole block.
                Some(code) => {
                    if runtime.code_scope(code) == ExecScope::MayEscape {
                        set.global = true;
                    }
                }
                // Absent code may still be deployed by an earlier tx in
                // this very block — widen rather than race.
                None => set.global = true,
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::NullRuntime;

    fn transfer_tx(sender: Address, to: Address) -> Transaction {
        Transaction::new(sender, 0, TxPayload::Transfer { to, amount: 1 }, 100)
    }

    #[test]
    fn transfer_set_covers_both_accounts() {
        let a = Address::from_seed(1);
        let b = Address::from_seed(2);
        let set = infer_rw_set(
            &transfer_tx(a, b),
            ShardId::default(),
            1,
            &WorldState::new(),
            &NullRuntime,
        );
        assert!(set.declares_write(&StateKey::Account(a)));
        assert!(set.declares_write(&StateKey::Account(b)));
        assert!(!set.global);
    }

    #[test]
    fn disjoint_transfers_do_not_conflict() {
        let state = WorldState::new();
        let mk = |s, t| {
            infer_rw_set(
                &transfer_tx(Address::from_seed(s), Address::from_seed(t)),
                ShardId::default(),
                1,
                &state,
                &NullRuntime,
            )
        };
        assert!(!mk(1, 2).conflicts_with(&mk(3, 4)));
        assert!(mk(1, 2).conflicts_with(&mk(2, 3)), "shared recipient/sender account");
        assert!(mk(1, 2).conflicts_with(&mk(1, 4)), "shared sender account");
    }

    #[test]
    fn invoke_of_unknown_code_is_global() {
        let a = Address::from_seed(1);
        let tx = Transaction::new(
            a,
            0,
            TxPayload::Invoke { contract: Address::from_seed(9), input: Vec::new() },
            100,
        );
        let set = infer_rw_set(&tx, ShardId::default(), 1, &WorldState::new(), &NullRuntime);
        assert!(set.global);
    }

    #[test]
    fn invoke_with_self_contained_runtime_is_keyed() {
        // NullRuntime rejects invokes without touching state, so its
        // code_scope is SelfContained and a known address stays keyed.
        let a = Address::from_seed(1);
        let c = Address::from_seed(9);
        let mut state = WorldState::new();
        state.set_code(c, vec![1, 2, 3]);
        let tx =
            Transaction::new(a, 0, TxPayload::Invoke { contract: c, input: Vec::new() }, 100);
        let set = infer_rw_set(&tx, ShardId::default(), 1, &state, &NullRuntime);
        assert!(!set.global);
        assert!(set.declares_write(&StateKey::Contract(c)));
    }

    #[test]
    fn anchor_and_crosslink_are_label_keyed() {
        let a = Address::from_seed(1);
        let anchor = Transaction::new(
            a,
            0,
            TxPayload::Anchor { root: crate::hash::Hash256::digest(b"d"), label: "l1".into() },
            100,
        );
        let set =
            infer_rw_set(&anchor, ShardId::default(), 1, &WorldState::new(), &NullRuntime);
        assert!(set.declares_write(&StateKey::Anchor("l1".into())));
        assert!(!set.declares(&StateKey::Anchor("l2".into())));
    }
}

//! Network seam — re-exported from `medchain-transport`.
//!
//! The discrete-event simulator, the `Transport` trait, and the socket
//! and fault-injection transports all live in the `medchain-transport`
//! crate (so they can be shared with the off-chain plane without a
//! dependency cycle). This module re-exports them under their historical
//! paths: `medchain_chain::net::SimNetwork` and friends keep working,
//! and the simulator's event enum keeps its old `SimEvent` name here.

pub use medchain_transport::{
    parse_addr_list, Event as SimEvent, FaultyTransport, LatencyModel, NetStats, NodeId,
    SimNetwork, SimTransport, TcpTransport, Transport, Wire, DEFAULT_WRITER_QUEUE_CAP,
    FAULT_WAKE_TOKEN, FRAME_OVERHEAD, TCP_ADDRS_ENV,
};

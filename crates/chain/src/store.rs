//! The [`BlockStore`] trait — the ledger's durable-persistence hook.
//!
//! The ledger calls [`BlockStore::append`] *before* committing a block
//! to memory (write-ahead ordering): a block is either on disk and in
//! memory, or in neither. Implementations decide what "on disk" means —
//! [`MemStore`] keeps everything in memory (the default behaviour of a
//! ledger with no store attached is unchanged: no store, no overhead),
//! while `medchain-storage`'s `DiskStore` runs a segmented CRC-framed
//! write-ahead log with periodic world-state snapshots and crash
//! recovery.
//!
//! One store persists *one* sub-chain: the trait knows nothing about
//! sharding. A sharded consortium (DESIGN.md §9) simply opens one store
//! per (shard, site) pair under `root/shard-<s>/site-<j>` — plus
//! `root/coordinator/site-<i>` for the coordinator chain — and each
//! recovers independently through the same replay-and-validate path as
//! a single chain. Cross-shard consistency is re-established *above*
//! this layer: after every store has recovered, `ShardedNetwork` audits
//! each sub-chain tip against the newest cross-link records replayed
//! from the coordinator's own store, so a rolled-back or forked
//! sub-chain fails the restart instead of silently rejoining consensus.
//!
//! Contract for implementors, in order of importance:
//!
//! 1. **Atomic append or error.** If [`BlockStore::append`] returns
//!    `Ok`, the block must survive a crash; if it returns `Err`, the
//!    ledger never commits the block, so the store must not expose a
//!    partial record to recovery (torn tails are truncated, not
//!    parsed).
//! 2. **Contiguous heights.** Appends arrive in height order;
//!    implementations reject gaps with [`StoreError::HeightGap`].
//! 3. **Snapshots are an optimization, not a source of truth.** A
//!    snapshot may only replace replay for the prefix it covers;
//!    everything after it is re-validated block by block.

use crate::block::Block;
use crate::ledger::WorldState;
use std::fmt;

/// Errors from a block store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O operation failed.
    Io(String),
    /// A stored record failed its integrity check.
    Corrupt {
        /// Which file.
        file: String,
        /// Byte offset of the bad record.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// An appended block does not extend the last stored height.
    HeightGap {
        /// Height the store expected next.
        expected: u64,
        /// Height the block carried.
        got: u64,
    },
    /// Recovery could not reconstruct a consistent ledger.
    Recovery(String),
    /// The configured fault injector simulated a crash mid-append.
    InjectedCrash,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Corrupt { file, offset, reason } => {
                write!(f, "corrupt record in {file} at offset {offset}: {reason}")
            }
            StoreError::HeightGap { expected, got } => {
                write!(f, "append height gap: expected {expected}, got {got}")
            }
            StoreError::Recovery(e) => write!(f, "recovery failed: {e}"),
            StoreError::InjectedCrash => f.write_str("simulated crash mid-append"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e.to_string())
    }
}

/// Durable persistence hook for the ledger commit path.
///
/// `append` receives the block *and* the post-execution world state, so
/// implementations can write periodic state snapshots without replaying.
pub trait BlockStore: Send {
    /// Persists `block` (post-execution state `post_state`).
    ///
    /// Called by [`crate::ledger::Ledger::apply`] after validation and
    /// execution but **before** the in-memory commit; returning an error
    /// aborts the commit, leaving the ledger unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the block could not be made durable.
    fn append(&mut self, block: &Block, post_state: &WorldState) -> Result<(), StoreError>;

    /// Forces buffered data to durable storage.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure.
    fn flush(&mut self) -> Result<(), StoreError>;
}

/// In-memory [`BlockStore`]: retains appended blocks (and the latest
/// state) without touching disk. Preserves today's default semantics
/// while letting tests and simulations exercise the store wiring.
#[derive(Debug, Default)]
pub struct MemStore {
    blocks: Vec<Block>,
    latest_state: Option<WorldState>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Blocks appended so far, oldest first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of appended blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no block has been appended.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The world state after the most recent append.
    pub fn latest_state(&self) -> Option<&WorldState> {
        self.latest_state.as_ref()
    }
}

impl BlockStore for MemStore {
    fn append(&mut self, block: &Block, post_state: &WorldState) -> Result<(), StoreError> {
        if let Some(last) = self.blocks.last() {
            let expected = last.header.height + 1;
            if block.header.height != expected {
                return Err(StoreError::HeightGap { expected, got: block.header.height });
            }
        }
        self.blocks.push(block.clone());
        self.latest_state = Some(post_state.clone());
        Ok(())
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_tracks_appends_in_order() {
        let mut store = MemStore::new();
        assert!(store.is_empty());
        let genesis = Block::genesis("t");
        let mut b1 = Block::genesis("t");
        b1.header.height = 1;
        b1.header.parent = genesis.id();
        store.append(&b1, &WorldState::new()).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.latest_state().is_some());
        // A height gap is rejected.
        let mut b3 = b1.clone();
        b3.header.height = 3;
        assert_eq!(
            store.append(&b3, &WorldState::new()),
            Err(StoreError::HeightGap { expected: 2, got: 3 })
        );
        store.flush().unwrap();
    }

    #[test]
    fn store_error_display_is_informative() {
        let e = StoreError::Corrupt {
            file: "seg-1.wal".into(),
            offset: 42,
            reason: "crc mismatch".into(),
        };
        assert!(e.to_string().contains("seg-1.wal"));
        assert!(e.to_string().contains("42"));
        assert!(StoreError::from(std::io::Error::other("boom")).to_string().contains("boom"));
    }
}

//! Energy accounting for consensus work.
//!
//! The paper's §I motivates the whole architecture with the energy wasted
//! by duplicated computing, citing Digiconomist's estimate that Bitcoin
//! verification consumed **30.14 TWh/year** — more than Ireland. This
//! module converts the work counters collected by the consensus engines
//! ([`WorkCounters`]) and the ledger ([`LedgerStats`]) into joules, and
//! splits them into *consensus overhead* versus *useful computation* so
//! experiment E3 can report the useful-work fraction of each mechanism.

use crate::consensus::WorkCounters;
use crate::ledger::LedgerStats;

/// Digiconomist annual Bitcoin energy estimate cited by the paper (TWh).
pub const DIGICONOMIST_BITCOIN_TWH_2017: f64 = 30.14;
/// Approximate Bitcoin network hash rate at the time of the estimate
/// (hashes per second, ~13 EH/s in late 2017).
pub const BITCOIN_HASHRATE_2017: f64 = 13.0e18;
/// Seconds per year.
pub const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// Joules attributed to each primitive operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Joules per hash evaluation.
    pub joules_per_hash: f64,
    /// Joules per signature creation.
    pub joules_per_signature: f64,
    /// Joules per signature verification.
    pub joules_per_verification: f64,
    /// Joules per unit of contract gas (useful computation).
    pub joules_per_gas: f64,
}

impl EnergyModel {
    /// ASIC miner efficiency, calibrated so that the 2017 Bitcoin network
    /// dissipates the Digiconomist figure:
    /// `J/hash = 30.14 TWh / (hashrate × seconds-per-year)` ≈ 2.6e-10 J
    /// (30.14e12 Wh × 3600 s/h ÷ (13e18 H/s × 31 557 600 s) ≈ 2.645e-10).
    pub fn asic_calibrated() -> EnergyModel {
        let joules_per_hash =
            DIGICONOMIST_BITCOIN_TWH_2017 * 1e12 * 3600.0 / (BITCOIN_HASHRATE_2017 * SECONDS_PER_YEAR);
        EnergyModel {
            joules_per_hash,
            joules_per_signature: joules_per_hash * 2.0,
            joules_per_verification: joules_per_hash * 2.0,
            joules_per_gas: 1e-7,
        }
    }

    /// General-purpose CPU costs (hospital servers running a permissioned
    /// chain): ~100 nJ per SHA-256 block.
    pub fn cpu() -> EnergyModel {
        EnergyModel {
            joules_per_hash: 1e-7,
            joules_per_signature: 2e-7,
            joules_per_verification: 2e-7,
            joules_per_gas: 1e-7,
        }
    }

    /// Energy attributable to consensus work (overhead).
    pub fn consensus_joules(&self, work: &WorkCounters) -> f64 {
        work.hashes as f64 * self.joules_per_hash
            + work.signatures as f64 * self.joules_per_signature
            + work.verifications as f64 * self.joules_per_verification
    }

    /// Energy attributable to transaction execution. Under duplicated
    /// computing this is burned once *per replica*.
    pub fn execution_joules(&self, stats: &LedgerStats) -> f64 {
        stats.gas_used as f64 * self.joules_per_gas
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::cpu()
    }
}

/// An energy breakdown for one consensus run, produced by experiment E3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Joules spent on consensus overhead (hashing, votes).
    pub consensus_joules: f64,
    /// Joules spent executing transactions, summed over all replicas.
    pub execution_joules: f64,
    /// Joules of execution that were *useful* (one copy of the work).
    pub useful_joules: f64,
}

impl EnergyReport {
    /// Builds a report for a cluster of `replica_count` nodes that each
    /// executed the same transactions (duplicated computing): useful work
    /// is one replica's share.
    pub fn duplicated(
        model: &EnergyModel,
        work: &WorkCounters,
        per_replica: &LedgerStats,
        replica_count: usize,
    ) -> EnergyReport {
        let one = model.execution_joules(per_replica);
        EnergyReport {
            consensus_joules: model.consensus_joules(work),
            execution_joules: one * replica_count as f64,
            useful_joules: one,
        }
    }

    /// Total joules.
    pub fn total_joules(&self) -> f64 {
        self.consensus_joules + self.execution_joules
    }

    /// Fraction of all energy that did useful (non-duplicated,
    /// non-consensus) work. The paper's argument is that this fraction is
    /// tiny for PoW and grows toward 1 under the transformed architecture.
    pub fn useful_fraction(&self) -> f64 {
        if self.total_joules() == 0.0 {
            return 0.0;
        }
        self.useful_joules / self.total_joules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asic_calibration_matches_digiconomist() {
        let model = EnergyModel::asic_calibrated();
        // Network-wide annual energy at calibration hashrate.
        let annual_joules =
            model.joules_per_hash * BITCOIN_HASHRATE_2017 * SECONDS_PER_YEAR;
        let annual_twh = annual_joules / 3600.0 / 1e12;
        assert!((annual_twh - DIGICONOMIST_BITCOIN_TWH_2017).abs() < 1e-6);
    }

    #[test]
    fn asic_joules_per_hash_is_about_2_6e_minus_10() {
        // Pins the calibrated value the doc comment quotes; the old
        // comment claimed ≈1e-10, off by ~2.6×.
        let model = EnergyModel::asic_calibrated();
        assert!(
            (model.joules_per_hash - 2.645e-10).abs() < 0.005e-10,
            "joules_per_hash = {}",
            model.joules_per_hash
        );
    }

    #[test]
    fn useful_fraction_shrinks_with_replica_count() {
        let model = EnergyModel::cpu();
        let work = WorkCounters { hashes: 1_000, signatures: 100, verifications: 400 };
        let stats = LedgerStats { blocks: 10, transactions: 100, gas_used: 1_000_000, failed: 0 };
        let few = EnergyReport::duplicated(&model, &work, &stats, 2);
        let many = EnergyReport::duplicated(&model, &work, &stats, 32);
        assert!(many.useful_fraction() < few.useful_fraction());
        assert!(many.execution_joules > few.execution_joules);
        assert_eq!(many.useful_joules, few.useful_joules);
    }

    #[test]
    fn pow_grinding_dwarfs_execution() {
        let model = EnergyModel::cpu();
        // A million grinding hashes vs a small contract call.
        let work = WorkCounters { hashes: 10_000_000, signatures: 10, verifications: 10 };
        let stats = LedgerStats { blocks: 10, transactions: 10, gas_used: 10_000, failed: 0 };
        let report = EnergyReport::duplicated(&model, &work, &stats, 4);
        assert!(report.consensus_joules > report.execution_joules * 100.0);
        assert!(report.useful_fraction() < 0.01);
    }

    #[test]
    fn zero_work_reports_zero_fraction() {
        let report = EnergyReport::duplicated(
            &EnergyModel::cpu(),
            &WorkCounters::default(),
            &LedgerStats::default(),
            4,
        );
        assert_eq!(report.useful_fraction(), 0.0);
    }
}

//! Merkle trees over transaction and record hashes.
//!
//! Used for block transaction commitments and for anchoring off-chain
//! medical datasets: a hospital commits the Merkle root of its records
//! on-chain, and can later prove membership of any single record without
//! revealing the rest — the Irving–Holden integrity pattern the paper
//! cites (§III-A).

use crate::hash::Hash256;

/// A Merkle tree, stored level by level (leaves first).
///
/// Odd nodes are paired with themselves, as in Bitcoin.
///
/// # Examples
///
/// ```
/// use medchain_chain::hash::Hash256;
/// use medchain_chain::merkle::MerkleTree;
///
/// let leaves: Vec<Hash256> = (0..5u8)
///     .map(|i| Hash256::digest(&[i]))
///     .collect();
/// let tree = MerkleTree::from_leaves(leaves.clone());
/// let proof = tree.prove(3).unwrap();
/// assert!(proof.verify(&leaves[3], &tree.root()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    levels: Vec<Vec<Hash256>>,
}

impl MerkleTree {
    /// Builds a tree from leaf digests.
    ///
    /// An empty leaf set produces the conventional empty root
    /// `SHA-256("")`.
    pub fn from_leaves(leaves: Vec<Hash256>) -> MerkleTree {
        if leaves.is_empty() {
            return MerkleTree { levels: vec![vec![Hash256::digest(b"")]] };
        }
        let mut levels = vec![leaves];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let right = pair.get(1).unwrap_or(&pair[0]);
                next.push(Hash256::combine(&pair[0], right));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Builds a tree by hashing arbitrary serialized items.
    pub fn from_items<I, T>(items: I) -> MerkleTree
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]>,
    {
        Self::from_leaves(items.into_iter().map(|i| Hash256::digest(i.as_ref())).collect())
    }

    /// The root commitment.
    pub fn root(&self) -> Hash256 {
        self.levels.last().expect("at least one level")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Returns the leaf digests.
    pub fn leaves(&self) -> &[Hash256] {
        &self.levels[0]
    }

    /// Builds a membership proof for the leaf at `index`.
    ///
    /// Returns `None` if `index` is out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut path = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if i.is_multiple_of(2) {
                // Right sibling, or self-pair at the edge.
                *level.get(i + 1).unwrap_or(&level[i])
            } else {
                level[i - 1]
            };
            path.push(ProofStep { sibling, sibling_is_right: i.is_multiple_of(2) });
            i /= 2;
        }
        Some(MerkleProof { leaf_index: index, path })
    }
}

/// One step of a Merkle proof: the sibling digest and its side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling node's digest.
    pub sibling: Hash256,
    /// True if the sibling sits to the right of the running hash.
    pub sibling_is_right: bool,
}

/// A Merkle membership proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Root-ward path of sibling digests.
    pub path: Vec<ProofStep>,
}

impl MerkleProof {
    /// Verifies that `leaf` is committed under `root`.
    pub fn verify(&self, leaf: &Hash256, root: &Hash256) -> bool {
        let mut acc = *leaf;
        for step in &self.path {
            acc = if step.sibling_is_right {
                Hash256::combine(&acc, &step.sibling)
            } else {
                Hash256::combine(&step.sibling, &acc)
            };
        }
        acc == *root
    }

    /// Proof size in bytes when serialized (one digest + flag per step).
    pub fn size_bytes(&self) -> usize {
        self.path.len() * 33 + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Hash256> {
        (0..n).map(|i| Hash256::digest(&(i as u64).to_le_bytes())).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaves(1);
        assert_eq!(MerkleTree::from_leaves(l.clone()).root(), l[0]);
    }

    #[test]
    fn empty_tree_has_conventional_root() {
        assert_eq!(MerkleTree::from_leaves(Vec::new()).root(), Hash256::digest(b""));
    }

    #[test]
    fn proofs_verify_for_all_sizes_and_indices() {
        for n in 1..=17 {
            let l = leaves(n);
            let tree = MerkleTree::from_leaves(l.clone());
            for (i, leaf) in l.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(proof.verify(leaf, &tree.root()), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf() {
        let l = leaves(8);
        let tree = MerkleTree::from_leaves(l.clone());
        let proof = tree.prove(2).unwrap();
        assert!(!proof.verify(&l[3], &tree.root()));
        assert!(!proof.verify(&Hash256::digest(b"forged"), &tree.root()));
    }

    #[test]
    fn proof_fails_for_wrong_root() {
        let l = leaves(6);
        let tree = MerkleTree::from_leaves(l.clone());
        let other = MerkleTree::from_leaves(leaves(7));
        let proof = tree.prove(0).unwrap();
        assert!(!proof.verify(&l[0], &other.root()));
    }

    #[test]
    fn out_of_range_index_returns_none() {
        assert!(MerkleTree::from_leaves(leaves(4)).prove(4).is_none());
    }

    #[test]
    fn root_changes_when_any_leaf_changes() {
        let mut l = leaves(9);
        let original = MerkleTree::from_leaves(l.clone()).root();
        l[4] = Hash256::digest(b"tampered record");
        assert_ne!(MerkleTree::from_leaves(l).root(), original);
    }

    #[test]
    fn from_items_hashes_contents() {
        let tree = MerkleTree::from_items(["a", "b", "c"]);
        assert_eq!(tree.leaf_count(), 3);
        assert_eq!(tree.leaves()[0], Hash256::digest(b"a"));
    }
}

mod codec_impls {
    use super::{MerkleProof, ProofStep};
    use medchain_runtime::impl_codec_struct;

    impl_codec_struct!(ProofStep { sibling, sibling_is_right });
    impl_codec_struct!(MerkleProof { leaf_index, path });
}

//! Round-robin proof-of-authority consensus.
//!
//! The proposer for height `h` is `validators[h % n]`. The proposer
//! builds a candidate from its mempool, signs and broadcasts it; every
//! validator checks the proposal, broadcasts a vote, and commits once a
//! two-thirds quorum of votes for the same block id accumulates. This is
//! the consortium-chain model (cf. Hyperledger Fabric / EEA private
//! chains in paper §I) used as the default substrate everywhere else in
//! the reproduction.

use crate::block::{Block, Seal};
use crate::consensus::{two_thirds_quorum, Application, Engine, Outbox, WorkCounters};
use crate::hash::Hash256;
use crate::net::{NodeId, Wire};
use crate::sig::{Address, AuthorityKey, AuthoritySignature, KeyRegistry};
use std::collections::{BTreeMap, HashMap};

/// Wire messages of the PoA protocol.
#[derive(Debug, Clone)]
pub enum PoaMsg {
    /// A signed block proposal for `height`.
    Proposal {
        /// Proposed block (unsealed).
        block: Block,
        /// Proposer signature over the header digest.
        sig: AuthoritySignature,
    },
    /// A validator's vote for a block id.
    Vote {
        /// Voted block height.
        height: u64,
        /// Voted block id.
        block_id: Hash256,
        /// Voter signature over the block id.
        sig: AuthoritySignature,
    },
    /// Catch-up probe from a lagging node: "I have up to `have`".
    SyncRequest {
        /// Sender's committed height.
        have: u64,
    },
    /// Sealed blocks answering a [`PoaMsg::SyncRequest`].
    SyncResponse {
        /// Contiguous sealed blocks starting at the requester's
        /// `have + 1`.
        blocks: Vec<Block>,
    },
}

medchain_runtime::impl_codec_enum!(PoaMsg {
    0 => Proposal { block, sig },
    1 => Vote { height, block_id, sig },
    2 => SyncRequest { have },
    3 => SyncResponse { blocks },
});

impl Wire for PoaMsg {
    fn wire_size(&self) -> usize {
        use medchain_runtime::codec::Encode;
        self.encoded().len()
    }
}

const TICK: u64 = 0;

#[derive(Debug, Default)]
struct HeightState {
    block: Option<Block>,
    proposer_sig: Option<AuthoritySignature>,
    votes: HashMap<Hash256, BTreeMap<Address, AuthoritySignature>>,
    voted: bool,
}

/// Proof-of-authority engine for one validator.
#[derive(Debug)]
pub struct PoaEngine {
    node: NodeId,
    key: AuthorityKey,
    validators: Vec<Address>,
    registry: KeyRegistry,
    block_interval_ms: u64,
    heights: HashMap<u64, HeightState>,
    proposed_at: Option<u64>,
    last_tick_height: u64,
    work: WorkCounters,
}

impl PoaEngine {
    /// Creates the engine for `node`, whose key must be
    /// `validators[node.0]`.
    ///
    /// # Panics
    ///
    /// Panics if the key's address does not match its validator slot.
    pub fn new(
        node: NodeId,
        key: AuthorityKey,
        validators: Vec<Address>,
        registry: KeyRegistry,
        block_interval_ms: u64,
    ) -> PoaEngine {
        assert_eq!(validators[node.0], key.address(), "validator slot mismatch");
        PoaEngine {
            node,
            key,
            validators,
            registry,
            block_interval_ms,
            heights: HashMap::new(),
            proposed_at: None,
            last_tick_height: 0,
            work: WorkCounters::default(),
        }
    }

    fn proposer_for(&self, height: u64) -> Address {
        self.validators[(height % self.validators.len() as u64) as usize]
    }

    fn quorum(&self) -> usize {
        two_thirds_quorum(self.validators.len())
    }

    /// Builds a convenience cluster of `n` PoA validators.
    ///
    /// Returns the engines plus the shared registry and validator set.
    pub fn make_validators(
        n: usize,
        block_interval_ms: u64,
    ) -> (Vec<PoaEngine>, KeyRegistry, Vec<Address>) {
        let keys: Vec<AuthorityKey> = (0..n).map(|i| AuthorityKey::from_seed(i as u64)).collect();
        let mut registry = KeyRegistry::new();
        for k in &keys {
            registry.enroll(k);
        }
        let validators: Vec<Address> = keys.iter().map(AuthorityKey::address).collect();
        let engines = keys
            .into_iter()
            .enumerate()
            .map(|(i, key)| {
                PoaEngine::new(
                    NodeId(i),
                    key,
                    validators.clone(),
                    registry.clone(),
                    block_interval_ms,
                )
            })
            .collect();
        (engines, registry, validators)
    }

    fn maybe_propose(&mut self, app: &mut dyn Application, out: &mut Outbox<PoaMsg>) {
        let next = app.height() + 1;
        if self.proposer_for(next) != self.key.address() || self.proposed_at == Some(next) {
            return;
        }
        self.proposed_at = Some(next);
        let block = app.make_block(self.key.address(), out.now_ms);
        let sig = self.key.sign(&block.id().0);
        self.work.signatures += 1;
        self.work.hashes += 1;
        // Deliver to self directly, then broadcast.
        self.accept_proposal(block.clone(), sig, app, out);
        out.broadcast(PoaMsg::Proposal { block, sig });
    }

    fn accept_proposal(
        &mut self,
        block: Block,
        sig: AuthoritySignature,
        app: &mut dyn Application,
        out: &mut Outbox<PoaMsg>,
    ) {
        let height = block.header.height;
        if height <= app.height() {
            return; // stale
        }
        self.work.verifications += 1;
        if sig.signer != self.proposer_for(height)
            || block.header.proposer != sig.signer
            || !self.registry.verify(&block.id().0, &sig)
        {
            return; // wrong or forged proposer
        }
        let entry = self.heights.entry(height).or_default();
        if entry.block.is_some() {
            return; // first valid proposal wins within a height
        }
        entry.block = Some(block.clone());
        entry.proposer_sig = Some(sig);
        self.try_vote(height, app, out);
        self.try_commit(app, out);
    }

    fn try_vote(&mut self, height: u64, app: &mut dyn Application, out: &mut Outbox<PoaMsg>) {
        if height != app.height() + 1 {
            return; // only vote for the immediate next height
        }
        let Some(entry) = self.heights.get_mut(&height) else { return };
        if entry.voted {
            return;
        }
        let Some(block) = entry.block.clone() else { return };
        if !app.validate_block(&block) {
            return;
        }
        entry.voted = true;
        let block_id = block.id();
        let sig = self.key.sign(&block_id.0);
        self.work.signatures += 1;
        let vote = PoaMsg::Vote { height, block_id, sig };
        // Record own vote locally, then broadcast it.
        self.record_vote(height, block_id, sig);
        out.broadcast(vote);
    }

    fn record_vote(&mut self, height: u64, block_id: Hash256, sig: AuthoritySignature) {
        self.heights
            .entry(height)
            .or_default()
            .votes
            .entry(block_id)
            .or_default()
            .insert(sig.signer, sig);
    }

    fn try_commit(&mut self, app: &mut dyn Application, out: &mut Outbox<PoaMsg>) {
        loop {
            let next = app.height() + 1;
            let quorum = self.quorum();
            let Some(entry) = self.heights.get(&next) else { return };
            let Some(block) = entry.block.clone() else { return };
            let id = block.id();
            let Some(votes) = entry.votes.get(&id) else { return };
            if votes.len() < quorum {
                return;
            }
            let mut sealed = block;
            sealed.seal = Seal::Authority {
                proposer: entry.proposer_sig.expect("proposal recorded with signature"),
                votes: votes.values().copied().collect(),
            };
            if !app.commit_block(&sealed) {
                return;
            }
            self.heights.remove(&next);
            // Vote for a buffered next-height proposal if one is waiting;
            // our own next proposal happens on the next tick (bounded
            // stack: no propose→commit recursion within one event).
            self.try_vote(app.height() + 1, app, out);
        }
    }
}

impl PoaEngine {
    /// Verifies an authority seal: correct proposer signature and a
    /// two-thirds vote quorum from enrolled validators, all over the
    /// block id. Used when committing synced blocks, whose quorum
    /// evidence arrives in the seal rather than as live votes.
    fn verify_seal(&mut self, block: &Block) -> bool {
        let Seal::Authority { proposer, votes } = &block.seal else { return false };
        let id = block.id();
        self.work.verifications += 1;
        if proposer.signer != self.proposer_for(block.header.height)
            || !self.registry.verify(&id.0, proposer)
        {
            return false;
        }
        let mut signers = std::collections::BTreeSet::new();
        for vote in votes {
            self.work.verifications += 1;
            if self.registry.verify(&id.0, vote) {
                signers.insert(vote.signer);
            }
        }
        signers.len() >= self.quorum()
    }

    /// Serves a lagging peer with up to 16 sealed blocks.
    fn handle_sync_request(
        &mut self,
        from: NodeId,
        have: u64,
        app: &mut dyn Application,
        out: &mut Outbox<PoaMsg>,
    ) {
        if have >= app.height() {
            return;
        }
        let to = (have + 16).min(app.height());
        let blocks: Vec<Block> =
            (have + 1..=to).filter_map(|h| app.sealed_block(h)).collect();
        if !blocks.is_empty() {
            out.send(from, PoaMsg::SyncResponse { blocks });
        }
    }

    /// Applies synced blocks in order, verifying each seal.
    fn handle_sync_response(
        &mut self,
        blocks: Vec<Block>,
        app: &mut dyn Application,
        out: &mut Outbox<PoaMsg>,
    ) {
        for block in blocks {
            if block.header.height != app.height() + 1 {
                continue;
            }
            if !self.verify_seal(&block) || !app.commit_block(&block) {
                break;
            }
            self.heights.remove(&block.header.height);
        }
        // Fresh evidence may already be buffered for the next height.
        self.try_vote(app.height() + 1, app, out);
        self.try_commit(app, out);
    }
}

impl Engine for PoaEngine {
    type Msg = PoaMsg;

    fn node(&self) -> NodeId {
        self.node
    }

    fn start(&mut self, app: &mut dyn Application, out: &mut Outbox<PoaMsg>) {
        // A (re)start forgets any in-flight proposal so a healed node can
        // re-propose its height (peers keep the first proposal they saw).
        self.proposed_at = None;
        self.maybe_propose(app, out);
        out.set_timer_in(self.block_interval_ms, TICK);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: PoaMsg,
        app: &mut dyn Application,
        out: &mut Outbox<PoaMsg>,
    ) {
        match msg {
            PoaMsg::Proposal { block, sig } => self.accept_proposal(block, sig, app, out),
            PoaMsg::Vote { height, block_id, sig } => {
                if height <= app.height() {
                    return;
                }
                self.work.verifications += 1;
                if !self.registry.verify(&block_id.0, &sig) {
                    return;
                }
                self.record_vote(height, block_id, sig);
                self.try_commit(app, out);
            }
            PoaMsg::SyncRequest { have } => self.handle_sync_request(from, have, app, out),
            PoaMsg::SyncResponse { blocks } => self.handle_sync_response(blocks, app, out),
        }
    }

    fn on_timer(&mut self, token: u64, app: &mut dyn Application, out: &mut Outbox<PoaMsg>) {
        debug_assert_eq!(token, TICK);
        self.maybe_propose(app, out);
        self.try_vote(app.height() + 1, app, out);
        self.try_commit(app, out);
        // Stall detection: no progress since the previous tick means we
        // may have missed blocks (e.g. after a heal) — probe for catch-up.
        if app.height() == self.last_tick_height {
            out.broadcast(PoaMsg::SyncRequest { have: app.height() });
        }
        self.last_tick_height = app.height();
        out.set_timer_in(self.block_interval_ms, TICK);
    }

    fn work(&self) -> WorkCounters {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::Cluster;
    use crate::node::ChainApp;

    fn cluster(n: usize) -> Cluster<PoaEngine, ChainApp> {
        let (engines, registry, validators) = PoaEngine::make_validators(n, 50);
        let apps = validators
            .iter()
            .map(|_| ChainApp::new("poa-test", registry.clone()))
            .collect();
        Cluster::new(engines, apps, 99)
    }

    #[test]
    fn empty_blocks_advance_all_nodes() {
        let mut c = cluster(4);
        let report = c.run_until_height(5, 60_000);
        assert!(report.reached, "cluster stalled: {report:?}");
        for r in &c.replicas {
            assert!(r.app.height() >= 5);
        }
    }

    #[test]
    fn single_validator_commits_alone() {
        let mut c = cluster(1);
        let report = c.run_until_height(3, 10_000);
        assert!(report.reached);
    }

    #[test]
    fn all_nodes_agree_on_block_ids() {
        let mut c = cluster(5);
        c.run_until_height(4, 60_000);
        let ids: Vec<Hash256> = c.replicas.iter().map(|r| r.app.tip_at(4)).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]), "divergent chains: {ids:?}");
    }

    #[test]
    fn proposers_rotate() {
        let mut c = cluster(3);
        c.run_until_height(6, 60_000);
        let proposers: Vec<Address> = (1..=6)
            .map(|h| c.replicas[0].app.ledger().block(h).unwrap().header.proposer)
            .collect();
        // Round-robin: consecutive proposers differ, pattern repeats mod 3.
        assert_ne!(proposers[0], proposers[1]);
        assert_eq!(proposers[0], proposers[3]);
        assert_eq!(proposers[1], proposers[4]);
    }

    #[test]
    fn committed_blocks_carry_quorum_seals() {
        let mut c = cluster(4);
        c.run_until_height(2, 60_000);
        let block = c.replicas[0].app.ledger().block(1).unwrap().clone();
        match block.seal {
            Seal::Authority { votes, .. } => assert!(votes.len() >= two_thirds_quorum(4)),
            other => panic!("expected authority seal, got {other:?}"),
        }
    }

    #[test]
    fn survives_minority_node_failure() {
        let mut c = cluster(4);
        c.run_until_height(1, 60_000);
        // Fail one non-essential validator: quorum of 3 of 4 remains
        // reachable, but round-robin skips stall when the failed node is
        // proposer — liveness holds because other proposers continue at
        // their heights. Node 3 proposes heights 3, 7, ...
        c.net.fail_node(NodeId(3));
        let report = c.run_until_height(2, 120_000);
        assert!(report.reached, "cluster should reach height 2 without node 3");
    }
}

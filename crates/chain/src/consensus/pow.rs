//! Proof-of-work consensus with real hash grinding.
//!
//! Every miner repeatedly hashes candidate headers; the winning nonce is
//! broadcast and the longest chain wins. Difficulty is kept low enough to
//! run on a laptop, but the hashes are *real* SHA-256 evaluations and are
//! counted per node — the input to experiment E3's energy model, which
//! reproduces the paper's Digiconomist-based waste argument (§I).
//!
//! Fork policy: first-seen per height; competing blocks are counted as
//! stale. Deep reorganisations are out of scope for the simulation (the
//! experiments use LAN latencies and calibrated difficulty where forks
//! are rare) and are surfaced via [`PowEngine::stale_blocks`].

use crate::block::{Block, Seal};
use crate::consensus::{Application, Engine, Outbox, WorkCounters};
use crate::net::{NodeId, Wire};
use crate::sig::AuthorityKey;
use std::collections::HashMap;

/// Wire messages of the PoW protocol.
#[derive(Debug, Clone)]
pub enum PowMsg {
    /// A newly mined block.
    NewBlock(Block),
}

medchain_runtime::impl_codec_enum!(PowMsg {
    0 => NewBlock(block),
});

impl Wire for PowMsg {
    fn wire_size(&self) -> usize {
        use medchain_runtime::codec::Encode;
        self.encoded().len()
    }
}

const MINE_TICK: u64 = 0;

/// Proof-of-work miner for one node.
#[derive(Debug)]
pub struct PowEngine {
    node: NodeId,
    key: AuthorityKey,
    difficulty_bits: u32,
    /// Simulated hash rate in hashes per second.
    hashrate: u64,
    /// Length of one mining slot in simulated milliseconds.
    slot_ms: u64,
    candidate: Option<Block>,
    next_nonce: u64,
    buffered: HashMap<u64, Block>,
    stale: u64,
    work: WorkCounters,
}

impl PowEngine {
    /// Creates a miner.
    ///
    /// `difficulty_bits` is the required number of leading zero bits;
    /// expected work per block is `2^difficulty_bits` hashes split across
    /// all miners.
    pub fn new(
        node: NodeId,
        key: AuthorityKey,
        difficulty_bits: u32,
        hashrate: u64,
        slot_ms: u64,
    ) -> PowEngine {
        PowEngine {
            node,
            key,
            difficulty_bits,
            hashrate,
            slot_ms,
            candidate: None,
            next_nonce: 0,
            buffered: HashMap::new(),
            stale: 0,
            work: WorkCounters::default(),
        }
    }

    /// Builds `n` miners with equal hash rate.
    pub fn make_miners(
        n: usize,
        difficulty_bits: u32,
        hashrate: u64,
        slot_ms: u64,
    ) -> Vec<PowEngine> {
        (0..n)
            .map(|i| {
                PowEngine::new(
                    NodeId(i),
                    AuthorityKey::from_seed(i as u64),
                    difficulty_bits,
                    hashrate,
                    slot_ms,
                )
            })
            .collect()
    }

    /// Competing blocks discarded by the first-seen rule.
    pub fn stale_blocks(&self) -> u64 {
        self.stale
    }

    /// Total hash evaluations performed by this miner.
    pub fn hashes(&self) -> u64 {
        self.work.hashes
    }

    fn refresh_candidate(&mut self, app: &mut dyn Application, now_ms: u64) {
        let needs_new = match &self.candidate {
            Some(c) => c.header.height != app.height() + 1 || c.header.parent != app.tip_id(),
            None => true,
        };
        if needs_new {
            self.candidate = Some(app.make_block(self.key.address(), now_ms));
            self.next_nonce = 0;
        }
    }

    fn mine_slot(&mut self, app: &mut dyn Application, out: &mut Outbox<PowMsg>) {
        self.refresh_candidate(app, out.now_ms);
        let attempts = (self.hashrate * self.slot_ms / 1000).max(1);
        let candidate = self.candidate.clone().expect("refreshed above");
        for _ in 0..attempts {
            let nonce = self.next_nonce;
            self.next_nonce += 1;
            self.work.hashes += 1;
            if candidate.header.pow_digest(nonce).leading_zero_bits() >= self.difficulty_bits {
                let mut sealed = candidate;
                sealed.seal = Seal::Work { nonce, difficulty_bits: self.difficulty_bits };
                if app.commit_block(&sealed) {
                    out.broadcast(PowMsg::NewBlock(sealed));
                    self.candidate = None;
                }
                return;
            }
        }
    }

    fn verify_seal(&mut self, block: &Block) -> bool {
        self.work.hashes += 1;
        match block.seal {
            Seal::Work { nonce, difficulty_bits } => {
                difficulty_bits >= self.difficulty_bits
                    && block.header.pow_digest(nonce).leading_zero_bits() >= difficulty_bits
            }
            _ => false,
        }
    }

    fn try_accept(&mut self, block: Block, app: &mut dyn Application) {
        let height = block.header.height;
        if height <= app.height() {
            self.stale += 1;
            return;
        }
        if height == app.height() + 1 && block.header.parent == app.tip_id() {
            if app.validate_block(&block) && app.commit_block(&block) {
                self.candidate = None;
                // A buffered successor may now connect.
                while let Some(next) = self.buffered.remove(&(app.height() + 1)) {
                    if !(next.header.parent == app.tip_id()
                        && app.validate_block(&next)
                        && app.commit_block(&next))
                    {
                        break;
                    }
                }
            } else {
                self.stale += 1;
            }
        } else {
            // Gap or competing branch: keep the first block seen per height.
            self.buffered.entry(height).or_insert(block);
        }
    }
}

impl Engine for PowEngine {
    type Msg = PowMsg;

    fn node(&self) -> NodeId {
        self.node
    }

    fn start(&mut self, _app: &mut dyn Application, out: &mut Outbox<PowMsg>) {
        // Desynchronise slot boundaries slightly by node index.
        out.set_timer_in(self.slot_ms + self.node.0 as u64 % 7, MINE_TICK);
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        msg: PowMsg,
        app: &mut dyn Application,
        _out: &mut Outbox<PowMsg>,
    ) {
        match msg {
            PowMsg::NewBlock(block) => {
                if self.verify_seal(&block) {
                    self.try_accept(block, app);
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, app: &mut dyn Application, out: &mut Outbox<PowMsg>) {
        debug_assert_eq!(token, MINE_TICK);
        self.mine_slot(app, out);
        out.set_timer_in(self.slot_ms, MINE_TICK);
    }

    fn work(&self) -> WorkCounters {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::Cluster;
    use crate::node::ChainApp;
    use crate::sig::KeyRegistry;

    fn cluster(n: usize, difficulty_bits: u32) -> Cluster<PowEngine, ChainApp> {
        let engines = PowEngine::make_miners(n, difficulty_bits, 200_000, 100);
        let mut registry = KeyRegistry::new();
        for i in 0..n {
            registry.enroll(&AuthorityKey::from_seed(i as u64));
        }
        let apps = (0..n).map(|_| ChainApp::new("pow-test", registry.clone())).collect();
        Cluster::new(engines, apps, 21)
    }

    #[test]
    fn miners_find_and_propagate_blocks() {
        let mut c = cluster(3, 12);
        let report = c.run_until_height(3, 600_000);
        assert!(report.reached, "mining stalled: {report:?}");
    }

    #[test]
    fn committed_blocks_have_valid_seals() {
        let mut c = cluster(2, 10);
        c.run_until_height(2, 600_000);
        for h in 1..=2 {
            let block = c.replicas[0].app.ledger().block(h).unwrap();
            match block.seal {
                Seal::Work { nonce, difficulty_bits } => {
                    assert!(
                        block.header.pow_digest(nonce).leading_zero_bits() >= difficulty_bits
                    );
                }
                ref other => panic!("expected work seal, got {other:?}"),
            }
        }
    }

    #[test]
    fn hash_work_scales_with_difficulty() {
        let mut easy = cluster(2, 8);
        let easy_report = easy.run_until_height(3, 600_000);
        let mut hard = cluster(2, 13);
        let hard_report = hard.run_until_height(3, 3_600_000);
        assert!(easy_report.reached && hard_report.reached);
        assert!(
            hard_report.work.hashes > easy_report.work.hashes * 4,
            "difficulty 13 should need ≫ hashes than 8: {} vs {}",
            hard_report.work.hashes,
            easy_report.work.hashes
        );
    }

    #[test]
    fn total_work_grows_with_miner_count() {
        // The duplicated-computing claim: more miners burn more total
        // hashes for the same chain height.
        let mut few = cluster(1, 11);
        let few_report = few.run_until_height(2, 3_600_000);
        let mut many = cluster(6, 11);
        let many_report = many.run_until_height(2, 3_600_000);
        assert!(few_report.reached && many_report.reached);
        assert!(many_report.work.hashes > few_report.work.hashes);
    }
}

#[cfg(test)]
mod fork_tests {
    use super::*;
    use crate::consensus::{Application, Outbox};
    use crate::node::ChainApp;
    use crate::sig::KeyRegistry;

    /// Two competing valid blocks at the same height: first-seen wins,
    /// the loser is counted as stale, and the node never rolls back.
    #[test]
    fn competing_blocks_are_counted_stale() {
        let key_a = AuthorityKey::from_seed(1);
        let key_b = AuthorityKey::from_seed(2);
        let mut registry = KeyRegistry::new();
        registry.enroll(&key_a);
        registry.enroll(&key_b);
        let difficulty = 4u32; // trivially minable in-test
        let mut engine = PowEngine::new(NodeId(0), key_a.clone(), difficulty, 1_000, 100);
        let mut app = ChainApp::new("fork-test", registry.clone());

        // Mine two competing height-1 blocks (different proposers ⇒
        // different ids) with valid seals.
        let mine = |proposer: &AuthorityKey, app: &ChainApp| {
            let mut other = ChainApp::new("fork-test", registry.clone());
            assert_eq!(other.tip_id(), app.tip_id());
            let candidate = other.make_block(proposer.address(), 10);
            let mut nonce = 0u64;
            loop {
                if candidate.header.pow_digest(nonce).leading_zero_bits() >= difficulty {
                    let mut sealed = candidate;
                    sealed.seal = Seal::Work { nonce, difficulty_bits: difficulty };
                    return sealed;
                }
                nonce += 1;
            }
        };
        let block_a = mine(&key_a, &app);
        let block_b = mine(&key_b, &app);
        assert_ne!(block_a.id(), block_b.id());

        let mut out = Outbox::new(0);
        engine.on_message(NodeId(1), PowMsg::NewBlock(block_a.clone()), &mut app, &mut out);
        assert_eq!(app.height(), 1);
        let tip = app.tip_id();
        engine.on_message(NodeId(2), PowMsg::NewBlock(block_b), &mut app, &mut out);
        assert_eq!(app.height(), 1, "no double commit");
        assert_eq!(app.tip_id(), tip, "first-seen block retained");
        assert_eq!(engine.stale_blocks(), 1, "competitor counted stale");
    }

    /// A block with an invalid proof is rejected outright.
    #[test]
    fn invalid_seal_is_rejected() {
        let key = AuthorityKey::from_seed(1);
        let mut registry = KeyRegistry::new();
        registry.enroll(&key);
        let mut engine = PowEngine::new(NodeId(0), key.clone(), 24, 1_000, 100);
        let mut app = ChainApp::new("seal-test", registry.clone());
        let mut other = ChainApp::new("seal-test", registry);
        let mut forged = other.make_block(key.address(), 10);
        forged.seal = Seal::Work { nonce: 0, difficulty_bits: 24 };
        let mut out = Outbox::new(0);
        engine.on_message(NodeId(1), PowMsg::NewBlock(forged), &mut app, &mut out);
        assert_eq!(app.height(), 0, "forged proof must not commit");
    }
}

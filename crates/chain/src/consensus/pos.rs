//! Proof-of-stake slot-lottery consensus ("virtual mining").
//!
//! Reproduces the paper's §I observation: proof of stake removes the
//! energy waste of mining (one lottery hash per node per slot instead of
//! continuous grinding) **but remains duplicated computing** — every node
//! still validates and executes every transaction. Experiment E3 uses
//! both properties.
//!
//! Protocol: time is divided into slots. In each slot every node draws
//! `H(chain_seed ‖ slot ‖ address)`; draws under a stake-proportional
//! threshold make the node a leader. Leaders broadcast a signed proposal;
//! at the next slot boundary every node commits the valid proposal with
//! the lowest draw, which makes tie-breaking deterministic network-wide.

use crate::block::{Block, Seal};
use crate::consensus::{Application, Engine, Outbox, WorkCounters};
use crate::hash::Hash256;
use crate::net::{NodeId, Wire};
use crate::sig::{Address, AuthorityKey, AuthoritySignature, KeyRegistry};
use std::collections::HashMap;

/// Wire messages of the PoS protocol.
#[derive(Debug, Clone)]
pub enum PosMsg {
    /// A slot leader's proposal.
    Proposal {
        /// Slot in which leadership was won.
        slot: u64,
        /// The leader's lottery draw (lower wins ties).
        draw: u64,
        /// Proposed block.
        block: Block,
        /// Leader signature over the block id.
        sig: AuthoritySignature,
    },
}

medchain_runtime::impl_codec_enum!(PosMsg {
    0 => Proposal { slot, draw, block, sig },
});

impl Wire for PosMsg {
    fn wire_size(&self) -> usize {
        use medchain_runtime::codec::Encode;
        self.encoded().len()
    }
}

const SLOT_TICK: u64 = 0;

/// Proof-of-stake engine for one node.
#[derive(Debug)]
pub struct PosEngine {
    node: NodeId,
    key: AuthorityKey,
    registry: KeyRegistry,
    stakes: HashMap<Address, u64>,
    total_stake: u64,
    chain_seed: u64,
    slot_ms: u64,
    /// Expected number of leaders per slot (lottery tuning).
    target_leaders: f64,
    /// Candidate proposals per height, keyed for lowest-draw commit.
    pending: HashMap<u64, (u64, Block, AuthoritySignature)>,
    proposed_slot: Option<u64>,
    work: WorkCounters,
}

impl PosEngine {
    /// Creates a staker. `stakes` maps every participant to its stake.
    pub fn new(
        node: NodeId,
        key: AuthorityKey,
        registry: KeyRegistry,
        stakes: HashMap<Address, u64>,
        chain_seed: u64,
        slot_ms: u64,
        target_leaders: f64,
    ) -> PosEngine {
        let total_stake = stakes.values().sum::<u64>().max(1);
        PosEngine {
            node,
            key,
            registry,
            stakes,
            total_stake,
            chain_seed,
            slot_ms,
            target_leaders,
            pending: HashMap::new(),
            proposed_slot: None,
            work: WorkCounters::default(),
        }
    }

    /// Builds `n` stakers with the given stake distribution (uniform if
    /// `stakes` is `None`).
    pub fn make_stakers(
        n: usize,
        stakes: Option<Vec<u64>>,
        slot_ms: u64,
    ) -> (Vec<PosEngine>, KeyRegistry) {
        let keys: Vec<AuthorityKey> = (0..n).map(|i| AuthorityKey::from_seed(i as u64)).collect();
        let mut registry = KeyRegistry::new();
        for k in &keys {
            registry.enroll(k);
        }
        let stake_values = stakes.unwrap_or_else(|| vec![100; n]);
        let stake_map: HashMap<Address, u64> = keys
            .iter()
            .zip(&stake_values)
            .map(|(k, s)| (k.address(), *s))
            .collect();
        let engines = keys
            .into_iter()
            .enumerate()
            .map(|(i, key)| {
                PosEngine::new(
                    NodeId(i),
                    key,
                    registry.clone(),
                    stake_map.clone(),
                    0xc0ffee,
                    slot_ms,
                    1.2,
                )
            })
            .collect();
        (engines, registry)
    }

    /// The lottery draw of `who` at `slot`: a uniform `u64` derived from
    /// the chain seed.
    pub fn draw(&self, slot: u64, who: &Address) -> u64 {
        let mut bytes = Vec::with_capacity(36);
        bytes.extend_from_slice(&self.chain_seed.to_le_bytes());
        bytes.extend_from_slice(&slot.to_le_bytes());
        bytes.extend_from_slice(&who.0);
        let digest = Hash256::digest(&bytes);
        u64::from_le_bytes(digest.0[..8].try_into().expect("8 bytes"))
    }

    /// Stake-proportional winning threshold for `who`.
    pub fn threshold(&self, who: &Address) -> u64 {
        let stake = self.stakes.get(who).copied().unwrap_or(0);
        let fraction = stake as f64 / self.total_stake as f64 * self.target_leaders;
        (u64::MAX as f64 * fraction.min(1.0)) as u64
    }

    fn is_leader(&self, slot: u64, who: &Address) -> bool {
        self.draw(slot, who) < self.threshold(who)
    }

    fn slot_of(&self, now_ms: u64) -> u64 {
        now_ms / self.slot_ms
    }

    fn commit_best(&mut self, app: &mut dyn Application) {
        while let Some((_, block, sig)) = self.pending.remove(&(app.height() + 1)) {
            let draw = self.draw_of_block(&block, &sig);
            let mut sealed = block;
            sealed.seal = Seal::Stake {
                winner: sig,
                stake: self.stakes.get(&sig.signer).copied().unwrap_or(0),
            };
            let _ = draw;
            if !app.commit_block(&sealed) {
                break;
            }
        }
    }

    fn draw_of_block(&self, block: &Block, sig: &AuthoritySignature) -> u64 {
        self.draw(self.slot_of(block.header.timestamp_ms), &sig.signer)
    }
}

impl Engine for PosEngine {
    type Msg = PosMsg;

    fn node(&self) -> NodeId {
        self.node
    }

    fn start(&mut self, _app: &mut dyn Application, out: &mut Outbox<PosMsg>) {
        out.set_timer_in(self.slot_ms, SLOT_TICK);
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        msg: PosMsg,
        app: &mut dyn Application,
        _out: &mut Outbox<PosMsg>,
    ) {
        let PosMsg::Proposal { slot, draw, block, sig } = msg;
        let height = block.header.height;
        if height <= app.height() {
            return;
        }
        // Verify leadership claim and signature.
        self.work.verifications += 1;
        self.work.hashes += 1;
        if self.draw(slot, &sig.signer) != draw
            || draw >= self.threshold(&sig.signer)
            || !self.registry.verify(&block.id().0, &sig)
        {
            return;
        }
        // Keep the lowest draw per height (deterministic tie-break).
        match self.pending.get(&height) {
            Some((best, _, _)) if *best <= draw => {}
            _ => {
                self.pending.insert(height, (draw, block, sig));
            }
        }
    }

    fn on_timer(&mut self, token: u64, app: &mut dyn Application, out: &mut Outbox<PosMsg>) {
        debug_assert_eq!(token, SLOT_TICK);
        // Slot boundary: first commit the best proposal from the previous
        // slot, then run this slot's lottery.
        self.commit_best(app);

        let slot = self.slot_of(out.now_ms);
        let me = self.key.address();
        self.work.hashes += 1; // one lottery draw — virtual mining
        if self.proposed_slot != Some(slot) && self.is_leader(slot, &me) {
            self.proposed_slot = Some(slot);
            let block = app.make_block(me, out.now_ms);
            let draw = self.draw(slot, &me);
            let sig = self.key.sign(&block.id().0);
            self.work.signatures += 1;
            // Record own proposal for the slot-boundary commit.
            let height = block.header.height;
            match self.pending.get(&height) {
                Some((best, _, _)) if *best <= draw => {}
                _ => {
                    self.pending.insert(height, (draw, block.clone(), sig));
                }
            }
            out.broadcast(PosMsg::Proposal { slot, draw, block, sig });
        }
        out.set_timer_in(self.slot_ms, SLOT_TICK);
    }

    fn work(&self) -> WorkCounters {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::Cluster;
    use crate::node::ChainApp;

    fn cluster(n: usize, stakes: Option<Vec<u64>>) -> Cluster<PosEngine, ChainApp> {
        let (engines, registry) = PosEngine::make_stakers(n, stakes, 100);
        let apps = (0..n).map(|_| ChainApp::new("pos-test", registry.clone())).collect();
        Cluster::new(engines, apps, 5)
    }

    #[test]
    fn stakers_reach_height() {
        let mut c = cluster(4, None);
        let report = c.run_until_height(3, 600_000);
        assert!(report.reached, "stalled: {report:?}");
    }

    #[test]
    fn chains_agree() {
        let mut c = cluster(5, None);
        c.run_until_height(3, 600_000);
        let ids: Vec<Hash256> = c.replicas.iter().map(|r| r.app.tip_at(3)).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]), "forks: {ids:?}");
    }

    #[test]
    fn stake_weight_biases_leadership() {
        // One node holds 90% of stake: it should propose most blocks.
        let mut c = cluster(4, Some(vec![900, 30, 30, 40]));
        c.run_until_height(10, 3_600_000);
        let whale = AuthorityKey::from_seed(0).address();
        let whale_blocks = (1..=10)
            .filter(|h| c.replicas[0].app.ledger().block(*h).unwrap().header.proposer == whale)
            .count();
        assert!(whale_blocks >= 6, "whale proposed only {whale_blocks}/10");
    }

    #[test]
    fn virtual_mining_uses_orders_of_magnitude_fewer_hashes_than_pow() {
        let mut pos = cluster(4, None);
        let pos_report = pos.run_until_height(3, 600_000);
        assert!(pos_report.reached);
        // One draw per node per slot: bounded by nodes × slots.
        let slots = pos_report.elapsed_ms / 100 + 1;
        assert!(pos_report.work.hashes <= 4 * slots * 2);
    }

    #[test]
    fn seal_records_winner_stake() {
        let mut c = cluster(3, Some(vec![50, 100, 150]));
        c.run_until_height(1, 600_000);
        let block = c.replicas[0].app.ledger().block(1).unwrap();
        match &block.seal {
            Seal::Stake { stake, .. } => assert!([50, 100, 150].contains(stake)),
            other => panic!("expected stake seal, got {other:?}"),
        }
    }
}

//! Consensus engines and the deterministic cluster harness.
//!
//! Four engines are provided, matching the mechanisms discussed in the
//! paper's introduction:
//!
//! * [`poa::PoaEngine`] — round-robin proof-of-authority with vote
//!   quorums; the realistic choice for a permissioned hospital consortium.
//! * [`pbft::PbftEngine`] — three-phase PBFT with view change.
//! * [`pow::PowEngine`] — proof-of-work with real hash grinding at low
//!   difficulty, so the energy experiment counts actual hashes.
//! * [`pos::PosEngine`] — "proof of stake" virtual-mining lottery
//!   (paper §I's energy fix that is *still* duplicated computing).
//!
//! Engines are message-driven state machines running over any
//! [`Transport`] — the deterministic [`SimTransport`] simulator by
//! default, or real TCP sockets via
//! [`TcpTransport`](crate::net::TcpTransport); the [`Cluster`] harness
//! drives any engine to a target height and reports traffic, latency,
//! and work counters.

pub mod pbft;
pub mod poa;
pub mod pos;
pub mod pow;

use crate::block::Block;
use crate::hash::Hash256;
use crate::net::{NodeId, SimEvent, SimTransport, Transport, Wire};
use crate::sig::Address;
use std::fmt;

/// The ledger-facing side of a consensus node: the engine decides *when*
/// to produce and commit blocks, the application decides *what* they
/// contain and whether they are valid.
pub trait Application {
    /// Current committed height.
    fn height(&self) -> u64;

    /// Digest of the current tip block.
    fn tip_id(&self) -> Hash256;

    /// Builds an unsealed candidate block extending the tip.
    fn make_block(&mut self, proposer: Address, now_ms: u64) -> Block;

    /// Structural validation of a proposed block (parent linkage, height,
    /// body commitment, transaction signatures). Full execution happens
    /// at commit.
    fn validate_block(&self, block: &Block) -> bool;

    /// Executes and commits a sealed block. Returns `false` if the block
    /// fails execution-level validation.
    fn commit_block(&mut self, block: &Block) -> bool;

    /// Returns the sealed, committed block at `height`, if any — used by
    /// catch-up (sync) protocols to serve lagging peers.
    fn sealed_block(&self, height: u64) -> Option<Block>;
}

/// Cryptographic/computation work performed by an engine, input to the
/// energy model (experiment E3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Hash evaluations (PoW grinding, lottery draws, digests).
    pub hashes: u64,
    /// Signatures produced.
    pub signatures: u64,
    /// Signatures verified.
    pub verifications: u64,
}

impl WorkCounters {
    /// Adds another counter set.
    pub fn merge(&mut self, other: WorkCounters) {
        self.hashes += other.hashes;
        self.signatures += other.signatures;
        self.verifications += other.verifications;
    }
}

/// Buffered outbound actions produced while handling one event.
#[derive(Debug)]
pub struct Outbox<M> {
    /// Logical time at which the handler ran.
    pub now_ms: u64,
    sends: Vec<(NodeId, M)>,
    broadcasts: Vec<M>,
    timers: Vec<(u64, u64)>,
}

impl<M> Outbox<M> {
    /// Creates an empty outbox stamped at `now_ms`.
    pub fn new(now_ms: u64) -> Outbox<M> {
        Outbox { now_ms, sends: Vec::new(), broadcasts: Vec::new(), timers: Vec::new() }
    }

    /// Queues a unicast.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Queues a broadcast to all other nodes.
    pub fn broadcast(&mut self, msg: M) {
        self.broadcasts.push(msg);
    }

    /// Schedules a timer at absolute time `at_ms` with `token`.
    pub fn set_timer_at(&mut self, at_ms: u64, token: u64) {
        self.timers.push((at_ms, token));
    }

    /// Schedules a timer `delay_ms` from now.
    pub fn set_timer_in(&mut self, delay_ms: u64, token: u64) {
        self.timers.push((self.now_ms + delay_ms, token));
    }
}

/// A message-driven consensus state machine.
pub trait Engine {
    /// Wire message type exchanged between replicas.
    type Msg: Clone + Wire;

    /// This engine's node id.
    fn node(&self) -> NodeId;

    /// Called once at simulation start.
    fn start(&mut self, app: &mut dyn Application, out: &mut Outbox<Self::Msg>);

    /// Handles an incoming message.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Msg,
        app: &mut dyn Application,
        out: &mut Outbox<Self::Msg>,
    );

    /// Handles a timer the engine set earlier.
    fn on_timer(&mut self, token: u64, app: &mut dyn Application, out: &mut Outbox<Self::Msg>);

    /// Work performed so far.
    fn work(&self) -> WorkCounters;
}

/// One replica: engine plus its application.
#[derive(Debug)]
pub struct Replica<E, A> {
    /// Consensus state machine.
    pub engine: E,
    /// Ledger-facing application.
    pub app: A,
}

/// Result of driving a cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Logical time when the run stopped.
    pub elapsed_ms: u64,
    /// Whether the target predicate was reached before `max_time_ms`.
    pub reached: bool,
    /// Aggregate work across all replicas.
    pub work: WorkCounters,
}

/// Harness driving `N` replicas over any [`Transport`].
///
/// The transport parameter defaults to the deterministic simulator, so
/// `Cluster<PoaEngine, ChainApp>` and [`Cluster::new`] keep their
/// historical meaning: logical time, seeded latency, bit-reproducible
/// runs. [`Cluster::with_transport`] accepts any other transport — real
/// TCP sockets, or a fault-injecting wrapper around them — and the
/// harness drives the same engines unchanged.
pub struct Cluster<E: Engine, A, T = SimTransport<<E as Engine>::Msg>> {
    /// The network fabric (public for latency/fault configuration).
    pub net: T,
    /// The replicas (public for inspection between runs).
    pub replicas: Vec<Replica<E, A>>,
    started: bool,
    metrics: medchain_runtime::metrics::Metrics,
    reported_work: WorkCounters,
    reported_height: u64,
}

impl<E: Engine, A: fmt::Debug, T> fmt::Debug for Cluster<E, A, T>
where
    E: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("replicas", &self.replicas)
            .field("started", &self.started)
            .finish_non_exhaustive()
    }
}

impl<E, A> Cluster<E, A>
where
    E: Engine,
    A: Application,
{
    /// Builds a simulator-backed cluster from matching engine/application
    /// pairs.
    ///
    /// # Panics
    ///
    /// Panics if `engines` and `apps` differ in length.
    pub fn new(engines: Vec<E>, apps: Vec<A>, seed: u64) -> Cluster<E, A> {
        let net = SimTransport::new(engines.len(), seed);
        Cluster::with_transport(engines, apps, net)
    }
}

impl<E, A, T> Cluster<E, A, T>
where
    E: Engine,
    A: Application,
    T: Transport<E::Msg>,
{
    /// Builds a cluster over an explicit transport (simulated, TCP, or
    /// fault-wrapped).
    ///
    /// # Panics
    ///
    /// Panics if `engines` and `apps` differ in length, or if the
    /// transport hosts a different number of nodes.
    pub fn with_transport(engines: Vec<E>, apps: Vec<A>, net: T) -> Cluster<E, A, T> {
        assert_eq!(engines.len(), apps.len(), "engine/app count mismatch");
        assert_eq!(engines.len(), net.node_count(), "engine/transport node count mismatch");
        let replicas = engines
            .into_iter()
            .zip(apps)
            .map(|(engine, app)| Replica { engine, app })
            .collect();
        Cluster {
            net,
            replicas,
            started: false,
            metrics: medchain_runtime::metrics::Metrics::noop(),
            reported_work: WorkCounters::default(),
            reported_height: 0,
        }
    }

    /// Installs a metrics handle; each [`Cluster::run_until`] call then
    /// emits `consensus.*` counters (rounds, messages, timers, and the
    /// [`WorkCounters`] deltas since the previous report).
    pub fn set_metrics(&mut self, metrics: medchain_runtime::metrics::Metrics) {
        self.metrics = metrics;
    }

    fn flush(net: &mut T, from: NodeId, out: Outbox<E::Msg>) {
        for (to, msg) in out.sends {
            net.send(from, to, msg);
        }
        for msg in out.broadcasts {
            net.broadcast(from, msg);
        }
        for (at, token) in out.timers {
            net.set_timer(from, at, token);
        }
    }

    /// Re-invokes `start` on one replica's engine. Timers owned by a
    /// failed node are suppressed by the simulator, so a node healed with
    /// [`SimNetwork::heal_node`](crate::net::SimNetwork::heal_node) must
    /// be kicked to resume participating.
    pub fn kick(&mut self, node: NodeId) {
        let replica = &mut self.replicas[node.0];
        let mut out = Outbox::new(self.net.now_ms());
        replica.engine.start(&mut replica.app, &mut out);
        Self::flush(&mut self.net, node, out);
    }

    /// Drives the simulation until `pred` holds over the replicas or
    /// logical time exceeds `max_time_ms`.
    pub fn run_until(
        &mut self,
        mut pred: impl FnMut(&[Replica<E, A>]) -> bool,
        max_time_ms: u64,
    ) -> RunReport {
        if !self.started {
            self.started = true;
            for i in 0..self.replicas.len() {
                let replica = &mut self.replicas[i];
                let mut out = Outbox::new(self.net.now_ms());
                replica.engine.start(&mut replica.app, &mut out);
                Self::flush(&mut self.net, replica.engine.node(), out);
            }
        }
        let mut reached = pred(&self.replicas);
        let (mut messages, mut timers) = (0u64, 0u64);
        while !reached {
            let Some((at, event)) = self.net.next() else { break };
            if at > max_time_ms {
                break;
            }
            match event {
                SimEvent::Message { from, to, msg } => {
                    messages += 1;
                    let replica = &mut self.replicas[to.0];
                    let mut out = Outbox::new(at);
                    replica.engine.on_message(from, msg, &mut replica.app, &mut out);
                    Self::flush(&mut self.net, to, out);
                }
                SimEvent::Timer { node, token } => {
                    timers += 1;
                    let replica = &mut self.replicas[node.0];
                    let mut out = Outbox::new(at);
                    replica.engine.on_timer(token, &mut replica.app, &mut out);
                    Self::flush(&mut self.net, node, out);
                }
            }
            reached = pred(&self.replicas);
        }
        let mut work = WorkCounters::default();
        for replica in &self.replicas {
            work.merge(replica.engine.work());
        }
        if self.metrics.enabled() {
            self.metrics.counter("consensus.messages", messages);
            self.metrics.counter("consensus.timers", timers);
            let tip = self.replicas.iter().map(|r| r.app.height()).max().unwrap_or(0);
            self.metrics.counter("consensus.rounds", tip.saturating_sub(self.reported_height));
            self.reported_height = tip.max(self.reported_height);
            // WorkCounters are cumulative per engine; report only the
            // delta since the last run so repeated runs don't double-count.
            self.metrics
                .counter("consensus.hashes", work.hashes - self.reported_work.hashes);
            self.metrics
                .counter("consensus.signatures", work.signatures - self.reported_work.signatures);
            self.metrics.counter(
                "consensus.verifications",
                work.verifications - self.reported_work.verifications,
            );
            self.reported_work = work;
        }
        RunReport { elapsed_ms: self.net.now_ms(), reached, work }
    }

    /// Drives the cluster until every live replica reaches `height`.
    pub fn run_until_height(&mut self, height: u64, max_time_ms: u64) -> RunReport {
        let failed: Vec<bool> =
            (0..self.replicas.len()).map(|i| self.net.is_failed(NodeId(i))).collect();
        self.run_until(
            move |replicas| {
                replicas
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !failed[*i])
                    .all(|(_, r)| r.app.height() >= height)
            },
            max_time_ms,
        )
    }

    /// Gracefully releases the transport (socket transports join their
    /// threads; the simulator is a no-op).
    pub fn shutdown(&mut self) {
        self.net.shutdown();
    }
}

/// Simple quorum rule used by PoA and vote-counting engines: strictly
/// more than two thirds of `n`.
pub fn two_thirds_quorum(n: usize) -> usize {
    2 * n / 3 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_sizes() {
        assert_eq!(two_thirds_quorum(1), 1);
        assert_eq!(two_thirds_quorum(3), 3);
        assert_eq!(two_thirds_quorum(4), 3);
        assert_eq!(two_thirds_quorum(7), 5);
        assert_eq!(two_thirds_quorum(10), 7);
    }
}

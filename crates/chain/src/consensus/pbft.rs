//! Practical Byzantine Fault Tolerance (three-phase) consensus.
//!
//! Classic PBFT over the simulated network: the view-`v` primary
//! (`v mod n`) pre-prepares a block for the next height, replicas
//! broadcast signed prepares then commits, and a block is applied once a
//! `2f+1` commit quorum accumulates (`f = (n-1)/3`). A progress timeout
//! triggers a view change so the cluster survives primary crashes — the
//! crash-fault-tolerance property PoA's fixed rotation lacks.

use crate::block::{Block, Seal};
use crate::consensus::{Application, Engine, Outbox, WorkCounters};
use crate::hash::Hash256;
use crate::net::{NodeId, Wire};
use crate::sig::{Address, AuthorityKey, AuthoritySignature, KeyRegistry};
use std::collections::{BTreeMap, HashMap};

/// Wire messages of the PBFT protocol.
#[derive(Debug, Clone)]
pub enum PbftMsg {
    /// Primary's proposal for a height.
    PrePrepare {
        /// Proposal view.
        view: u64,
        /// Proposed block.
        block: Block,
        /// Primary signature over the block id.
        sig: AuthoritySignature,
    },
    /// Phase-2 prepare vote.
    Prepare {
        /// View.
        view: u64,
        /// Height.
        height: u64,
        /// Block id.
        digest: Hash256,
        /// Replica signature over the block id.
        sig: AuthoritySignature,
    },
    /// Phase-3 commit vote.
    Commit {
        /// View.
        view: u64,
        /// Height.
        height: u64,
        /// Block id.
        digest: Hash256,
        /// Replica signature over the block id.
        sig: AuthoritySignature,
    },
    /// Vote to move to `new_view` after a progress timeout.
    ViewChange {
        /// Proposed view.
        new_view: u64,
        /// Sender's committed height (so the new primary syncs).
        height: u64,
        /// Signature over the new-view number.
        sig: AuthoritySignature,
    },
    /// Catch-up probe from a lagging replica.
    SyncRequest {
        /// Sender's committed height.
        have: u64,
    },
    /// Sealed blocks answering a [`PbftMsg::SyncRequest`].
    SyncResponse {
        /// Contiguous committed blocks from `have + 1`.
        blocks: Vec<Block>,
    },
}

medchain_runtime::impl_codec_enum!(PbftMsg {
    0 => PrePrepare { view, block, sig },
    1 => Prepare { view, height, digest, sig },
    2 => Commit { view, height, digest, sig },
    3 => ViewChange { new_view, height, sig },
    4 => SyncRequest { have },
    5 => SyncResponse { blocks },
});

impl Wire for PbftMsg {
    fn wire_size(&self) -> usize {
        use medchain_runtime::codec::Encode;
        self.encoded().len()
    }
}

const TICK: u64 = 0;
const PROGRESS: u64 = 1;

#[derive(Debug, Default)]
struct HeightState {
    block: Option<Block>,
    prepares: HashMap<Hash256, BTreeMap<Address, AuthoritySignature>>,
    commits: HashMap<Hash256, BTreeMap<Address, AuthoritySignature>>,
    sent_prepare: bool,
    sent_commit: bool,
}

/// PBFT engine for one replica.
#[derive(Debug)]
pub struct PbftEngine {
    node: NodeId,
    key: AuthorityKey,
    replicas: Vec<Address>,
    registry: KeyRegistry,
    view: u64,
    block_interval_ms: u64,
    view_timeout_ms: u64,
    heights: HashMap<u64, HeightState>,
    view_votes: HashMap<u64, BTreeMap<Address, AuthoritySignature>>,
    proposed_height: u64,
    last_proposal: Option<(u64, Block, AuthoritySignature)>,
    last_progress_height: u64,
    work: WorkCounters,
}

impl PbftEngine {
    /// Creates a replica engine. `replicas[node.0]` must equal the key's
    /// address.
    ///
    /// # Panics
    ///
    /// Panics on a replica-slot mismatch.
    pub fn new(
        node: NodeId,
        key: AuthorityKey,
        replicas: Vec<Address>,
        registry: KeyRegistry,
        block_interval_ms: u64,
        view_timeout_ms: u64,
    ) -> PbftEngine {
        assert_eq!(replicas[node.0], key.address(), "replica slot mismatch");
        PbftEngine {
            node,
            key,
            replicas,
            registry,
            view: 0,
            block_interval_ms,
            view_timeout_ms,
            heights: HashMap::new(),
            view_votes: HashMap::new(),
            proposed_height: 0,
            last_proposal: None,
            last_progress_height: 0,
            work: WorkCounters::default(),
        }
    }

    /// Builds `n` replica engines with a shared registry.
    pub fn make_replicas(
        n: usize,
        block_interval_ms: u64,
        view_timeout_ms: u64,
    ) -> (Vec<PbftEngine>, KeyRegistry, Vec<Address>) {
        let keys: Vec<AuthorityKey> = (0..n).map(|i| AuthorityKey::from_seed(i as u64)).collect();
        let mut registry = KeyRegistry::new();
        for k in &keys {
            registry.enroll(k);
        }
        let replicas: Vec<Address> = keys.iter().map(AuthorityKey::address).collect();
        let engines = keys
            .into_iter()
            .enumerate()
            .map(|(i, key)| {
                PbftEngine::new(
                    NodeId(i),
                    key,
                    replicas.clone(),
                    registry.clone(),
                    block_interval_ms,
                    view_timeout_ms,
                )
            })
            .collect();
        (engines, registry, replicas)
    }

    fn n(&self) -> usize {
        self.replicas.len()
    }

    /// Byzantine quorum: `2f + 1` with `f = (n-1)/3`.
    fn quorum(&self) -> usize {
        let f = (self.n() - 1) / 3;
        2 * f + 1
    }

    fn primary(&self, view: u64) -> Address {
        self.replicas[(view % self.n() as u64) as usize]
    }

    fn is_primary(&self) -> bool {
        self.primary(self.view) == self.key.address()
    }

    fn maybe_propose(&mut self, app: &mut dyn Application, out: &mut Outbox<PbftMsg>) {
        let next = app.height() + 1;
        if !self.is_primary() {
            return;
        }
        if self.proposed_height >= next {
            // Re-broadcast the in-flight proposal so replicas that entered
            // the view late (or dropped the message) can still prepare.
            if let Some((view, block, sig)) = self.last_proposal.clone() {
                if view == self.view && block.header.height == next {
                    out.broadcast(PbftMsg::PrePrepare { view, block, sig });
                }
            }
            return;
        }
        self.proposed_height = next;
        let block = app.make_block(self.key.address(), out.now_ms);
        let sig = self.key.sign(&block.id().0);
        self.work.signatures += 1;
        let view = self.view;
        self.last_proposal = Some((view, block.clone(), sig));
        self.handle_preprepare(view, block.clone(), sig, app, out);
        out.broadcast(PbftMsg::PrePrepare { view, block, sig });
    }

    fn handle_preprepare(
        &mut self,
        view: u64,
        block: Block,
        sig: AuthoritySignature,
        app: &mut dyn Application,
        out: &mut Outbox<PbftMsg>,
    ) {
        if view != self.view {
            return;
        }
        let height = block.header.height;
        if height <= app.height() {
            return;
        }
        self.work.verifications += 1;
        if sig.signer != self.primary(view) || !self.registry.verify(&block.id().0, &sig) {
            return;
        }
        let entry = self.heights.entry(height).or_default();
        if entry.block.is_some() {
            return;
        }
        entry.block = Some(block);
        self.advance(height, app, out);
    }

    /// Runs the prepare → commit → apply ladder for `height` as far as
    /// current evidence allows.
    fn advance(&mut self, height: u64, app: &mut dyn Application, out: &mut Outbox<PbftMsg>) {
        // Phase 2: prepare once we hold a valid pre-prepared block for the
        // immediate next height.
        if height == app.height() + 1 {
            let should_prepare = {
                let Some(entry) = self.heights.get(&height) else { return };
                !entry.sent_prepare && entry.block.is_some()
            };
            if should_prepare {
                let block = self
                    .heights
                    .get(&height)
                    .and_then(|e| e.block.clone())
                    .expect("checked above");
                if app.validate_block(&block) {
                    let digest = block.id();
                    let sig = self.key.sign(&digest.0);
                    self.work.signatures += 1;
                    let view = self.view;
                    let entry = self.heights.get_mut(&height).expect("present");
                    entry.sent_prepare = true;
                    entry.prepares.entry(digest).or_default().insert(sig.signer, sig);
                    out.broadcast(PbftMsg::Prepare { view, height, digest, sig });
                }
            }
        }

        // Phase 3: commit once prepared with a quorum.
        let quorum = self.quorum();
        let commit_digest = self.heights.get(&height).and_then(|entry| {
            if entry.sent_commit || !entry.sent_prepare {
                return None;
            }
            let digest = entry.block.as_ref()?.id();
            (entry.prepares.get(&digest).map_or(0, BTreeMap::len) >= quorum).then_some(digest)
        });
        if let Some(digest) = commit_digest {
            let sig = self.key.sign(&digest.0);
            self.work.signatures += 1;
            let view = self.view;
            let entry = self.heights.get_mut(&height).expect("present");
            entry.sent_commit = true;
            entry.commits.entry(digest).or_default().insert(sig.signer, sig);
            out.broadcast(PbftMsg::Commit { view, height, digest, sig });
        }

        // Apply once committed with a quorum.
        let apply = self.heights.get(&height).and_then(|entry| {
            let block = entry.block.as_ref()?;
            let digest = block.id();
            let commits = entry.commits.get(&digest)?;
            (commits.len() >= quorum && height == app.height() + 1).then(|| {
                let mut sealed = block.clone();
                sealed.seal = Seal::Pbft {
                    view: self.view,
                    commits: commits.values().copied().collect(),
                };
                sealed
            })
        });
        if let Some(sealed) = apply {
            if app.commit_block(&sealed) {
                self.heights.remove(&height);
                self.last_progress_height = app.height();
                // Buffered evidence for the next height may now apply; our
                // own next proposal waits for the tick timer (bounded
                // stack: no propose→apply recursion within one event).
                if self.heights.contains_key(&(height + 1)) {
                    self.advance(height + 1, app, out);
                }
            }
        }
    }

    /// Verifies a PBFT commit-quorum seal over a synced block.
    fn verify_seal(&mut self, block: &Block) -> bool {
        let Seal::Pbft { commits, .. } = &block.seal else { return false };
        let id = block.id();
        let mut signers = std::collections::BTreeSet::new();
        for commit in commits {
            self.work.verifications += 1;
            if self.registry.verify(&id.0, commit) {
                signers.insert(commit.signer);
            }
        }
        signers.len() >= self.quorum()
    }

    fn handle_sync_request(
        &mut self,
        from: NodeId,
        have: u64,
        app: &mut dyn Application,
        out: &mut Outbox<PbftMsg>,
    ) {
        if have >= app.height() {
            return;
        }
        let to = (have + 16).min(app.height());
        let blocks: Vec<Block> = (have + 1..=to).filter_map(|h| app.sealed_block(h)).collect();
        if !blocks.is_empty() {
            out.send(from, PbftMsg::SyncResponse { blocks });
        }
    }

    fn handle_sync_response(&mut self, blocks: Vec<Block>, app: &mut dyn Application) {
        for block in blocks {
            if block.header.height != app.height() + 1 {
                continue;
            }
            if !self.verify_seal(&block) || !app.commit_block(&block) {
                break;
            }
            self.heights.remove(&block.header.height);
            self.last_progress_height = app.height();
        }
    }

    fn enter_view(&mut self, view: u64, app: &mut dyn Application, out: &mut Outbox<PbftMsg>) {
        self.view = view;
        // Forget un-applied phase state; the new primary re-proposes.
        self.heights.clear();
        self.proposed_height = app.height();
        self.maybe_propose(app, out);
    }
}

impl Engine for PbftEngine {
    type Msg = PbftMsg;

    fn node(&self) -> NodeId {
        self.node
    }

    fn start(&mut self, app: &mut dyn Application, out: &mut Outbox<PbftMsg>) {
        self.maybe_propose(app, out);
        out.set_timer_in(self.block_interval_ms, TICK);
        out.set_timer_in(self.view_timeout_ms, PROGRESS);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: PbftMsg,
        app: &mut dyn Application,
        out: &mut Outbox<PbftMsg>,
    ) {
        match msg {
            PbftMsg::PrePrepare { view, block, sig } => {
                self.handle_preprepare(view, block, sig, app, out)
            }
            PbftMsg::Prepare { view, height, digest, sig } => {
                if view != self.view || height <= app.height() {
                    return;
                }
                self.work.verifications += 1;
                if !self.registry.verify(&digest.0, &sig) {
                    return;
                }
                self.heights
                    .entry(height)
                    .or_default()
                    .prepares
                    .entry(digest)
                    .or_default()
                    .insert(sig.signer, sig);
                self.advance(height, app, out);
            }
            PbftMsg::Commit { view, height, digest, sig } => {
                if view != self.view || height <= app.height() {
                    return;
                }
                self.work.verifications += 1;
                if !self.registry.verify(&digest.0, &sig) {
                    return;
                }
                self.heights
                    .entry(height)
                    .or_default()
                    .commits
                    .entry(digest)
                    .or_default()
                    .insert(sig.signer, sig);
                self.advance(height, app, out);
            }
            PbftMsg::SyncRequest { have } => self.handle_sync_request(from, have, app, out),
            PbftMsg::SyncResponse { blocks } => self.handle_sync_response(blocks, app),
            PbftMsg::ViewChange { new_view, sig, .. } => {
                if new_view <= self.view {
                    return;
                }
                self.work.verifications += 1;
                if !self.registry.verify(&new_view.to_le_bytes(), &sig) {
                    return;
                }
                self.view_votes.entry(new_view).or_default().insert(sig.signer, sig);
                if self.view_votes.get(&new_view).map_or(0, BTreeMap::len) >= self.quorum() {
                    self.enter_view(new_view, app, out);
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, app: &mut dyn Application, out: &mut Outbox<PbftMsg>) {
        match token {
            TICK => {
                self.maybe_propose(app, out);
                out.set_timer_in(self.block_interval_ms, TICK);
            }
            PROGRESS => {
                if app.height() == self.last_progress_height {
                    // Maybe we just missed blocks (e.g. healed after a
                    // crash): probe for catch-up before forcing a view
                    // change.
                    out.broadcast(PbftMsg::SyncRequest { have: app.height() });
                    // No progress in a full timeout window: vote to change view.
                    let new_view = self.view + 1;
                    let sig = self.key.sign(&new_view.to_le_bytes());
                    self.work.signatures += 1;
                    self.view_votes.entry(new_view).or_default().insert(sig.signer, sig);
                    out.broadcast(PbftMsg::ViewChange {
                        new_view,
                        height: app.height(),
                        sig,
                    });
                }
                self.last_progress_height = app.height();
                out.set_timer_in(self.view_timeout_ms, PROGRESS);
            }
            _ => {}
        }
    }

    fn work(&self) -> WorkCounters {
        self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::Cluster;
    use crate::node::ChainApp;

    fn cluster(n: usize) -> Cluster<PbftEngine, ChainApp> {
        let (engines, registry, _) = PbftEngine::make_replicas(n, 50, 2_000);
        let apps = (0..n).map(|_| ChainApp::new("pbft-test", registry.clone())).collect();
        Cluster::new(engines, apps, 7)
    }

    #[test]
    fn four_replicas_reach_height() {
        let mut c = cluster(4);
        let report = c.run_until_height(5, 120_000);
        assert!(report.reached, "stalled: {report:?}");
    }

    #[test]
    fn replicas_agree() {
        let mut c = cluster(7);
        c.run_until_height(3, 120_000);
        let ids: Vec<Hash256> = c.replicas.iter().map(|r| r.app.tip_at(3)).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn seal_carries_commit_quorum() {
        let mut c = cluster(4);
        c.run_until_height(1, 120_000);
        let block = c.replicas[1].app.ledger().block(1).unwrap().clone();
        match block.seal {
            Seal::Pbft { commits, .. } => assert!(commits.len() >= 3),
            other => panic!("expected pbft seal, got {other:?}"),
        }
    }

    #[test]
    fn view_change_survives_primary_crash() {
        let mut c = cluster(4);
        c.run_until_height(2, 120_000);
        // Crash the view-0 primary (node 0). Progress stalls, replicas
        // vote a view change, node 1 takes over.
        c.net.fail_node(NodeId(0));
        let report = c.run_until_height(4, 600_000);
        assert!(report.reached, "view change failed: {report:?}");
        for (i, r) in c.replicas.iter().enumerate() {
            if i != 0 {
                assert!(r.app.height() >= 4);
            }
        }
    }

    #[test]
    fn pbft_message_complexity_is_quadratic() {
        let mut small = cluster(4);
        small.run_until_height(3, 120_000);
        let per_block_small = small.net.stats().sent as f64 / 3.0;
        let mut large = cluster(8);
        large.run_until_height(3, 120_000);
        let per_block_large = large.net.stats().sent as f64 / 3.0;
        // Doubling replicas should roughly quadruple traffic (O(n^2)).
        let ratio = per_block_large / per_block_small;
        assert!(ratio > 2.5, "expected quadratic growth, ratio {ratio}");
    }
}

//! Signature schemes for the permissioned medical blockchain.
//!
//! Two schemes are provided:
//!
//! * [`LamportKeypair`] — hash-based one-time signatures (Lamport 1979).
//!   Used where a node signs a single high-value artifact, e.g. a dataset
//!   registration anchor. Security reduces to preimage resistance of
//!   SHA-256, so no external crypto dependency is needed.
//! * [`AuthorityKey`] — HMAC-based signatures verified against a shared
//!   consortium [`KeyRegistry`]. This models the membership-service model
//!   of permissioned chains (Hyperledger Fabric MSP): every consortium
//!   member is enrolled, and verification is a registry lookup plus a MAC
//!   check. Cheap enough to sign every transaction and block.

use crate::hash::{hmac_sha256, Hash256};
use medchain_runtime::DetRng;
use std::collections::HashMap;
use std::fmt;

/// Identity of a participant (hospital, provider, patient, FDA node).
///
/// Addresses are derived from key material by hashing, as in account-model
/// blockchains.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// Derives an address from arbitrary public key material.
    pub fn from_key_material(material: &[u8]) -> Address {
        let digest = Hash256::digest(material);
        let mut out = [0u8; 20];
        out.copy_from_slice(&digest.0[..20]);
        Address(out)
    }

    /// Deterministic address for tests and simulations.
    pub fn from_seed(seed: u64) -> Address {
        Self::from_key_material(&seed.to_le_bytes())
    }

    /// Hex rendering of the address.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({}..)", &self.to_hex()[..8])
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// A Lamport one-time signing key: 256 pairs of 32-byte secrets.
pub struct LamportKeypair {
    secret: Box<[[[u8; 32]; 2]; 256]>,
    public: LamportPublicKey,
    used: bool,
}

impl fmt::Debug for LamportKeypair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LamportKeypair")
            .field("address", &self.public.address())
            .field("used", &self.used)
            .finish()
    }
}

/// The public half of a Lamport keypair: hashes of all 512 secrets.
#[derive(Clone, PartialEq, Eq)]
pub struct LamportPublicKey(Box<[[Hash256; 2]; 256]>);

impl fmt::Debug for LamportPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LamportPublicKey({:?})", self.address())
    }
}

/// A Lamport signature: one revealed secret per message bit.
#[derive(Clone, PartialEq, Eq)]
pub struct LamportSignature(Box<[[u8; 32]; 256]>);

impl fmt::Debug for LamportSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("LamportSignature(..)")
    }
}

impl LamportKeypair {
    /// Generates a fresh one-time keypair from `rng`.
    pub fn generate(rng: &mut DetRng) -> LamportKeypair {
        let mut secret = Box::new([[[0u8; 32]; 2]; 256]);
        let mut public = Box::new([[Hash256::ZERO; 2]; 256]);
        for i in 0..256 {
            for j in 0..2 {
                rng.fill_bytes(&mut secret[i][j]);
                public[i][j] = Hash256::digest(&secret[i][j]);
            }
        }
        LamportKeypair { secret, public: LamportPublicKey(public), used: false }
    }

    /// Returns the public key.
    pub fn public(&self) -> &LamportPublicKey {
        &self.public
    }

    /// Whether [`LamportKeypair::sign`] has already been called.
    pub fn is_used(&self) -> bool {
        self.used
    }

    /// Signs the SHA-256 digest of `message`.
    ///
    /// # Errors
    ///
    /// Returns [`SignError::KeyAlreadyUsed`] on a second signing attempt —
    /// reusing a Lamport key leaks secret material.
    pub fn sign(&mut self, message: &[u8]) -> Result<LamportSignature, SignError> {
        if self.used {
            return Err(SignError::KeyAlreadyUsed);
        }
        self.used = true;
        let digest = Hash256::digest(message);
        let mut sig = Box::new([[0u8; 32]; 256]);
        for i in 0..256 {
            let bit = (digest.0[i / 8] >> (7 - i % 8)) & 1;
            sig[i] = self.secret[i][bit as usize];
        }
        Ok(LamportSignature(sig))
    }
}

impl LamportPublicKey {
    /// Verifies `sig` over `message`.
    pub fn verify(&self, message: &[u8], sig: &LamportSignature) -> bool {
        let digest = Hash256::digest(message);
        for i in 0..256 {
            let bit = (digest.0[i / 8] >> (7 - i % 8)) & 1;
            if Hash256::digest(&sig.0[i]) != self.0[i][bit as usize] {
                return false;
            }
        }
        true
    }

    /// The address bound to this key.
    pub fn address(&self) -> Address {
        let mut material = Vec::with_capacity(256 * 2 * 32);
        for pair in self.0.iter() {
            material.extend_from_slice(&pair[0].0);
            material.extend_from_slice(&pair[1].0);
        }
        Address::from_key_material(&material)
    }
}

/// Error returned by signing operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignError {
    /// A one-time key was asked to sign twice.
    KeyAlreadyUsed,
}

impl fmt::Display for SignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignError::KeyAlreadyUsed => f.write_str("one-time signing key already used"),
        }
    }
}

impl std::error::Error for SignError {}

/// Enrolled authority key for consortium members.
///
/// Signing is `HMAC(secret, message)`; verification checks the MAC against
/// the secret held in the consortium [`KeyRegistry`] (the membership
/// service). This mirrors how permissioned deployments centralize identity
/// in an enrollment CA while keeping per-message costs trivial.
#[derive(Clone)]
pub struct AuthorityKey {
    address: Address,
    secret: [u8; 32],
}

impl fmt::Debug for AuthorityKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AuthorityKey({:?})", self.address)
    }
}

/// MAC-based signature produced by an [`AuthorityKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthoritySignature {
    /// Signer address (registry lookup key).
    pub signer: Address,
    /// The MAC tag.
    pub tag: Hash256,
}

impl AuthorityKey {
    /// Generates a key from `rng`.
    pub fn generate(rng: &mut DetRng) -> AuthorityKey {
        let mut secret = [0u8; 32];
        rng.fill_bytes(&mut secret);
        AuthorityKey { address: Address::from_key_material(&secret), secret }
    }

    /// Deterministic key for tests and simulations.
    pub fn from_seed(seed: u64) -> AuthorityKey {
        let secret = Hash256::digest(&seed.to_le_bytes()).0;
        AuthorityKey { address: Address::from_key_material(&secret), secret }
    }

    /// The address of this key.
    pub fn address(&self) -> Address {
        self.address
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> AuthoritySignature {
        AuthoritySignature { signer: self.address, tag: hmac_sha256(&self.secret, message) }
    }
}

/// Consortium membership service: maps enrolled addresses to key material
/// so any node can verify any member's signature.
#[derive(Debug, Default, Clone)]
pub struct KeyRegistry {
    keys: HashMap<Address, [u8; 32]>,
}

impl KeyRegistry {
    /// Creates an empty registry.
    pub fn new() -> KeyRegistry {
        KeyRegistry::default()
    }

    /// Enrolls a member key.
    pub fn enroll(&mut self, key: &AuthorityKey) {
        self.keys.insert(key.address, key.secret);
    }

    /// Whether `address` is an enrolled member.
    pub fn is_enrolled(&self, address: &Address) -> bool {
        self.keys.contains_key(address)
    }

    /// Number of enrolled members.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the registry has no members.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Verifies `sig` over `message` against the enrolled key material.
    pub fn verify(&self, message: &[u8], sig: &AuthoritySignature) -> bool {
        match self.keys.get(&sig.signer) {
            Some(secret) => hmac_sha256(secret, message) == sig.tag,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lamport_sign_verify() {
        let mut rng = DetRng::from_seed(7);
        let mut kp = LamportKeypair::generate(&mut rng);
        let public = kp.public().clone();
        let sig = kp.sign(b"anchor: dataset v1").unwrap();
        assert!(public.verify(b"anchor: dataset v1", &sig));
        assert!(!public.verify(b"anchor: dataset v2", &sig));
    }

    #[test]
    fn lamport_key_is_one_time() {
        let mut rng = DetRng::from_seed(8);
        let mut kp = LamportKeypair::generate(&mut rng);
        kp.sign(b"first").unwrap();
        assert_eq!(kp.sign(b"second"), Err(SignError::KeyAlreadyUsed));
    }

    #[test]
    fn lamport_rejects_bit_flip() {
        let mut rng = DetRng::from_seed(9);
        let mut kp = LamportKeypair::generate(&mut rng);
        let public = kp.public().clone();
        let mut sig = kp.sign(b"msg").unwrap();
        sig.0[17][3] ^= 0x40;
        assert!(!public.verify(b"msg", &sig));
    }

    #[test]
    fn authority_sign_verify_via_registry() {
        let mut rng = DetRng::from_seed(10);
        let key = AuthorityKey::generate(&mut rng);
        let mut registry = KeyRegistry::new();
        registry.enroll(&key);
        let sig = key.sign(b"block 42");
        assert!(registry.verify(b"block 42", &sig));
        assert!(!registry.verify(b"block 43", &sig));
    }

    #[test]
    fn registry_rejects_unenrolled_signer() {
        let mut rng = DetRng::from_seed(11);
        let key = AuthorityKey::generate(&mut rng);
        let registry = KeyRegistry::new();
        assert!(!registry.verify(b"m", &key.sign(b"m")));
    }

    #[test]
    fn registry_rejects_forged_tag() {
        let key = AuthorityKey::from_seed(1);
        let other = AuthorityKey::from_seed(2);
        let mut registry = KeyRegistry::new();
        registry.enroll(&key);
        registry.enroll(&other);
        // `other` tries to pass its MAC off as `key`'s.
        let mut sig = other.sign(b"m");
        sig.signer = key.address();
        assert!(!registry.verify(b"m", &sig));
    }

    #[test]
    fn seeded_keys_are_deterministic() {
        assert_eq!(AuthorityKey::from_seed(5).address(), AuthorityKey::from_seed(5).address());
        assert_ne!(AuthorityKey::from_seed(5).address(), AuthorityKey::from_seed(6).address());
        assert_eq!(Address::from_seed(3), Address::from_seed(3));
    }
}

mod codec_impls {
    use super::{Address, AuthoritySignature};
    use medchain_runtime::codec::{CodecError, Decode, Encode, Reader};
    use medchain_runtime::impl_codec_struct;

    impl Encode for Address {
        fn encode(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.0);
        }
    }

    impl Decode for Address {
        fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
            Ok(Address(<[u8; 20]>::decode(r)?))
        }
    }

    impl_codec_struct!(AuthoritySignature { signer, tag });
}

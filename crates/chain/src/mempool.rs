//! Pending-transaction pool with per-sender nonce ordering and
//! fee/priority lanes.
//!
//! Admission is lane-aware (DESIGN.md §10): the gateway routes client
//! transactions into a **priority** or **normal** lane, block proposal
//! drains priority senders first, and a slice of the pool's capacity is
//! reserved for priority traffic so a flood of normal-lane submissions
//! cannot starve it. Mutating methods are `pub(crate)`: outside
//! `medchain-chain`, transactions enter a pool only through
//! [`crate::node::ChainApp`]'s admission API, which enforces
//! signature/nonce checks and dedup-before-verify.

use crate::hash::Hash256;
use crate::sig::Address;
use crate::tx::Transaction;
use medchain_runtime::metrics::Metrics;
use std::collections::{BTreeMap, HashSet};

/// Which admission lane a transaction was routed into.
///
/// A sender occupies one lane at a time: the lane of its first queued
/// transaction sticks until the sender's queue empties (so nonce runs
/// are never split across lanes), and later submissions in a different
/// lane are coerced onto the sticky one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Lane {
    /// Drained first at block proposal; admitted into the reserved
    /// capacity slice even when the normal lane is full.
    Priority,
    /// Default lane for ordinary traffic.
    #[default]
    Normal,
}

impl Lane {
    /// Human-readable label (metrics keys, reports).
    pub fn label(&self) -> &'static str {
        match self {
            Lane::Priority => "priority",
            Lane::Normal => "normal",
        }
    }
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of [`Mempool::try_insert_in`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The transaction entered a previously empty `(sender, nonce)`
    /// slot, on the lane it was actually queued in (the sender's sticky
    /// lane, which may differ from the requested one).
    Inserted(Lane),
    /// The transaction replaced the prior occupant of its `(sender,
    /// nonce)` slot; the evicted transaction is returned so callers can
    /// surface or re-gossip it, and its id is forgotten so it may be
    /// re-submitted.
    Replaced(Transaction),
    /// The exact transaction id is already pending or was gossiped.
    DuplicateId,
    /// The pool (or, for normal-lane inserts, the unreserved slice of
    /// it) is at capacity and the transaction would grow it.
    Full,
}

/// A mempool holding admissible transactions until block inclusion.
///
/// Transactions are keyed by `(sender, nonce)`; [`Mempool::take_batch`]
/// pops a gap-free nonce run per sender, priority-lane senders first, so
/// the proposer never includes a transaction whose predecessor is
/// missing.
#[derive(Debug, Default, Clone)]
pub struct Mempool {
    by_sender: BTreeMap<Address, BTreeMap<u64, Transaction>>,
    /// Sticky lane per sender with queued transactions.
    lane_of: BTreeMap<Address, Lane>,
    seen: HashSet<Hash256>,
    capacity: usize,
    /// Capacity slice only priority-lane inserts may use.
    priority_reserve: usize,
    size: usize,
    metrics: Metrics,
}

impl Mempool {
    /// Creates a pool bounded at `capacity` transactions, with a quarter
    /// of the capacity reserved for the priority lane.
    pub fn new(capacity: usize) -> Mempool {
        Mempool { capacity, priority_reserve: capacity / 4, ..Mempool::default() }
    }

    /// Installs a metrics handle; all `mempool.*` counters report there.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Sets the capacity slice reserved for priority-lane admissions
    /// (clamped to the pool capacity).
    ///
    /// Resizing never evicts queued transactions: if the reserve grows
    /// while the pool already holds more than `capacity - reserve`
    /// transactions, the existing occupancy stays queued and drains
    /// through [`Mempool::take_batch`]/[`Mempool::prune`] as usual. The
    /// new limit binds at *admission* time only — normal-lane inserts
    /// are rejected with [`InsertOutcome::Full`] until the pool shrinks
    /// back below `capacity - reserve`, and priority-lane inserts keep
    /// the full capacity. Property-tested in
    /// `reserve_resize_never_evicts_and_binds_at_admission`.
    pub fn set_priority_reserve(&mut self, reserve: usize) {
        self.priority_reserve = reserve.min(self.capacity);
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Whether a transaction id has been seen (pending or gossiped).
    pub fn contains(&self, id: &Hash256) -> bool {
        self.seen.contains(id)
    }

    /// The sticky lane a sender's queued transactions occupy, if any.
    pub fn lane_of(&self, sender: &Address) -> Option<Lane> {
        self.lane_of.get(sender).copied()
    }

    /// Pending transactions queued on `lane`.
    pub fn lane_len(&self, lane: Lane) -> usize {
        self.by_sender
            .iter()
            .filter(|(sender, _)| self.lane_of.get(sender).copied().unwrap_or_default() == lane)
            .map(|(_, queue)| queue.len())
            .sum()
    }

    /// Sum of per-sender queue lengths. Always equals [`Mempool::len`];
    /// exposed so tests can check the invariant from outside.
    pub fn queued(&self) -> usize {
        self.by_sender.values().map(|queue| queue.len()).sum()
    }

    /// Inserts a transaction on the normal lane (test convenience).
    /// Returns `false` if it was a duplicate or the pool is full; a
    /// replacement of an existing `(sender, nonce)` slot counts as
    /// success.
    #[cfg(test)]
    pub(crate) fn insert(&mut self, tx: Transaction) -> bool {
        matches!(
            self.try_insert(tx),
            InsertOutcome::Inserted(_) | InsertOutcome::Replaced(_)
        )
    }

    /// Normal-lane [`Mempool::try_insert_in`] (test convenience).
    #[cfg(test)]
    pub(crate) fn try_insert(&mut self, tx: Transaction) -> InsertOutcome {
        self.try_insert_in(tx, Lane::Normal)
    }

    /// Inserts a transaction on `lane`, reporting exactly what happened.
    ///
    /// Replacing an occupied `(sender, nonce)` slot removes the evicted
    /// transaction's id from the seen-set (so it can be re-submitted
    /// later) and returns it in [`InsertOutcome::Replaced`]. A
    /// replacement is admitted even at capacity because the pool size
    /// does not grow. Normal-lane inserts are rejected once the pool
    /// reaches `capacity - priority_reserve`, keeping the reserved slice
    /// available for priority traffic under backpressure.
    pub(crate) fn try_insert_in(&mut self, tx: Transaction, lane: Lane) -> InsertOutcome {
        if self.seen.contains(&tx.id()) {
            self.metrics.counter("mempool.dedup_hits", 1);
            return InsertOutcome::DuplicateId;
        }
        let sender = tx.sender;
        // Sticky sender lane: the first queued transaction fixes it.
        let effective = match self.lane_of.get(&sender) {
            Some(&current) => {
                if current != lane {
                    self.metrics.counter("mempool.lane_coerced", 1);
                }
                current
            }
            None => lane,
        };
        let replacing =
            self.by_sender.get(&sender).is_some_and(|queue| queue.contains_key(&tx.nonce));
        if !replacing {
            let limit = match effective {
                Lane::Priority => self.capacity,
                Lane::Normal => self.capacity.saturating_sub(self.priority_reserve),
            };
            if self.size >= limit {
                self.metrics.counter("mempool.full_rejects", 1);
                return InsertOutcome::Full;
            }
        }
        self.seen.insert(tx.id());
        let nonce = tx.nonce;
        self.lane_of.insert(sender, effective);
        match self.by_sender.entry(sender).or_default().insert(nonce, tx) {
            Some(evicted) => {
                // The bug this fixes: the evicted id used to stay in
                // `seen` forever, permanently banning re-submission.
                self.seen.remove(&evicted.id());
                self.metrics.counter("mempool.evictions", 1);
                self.metrics.event(
                    "mempool",
                    "evicted",
                    &[("sender", format!("{sender:?}")), ("nonce", nonce.to_string())],
                );
                InsertOutcome::Replaced(evicted)
            }
            None => {
                self.size += 1;
                self.metrics.counter("mempool.inserted", 1);
                self.metrics.counter(
                    match effective {
                        Lane::Priority => "mempool.inserted_priority",
                        Lane::Normal => "mempool.inserted_normal",
                    },
                    1,
                );
                self.metrics.gauge("mempool.len", self.size as i64);
                InsertOutcome::Inserted(effective)
            }
        }
    }

    /// Takes up to `max` transactions, respecting gap-free nonce runs
    /// starting from each sender's `next_nonce`. Priority-lane senders
    /// are drained before normal-lane senders.
    pub(crate) fn take_batch(
        &mut self,
        max: usize,
        mut next_nonce: impl FnMut(&Address) -> u64,
    ) -> Vec<Transaction> {
        let mut batch = Vec::new();
        let mut senders: Vec<Address> = self.by_sender.keys().copied().collect();
        // Stable partition: priority senders first, address order within
        // each lane (BTreeMap iteration is already address-ordered).
        senders.sort_by_key(|s| self.lane_of.get(s).copied().unwrap_or_default());
        'outer: for sender in senders {
            let mut nonce = next_nonce(&sender);
            while batch.len() < max {
                let Some(queue) = self.by_sender.get_mut(&sender) else { break };
                match queue.remove(&nonce) {
                    Some(tx) => {
                        self.size -= 1;
                        batch.push(tx);
                        nonce += 1;
                    }
                    None => break,
                }
            }
            if let Some(queue) = self.by_sender.get(&sender) {
                if queue.is_empty() {
                    self.by_sender.remove(&sender);
                    self.lane_of.remove(&sender);
                }
            }
            if batch.len() >= max {
                break 'outer;
            }
        }
        if !batch.is_empty() {
            self.metrics.observe("mempool.batch_size", batch.len() as f64);
            self.metrics.gauge("mempool.len", self.size as i64);
        }
        batch
    }

    /// Removes transactions already included in a committed block and
    /// stale nonces below each sender's account nonce.
    pub(crate) fn prune(
        &mut self,
        committed: &[Transaction],
        account_nonce: impl Fn(&Address) -> u64,
    ) {
        let before = self.size;
        for tx in committed {
            if let Some(queue) = self.by_sender.get_mut(&tx.sender) {
                if queue.remove(&tx.nonce).is_some() {
                    self.size -= 1;
                }
            }
        }
        let senders: Vec<Address> = self.by_sender.keys().copied().collect();
        for sender in senders {
            let floor = account_nonce(&sender);
            let queue = self.by_sender.get_mut(&sender).expect("sender present");
            let stale: Vec<u64> = queue.range(..floor).map(|(n, _)| *n).collect();
            for n in stale {
                queue.remove(&n);
                self.size -= 1;
            }
            if queue.is_empty() {
                self.by_sender.remove(&sender);
                self.lane_of.remove(&sender);
            }
        }
        if before > self.size {
            self.metrics.counter("mempool.pruned", (before - self.size) as u64);
            self.metrics.gauge("mempool.len", self.size as i64);
        }
    }
}

mod codec_impls {
    use super::Lane;
    use medchain_runtime::codec::{CodecError, Decode, Encode, Reader};

    impl Encode for Lane {
        fn encode(&self, out: &mut Vec<u8>) {
            out.push(match self {
                Lane::Priority => 0,
                Lane::Normal => 1,
            });
        }
    }

    impl Decode for Lane {
        fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
            match u8::decode(r)? {
                0 => Ok(Lane::Priority),
                1 => Ok(Lane::Normal),
                tag => Err(CodecError::InvalidTag { ty: "Lane", tag }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::AuthorityKey;
    use crate::tx::TxPayload;

    fn tx(key: &AuthorityKey, nonce: u64) -> Transaction {
        Transaction::new(
            key.address(),
            nonce,
            TxPayload::Transfer { to: Address::from_seed(99), amount: 1 },
            100,
        )
        .signed(key)
    }

    #[test]
    fn insert_dedupes() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        assert!(pool.insert(tx(&key, 0)));
        assert!(!pool.insert(tx(&key, 0)));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(2);
        pool.set_priority_reserve(0);
        assert!(pool.insert(tx(&key, 0)));
        assert!(pool.insert(tx(&key, 1)));
        assert!(!pool.insert(tx(&key, 2)));
    }

    #[test]
    fn take_batch_respects_nonce_gaps() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        pool.insert(tx(&key, 0));
        pool.insert(tx(&key, 2)); // gap at 1
        let batch = pool.take_batch(10, |_| 0);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].nonce, 0);
        assert_eq!(pool.len(), 1); // nonce 2 still waiting
    }

    #[test]
    fn take_batch_starts_at_account_nonce() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        pool.insert(tx(&key, 3));
        pool.insert(tx(&key, 4));
        let batch = pool.take_batch(10, |_| 3);
        assert_eq!(batch.iter().map(|t| t.nonce).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn take_batch_honours_max() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        for n in 0..5 {
            pool.insert(tx(&key, n));
        }
        assert_eq!(pool.take_batch(3, |_| 0).len(), 3);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn prune_removes_committed_and_stale() {
        let a = AuthorityKey::from_seed(1);
        let b = AuthorityKey::from_seed(2);
        let mut pool = Mempool::new(10);
        let committed = tx(&a, 0);
        pool.insert(committed.clone());
        pool.insert(tx(&a, 1));
        pool.insert(tx(&b, 0)); // stale: account nonce already 2
        pool.prune(&[committed], |addr| if *addr == b.address() { 2 } else { 1 });
        assert_eq!(pool.len(), 1);
        let batch = pool.take_batch(10, |_| 1);
        assert_eq!(batch[0].nonce, 1);
        assert_eq!(batch[0].sender, a.address());
    }

    /// Same `(sender, nonce)` slot, different payload → different id.
    fn tx_with_amount(key: &AuthorityKey, nonce: u64, amount: u64) -> Transaction {
        Transaction::new(
            key.address(),
            nonce,
            TxPayload::Transfer { to: Address::from_seed(99), amount },
            100,
        )
        .signed(key)
    }

    #[test]
    fn replacement_surfaces_eviction_and_frees_seen_id() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        let original = tx_with_amount(&key, 0, 1);
        let replacement = tx_with_amount(&key, 0, 2);
        assert_eq!(pool.try_insert(original.clone()), InsertOutcome::Inserted(Lane::Normal));
        // The replacement evicts the original and hands it back.
        assert_eq!(pool.try_insert(replacement.clone()), InsertOutcome::Replaced(original.clone()));
        assert_eq!(pool.len(), 1);
        // Regression: the evicted id must leave the seen-set so the
        // original can be re-submitted (it used to be banned forever).
        assert!(!pool.contains(&original.id()));
        assert!(pool.contains(&replacement.id()));
        assert_eq!(pool.try_insert(original.clone()), InsertOutcome::Replaced(replacement));
        assert!(pool.contains(&original.id()));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn replacement_is_admitted_at_capacity() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(2);
        pool.set_priority_reserve(0);
        assert!(pool.insert(tx_with_amount(&key, 0, 1)));
        assert!(pool.insert(tx_with_amount(&key, 1, 1)));
        // Pool is full, but a replacement does not grow it.
        assert!(matches!(
            pool.try_insert(tx_with_amount(&key, 0, 7)),
            InsertOutcome::Replaced(_)
        ));
        assert_eq!(pool.try_insert(tx_with_amount(&key, 2, 1)), InsertOutcome::Full);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn insert_outcomes_feed_metrics_counters() {
        use medchain_runtime::metrics::Registry;
        let registry = Registry::new();
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(2);
        pool.set_priority_reserve(0);
        pool.set_metrics(registry.handle());
        pool.insert(tx_with_amount(&key, 0, 1)); // inserted
        pool.insert(tx_with_amount(&key, 0, 1)); // dedup hit
        pool.insert(tx_with_amount(&key, 0, 2)); // eviction
        pool.insert(tx_with_amount(&key, 1, 1)); // inserted
        pool.insert(tx_with_amount(&key, 2, 1)); // full
        assert_eq!(registry.counter_value("mempool.inserted"), 2);
        assert_eq!(registry.counter_value("mempool.dedup_hits"), 1);
        assert_eq!(registry.counter_value("mempool.evictions"), 1);
        assert_eq!(registry.counter_value("mempool.full_rejects"), 1);
        let events = registry.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].scope, "mempool");
        assert_eq!(events[0].name, "evicted");
    }

    /// Moved from `tests/metrics.rs` when mempool mutators became
    /// `pub(crate)`: a replacement eviction is visible at the sink and
    /// frees the evicted id for re-submission.
    #[test]
    fn replacement_eviction_reaches_the_sink() {
        use medchain_runtime::metrics::Registry;
        let registry = Registry::default();
        let key = AuthorityKey::from_seed(9);
        let mut pool = Mempool::new(16);
        pool.set_metrics(registry.handle());
        assert!(matches!(pool.try_insert(tx_with_amount(&key, 0, 1)), InsertOutcome::Inserted(_)));
        let evicted = match pool.try_insert(tx_with_amount(&key, 0, 2)) {
            InsertOutcome::Replaced(old) => old,
            other => panic!("expected replacement, got {other:?}"),
        };
        assert_eq!(registry.counter_value("mempool.evictions"), 1);
        assert_eq!(registry.counter_value("mempool.inserted"), 1);
        // The evicted id is free again: re-inserting it is not a dedup hit.
        assert!(matches!(pool.try_insert(evicted), InsertOutcome::Replaced(_)));
        assert_eq!(registry.counter_value("mempool.dedup_hits"), 0);
        assert_eq!(registry.counter_value("mempool.evictions"), 2);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn len_matches_queued_after_mixed_operations() {
        // Property: size bookkeeping equals the sum of per-sender queue
        // lengths after arbitrary insert/take/prune sequences.
        use medchain_runtime::check::{check, CheckConfig};
        use medchain_runtime::ensure_eq;
        let keys: Vec<AuthorityKey> = (0..4).map(AuthorityKey::from_seed).collect();
        check("mempool len == queued", CheckConfig::cases(64), |g| {
            let mut pool = Mempool::new(g.usize_in(1, 24));
            let steps = g.usize_in(1, 60);
            for _ in 0..steps {
                match g.usize_in(0, 3) {
                    0 | 1 => {
                        let key = &keys[g.usize_in(0, keys.len() - 1)];
                        let nonce = g.u64() % 8;
                        let amount = 1 + g.u64() % 4;
                        let lane =
                            if g.usize_in(0, 1) == 0 { Lane::Priority } else { Lane::Normal };
                        pool.try_insert_in(tx_with_amount(key, nonce, amount), lane);
                    }
                    2 => {
                        let floor = g.u64() % 8;
                        pool.take_batch(g.usize_in(0, 8), |_| floor);
                    }
                    _ => {
                        let floor = g.u64() % 8;
                        pool.prune(&[], |_| floor);
                    }
                }
                ensure_eq!(pool.len(), pool.queued());
                ensure_eq!(pool.len(), pool.lane_len(Lane::Priority) + pool.lane_len(Lane::Normal));
            }
            Ok(())
        });
    }

    /// Post-resize invariant of [`Mempool::set_priority_reserve`]: a
    /// reserve change never evicts queued transactions, and the new
    /// limit binds at admission — a fresh normal-lane insert succeeds
    /// iff `len < capacity - reserve`, a priority-lane insert iff
    /// `len < capacity` (sticky sender lanes aside, which the probe
    /// senders below avoid by being fresh each check).
    #[test]
    fn reserve_resize_never_evicts_and_binds_at_admission() {
        use medchain_runtime::check::{check, CheckConfig};
        use medchain_runtime::{ensure, ensure_eq};
        let keys: Vec<AuthorityKey> = (0..4).map(AuthorityKey::from_seed).collect();
        check("mempool reserve resize invariant", CheckConfig::cases(64), |g| {
            let capacity = g.usize_in(2, 24);
            let mut pool = Mempool::new(capacity);
            let mut probe_seed = 100u64;
            let steps = g.usize_in(1, 40);
            for _ in 0..steps {
                match g.usize_in(0, 4) {
                    0 | 1 => {
                        let key = &keys[g.usize_in(0, keys.len() - 1)];
                        let nonce = g.u64() % 8;
                        let lane =
                            if g.usize_in(0, 1) == 0 { Lane::Priority } else { Lane::Normal };
                        pool.try_insert_in(tx(key, nonce), lane);
                    }
                    2 => {
                        // Resize, possibly past current occupancy. Must
                        // never evict.
                        let before = pool.len();
                        pool.set_priority_reserve(g.usize_in(0, capacity + 4));
                        ensure_eq!(pool.len(), before);
                    }
                    _ => {
                        let floor = g.u64() % 8;
                        pool.take_batch(g.usize_in(0, 6), |_| floor);
                    }
                }
                ensure!(
                    pool.priority_reserve <= capacity,
                    "reserve clamped to capacity"
                );
                // Probe both lanes with fresh senders (fresh sender =
                // no sticky-lane coercion, no slot replacement).
                for (lane, limit) in [
                    (Lane::Normal, capacity - pool.priority_reserve),
                    (Lane::Priority, capacity),
                ] {
                    let probe = AuthorityKey::from_seed(probe_seed);
                    probe_seed += 1;
                    let before = pool.len();
                    let outcome = pool.try_insert_in(tx(&probe, 0), lane);
                    if before < limit {
                        ensure_eq!(outcome, InsertOutcome::Inserted(lane));
                        // Undo the probe so it doesn't skew occupancy.
                        pool.take_batch(usize::MAX, |s| {
                            if *s == probe.address() { 0 } else { u64::MAX }
                        });
                        ensure_eq!(pool.len(), before);
                    } else {
                        ensure_eq!(outcome, InsertOutcome::Full);
                    }
                }
                ensure_eq!(pool.len(), pool.queued());
            }
            Ok(())
        });
    }

    /// Moved from `tests/properties.rs` when mempool mutators became
    /// `pub(crate)`: batches are gap-free nonce runs per sender.
    #[test]
    fn batches_are_nonce_ordered() {
        use medchain_runtime::check::{check, CheckConfig};
        use medchain_runtime::{ensure, ensure_eq};
        check("mempool batches are nonce ordered", CheckConfig::cases(64), |g| {
            let inserts = g.vec_of(1, 30, |g| (g.usize_in(0, 3), g.rng().gen_range(0u64..8)));
            let max = g.usize_in(1, 20);
            let keys: Vec<AuthorityKey> =
                (0..3).map(|i| AuthorityKey::from_seed(i as u64)).collect();
            let mut pool = Mempool::new(256);
            for &(who, nonce) in &inserts {
                let who = who.min(2);
                let tx = Transaction::new(
                    keys[who].address(),
                    nonce,
                    TxPayload::Transfer { to: keys[(who + 1) % 3].address(), amount: 1 },
                    100,
                )
                .signed(&keys[who]);
                pool.insert(tx);
            }
            let batch = pool.take_batch(max, |_| 0);
            ensure!(batch.len() <= max, "batch exceeds max");
            // Per sender: nonces start at 0 and are contiguous.
            for key in &keys {
                let nonces: Vec<u64> = batch
                    .iter()
                    .filter(|tx| tx.sender == key.address())
                    .map(|tx| tx.nonce)
                    .collect();
                for (i, n) in nonces.iter().enumerate() {
                    ensure_eq!(*n, i as u64);
                }
            }
            Ok(())
        });
    }

    #[test]
    fn multiple_senders_interleave() {
        let a = AuthorityKey::from_seed(1);
        let b = AuthorityKey::from_seed(2);
        let mut pool = Mempool::new(10);
        pool.insert(tx(&a, 0));
        pool.insert(tx(&b, 0));
        pool.insert(tx(&b, 1));
        let batch = pool.take_batch(10, |_| 0);
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn priority_lane_drains_first() {
        let a = AuthorityKey::from_seed(1); // normal
        let b = AuthorityKey::from_seed(2); // priority
        let mut pool = Mempool::new(10);
        pool.try_insert_in(tx(&a, 0), Lane::Normal);
        pool.try_insert_in(tx(&b, 0), Lane::Priority);
        pool.try_insert_in(tx(&b, 1), Lane::Priority);
        let batch = pool.take_batch(2, |_| 0);
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|t| t.sender == b.address()), "priority sender first");
        // The normal-lane transaction is still queued.
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.lane_len(Lane::Normal), 1);
    }

    #[test]
    fn priority_reserve_admits_priority_when_normal_is_full() {
        let a = AuthorityKey::from_seed(1);
        let b = AuthorityKey::from_seed(2);
        let mut pool = Mempool::new(4);
        pool.set_priority_reserve(2);
        // Normal lane fills its unreserved slice (4 - 2 = 2)…
        assert!(matches!(pool.try_insert_in(tx(&a, 0), Lane::Normal), InsertOutcome::Inserted(_)));
        assert!(matches!(pool.try_insert_in(tx(&a, 1), Lane::Normal), InsertOutcome::Inserted(_)));
        assert_eq!(pool.try_insert_in(tx(&a, 2), Lane::Normal), InsertOutcome::Full);
        // …but priority traffic still gets in, up to full capacity.
        assert!(matches!(
            pool.try_insert_in(tx(&b, 0), Lane::Priority),
            InsertOutcome::Inserted(Lane::Priority)
        ));
        assert!(matches!(
            pool.try_insert_in(tx(&b, 1), Lane::Priority),
            InsertOutcome::Inserted(Lane::Priority)
        ));
        assert_eq!(pool.try_insert_in(tx(&b, 2), Lane::Priority), InsertOutcome::Full);
    }

    #[test]
    fn sender_lane_is_sticky_until_queue_empties() {
        use medchain_runtime::metrics::Registry;
        let registry = Registry::new();
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        pool.set_metrics(registry.handle());
        assert_eq!(
            pool.try_insert_in(tx(&key, 0), Lane::Priority),
            InsertOutcome::Inserted(Lane::Priority)
        );
        // A normal-lane submission from the same sender is coerced onto
        // the sticky priority lane so its nonce run stays unsplit.
        assert_eq!(
            pool.try_insert_in(tx(&key, 1), Lane::Normal),
            InsertOutcome::Inserted(Lane::Priority)
        );
        assert_eq!(registry.counter_value("mempool.lane_coerced"), 1);
        // Draining the sender resets the lane.
        pool.take_batch(10, |_| 0);
        assert_eq!(
            pool.try_insert_in(tx(&key, 2), Lane::Normal),
            InsertOutcome::Inserted(Lane::Normal)
        );
    }

    #[test]
    fn lane_round_trips_through_codec() {
        use medchain_runtime::codec::{Decode, Encode, Reader};
        for lane in [Lane::Priority, Lane::Normal] {
            let bytes = lane.encoded();
            let mut reader = Reader::new(&bytes);
            assert_eq!(Lane::decode(&mut reader).unwrap(), lane);
        }
    }
}

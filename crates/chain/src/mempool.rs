//! Pending-transaction pool with per-sender nonce ordering.

use crate::hash::Hash256;
use crate::sig::Address;
use crate::tx::Transaction;
use std::collections::{BTreeMap, HashSet};

/// A mempool holding admissible transactions until block inclusion.
///
/// Transactions are keyed by `(sender, nonce)`; [`Mempool::take_batch`]
/// pops a gap-free nonce run per sender so the proposer never includes a
/// transaction whose predecessor is missing.
#[derive(Debug, Default, Clone)]
pub struct Mempool {
    by_sender: BTreeMap<Address, BTreeMap<u64, Transaction>>,
    seen: HashSet<Hash256>,
    capacity: usize,
    size: usize,
}

impl Mempool {
    /// Creates a pool bounded at `capacity` transactions.
    pub fn new(capacity: usize) -> Mempool {
        Mempool { capacity, ..Mempool::default() }
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Whether a transaction id has been seen (pending or gossiped).
    pub fn contains(&self, id: &Hash256) -> bool {
        self.seen.contains(id)
    }

    /// Inserts a transaction. Returns `false` if it was a duplicate or
    /// the pool is full.
    pub fn insert(&mut self, tx: Transaction) -> bool {
        if self.size >= self.capacity || !self.seen.insert(tx.id()) {
            return false;
        }
        let slot = self.by_sender.entry(tx.sender).or_default().insert(tx.nonce, tx);
        if slot.is_none() {
            self.size += 1;
        }
        true
    }

    /// Takes up to `max` transactions, respecting gap-free nonce runs
    /// starting from each sender's `next_nonce`.
    pub fn take_batch(
        &mut self,
        max: usize,
        mut next_nonce: impl FnMut(&Address) -> u64,
    ) -> Vec<Transaction> {
        let mut batch = Vec::new();
        let senders: Vec<Address> = self.by_sender.keys().copied().collect();
        'outer: for sender in senders {
            let mut nonce = next_nonce(&sender);
            while batch.len() < max {
                let Some(queue) = self.by_sender.get_mut(&sender) else { break };
                match queue.remove(&nonce) {
                    Some(tx) => {
                        self.size -= 1;
                        batch.push(tx);
                        nonce += 1;
                    }
                    None => break,
                }
            }
            if let Some(queue) = self.by_sender.get(&sender) {
                if queue.is_empty() {
                    self.by_sender.remove(&sender);
                }
            }
            if batch.len() >= max {
                break 'outer;
            }
        }
        batch
    }

    /// Removes transactions already included in a committed block and
    /// stale nonces below each sender's account nonce.
    pub fn prune(&mut self, committed: &[Transaction], account_nonce: impl Fn(&Address) -> u64) {
        for tx in committed {
            if let Some(queue) = self.by_sender.get_mut(&tx.sender) {
                if queue.remove(&tx.nonce).is_some() {
                    self.size -= 1;
                }
            }
        }
        let senders: Vec<Address> = self.by_sender.keys().copied().collect();
        for sender in senders {
            let floor = account_nonce(&sender);
            let queue = self.by_sender.get_mut(&sender).expect("sender present");
            let stale: Vec<u64> = queue.range(..floor).map(|(n, _)| *n).collect();
            for n in stale {
                queue.remove(&n);
                self.size -= 1;
            }
            if queue.is_empty() {
                self.by_sender.remove(&sender);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::AuthorityKey;
    use crate::tx::TxPayload;

    fn tx(key: &AuthorityKey, nonce: u64) -> Transaction {
        Transaction::new(
            key.address(),
            nonce,
            TxPayload::Transfer { to: Address::from_seed(99), amount: 1 },
            100,
        )
        .signed(key)
    }

    #[test]
    fn insert_dedupes() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        assert!(pool.insert(tx(&key, 0)));
        assert!(!pool.insert(tx(&key, 0)));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(2);
        assert!(pool.insert(tx(&key, 0)));
        assert!(pool.insert(tx(&key, 1)));
        assert!(!pool.insert(tx(&key, 2)));
    }

    #[test]
    fn take_batch_respects_nonce_gaps() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        pool.insert(tx(&key, 0));
        pool.insert(tx(&key, 2)); // gap at 1
        let batch = pool.take_batch(10, |_| 0);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].nonce, 0);
        assert_eq!(pool.len(), 1); // nonce 2 still waiting
    }

    #[test]
    fn take_batch_starts_at_account_nonce() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        pool.insert(tx(&key, 3));
        pool.insert(tx(&key, 4));
        let batch = pool.take_batch(10, |_| 3);
        assert_eq!(batch.iter().map(|t| t.nonce).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn take_batch_honours_max() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        for n in 0..5 {
            pool.insert(tx(&key, n));
        }
        assert_eq!(pool.take_batch(3, |_| 0).len(), 3);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn prune_removes_committed_and_stale() {
        let a = AuthorityKey::from_seed(1);
        let b = AuthorityKey::from_seed(2);
        let mut pool = Mempool::new(10);
        let committed = tx(&a, 0);
        pool.insert(committed.clone());
        pool.insert(tx(&a, 1));
        pool.insert(tx(&b, 0)); // stale: account nonce already 2
        pool.prune(&[committed], |addr| if *addr == b.address() { 2 } else { 1 });
        assert_eq!(pool.len(), 1);
        let batch = pool.take_batch(10, |_| 1);
        assert_eq!(batch[0].nonce, 1);
        assert_eq!(batch[0].sender, a.address());
    }

    #[test]
    fn multiple_senders_interleave() {
        let a = AuthorityKey::from_seed(1);
        let b = AuthorityKey::from_seed(2);
        let mut pool = Mempool::new(10);
        pool.insert(tx(&a, 0));
        pool.insert(tx(&b, 0));
        pool.insert(tx(&b, 1));
        let batch = pool.take_batch(10, |_| 0);
        assert_eq!(batch.len(), 3);
    }
}

//! Pending-transaction pool with per-sender nonce ordering.

use crate::hash::Hash256;
use crate::sig::Address;
use crate::tx::Transaction;
use medchain_runtime::metrics::Metrics;
use std::collections::{BTreeMap, HashSet};

/// Outcome of [`Mempool::try_insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The transaction entered a previously empty `(sender, nonce)` slot.
    Inserted,
    /// The transaction replaced the prior occupant of its `(sender,
    /// nonce)` slot; the evicted transaction is returned so callers can
    /// surface or re-gossip it, and its id is forgotten so it may be
    /// re-submitted.
    Replaced(Transaction),
    /// The exact transaction id is already pending or was gossiped.
    DuplicateId,
    /// The pool is at capacity and the transaction would grow it.
    Full,
}

/// A mempool holding admissible transactions until block inclusion.
///
/// Transactions are keyed by `(sender, nonce)`; [`Mempool::take_batch`]
/// pops a gap-free nonce run per sender so the proposer never includes a
/// transaction whose predecessor is missing.
#[derive(Debug, Default, Clone)]
pub struct Mempool {
    by_sender: BTreeMap<Address, BTreeMap<u64, Transaction>>,
    seen: HashSet<Hash256>,
    capacity: usize,
    size: usize,
    metrics: Metrics,
}

impl Mempool {
    /// Creates a pool bounded at `capacity` transactions.
    pub fn new(capacity: usize) -> Mempool {
        Mempool { capacity, ..Mempool::default() }
    }

    /// Installs a metrics handle; all `mempool.*` counters report there.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Whether a transaction id has been seen (pending or gossiped).
    pub fn contains(&self, id: &Hash256) -> bool {
        self.seen.contains(id)
    }

    /// Sum of per-sender queue lengths. Always equals [`Mempool::len`];
    /// exposed so tests can check the invariant from outside.
    pub fn queued(&self) -> usize {
        self.by_sender.values().map(|queue| queue.len()).sum()
    }

    /// Inserts a transaction. Returns `false` if it was a duplicate or
    /// the pool is full; a replacement of an existing `(sender, nonce)`
    /// slot counts as success. See [`Mempool::try_insert`] for the
    /// evicted transaction.
    pub fn insert(&mut self, tx: Transaction) -> bool {
        matches!(self.try_insert(tx), InsertOutcome::Inserted | InsertOutcome::Replaced(_))
    }

    /// Inserts a transaction, reporting exactly what happened.
    ///
    /// Replacing an occupied `(sender, nonce)` slot removes the evicted
    /// transaction's id from the seen-set (so it can be re-submitted
    /// later) and returns it in [`InsertOutcome::Replaced`]. A
    /// replacement is admitted even at capacity because the pool size
    /// does not grow.
    pub fn try_insert(&mut self, tx: Transaction) -> InsertOutcome {
        if self.seen.contains(&tx.id()) {
            self.metrics.counter("mempool.dedup_hits", 1);
            return InsertOutcome::DuplicateId;
        }
        let replacing =
            self.by_sender.get(&tx.sender).is_some_and(|queue| queue.contains_key(&tx.nonce));
        if !replacing && self.size >= self.capacity {
            self.metrics.counter("mempool.full_rejects", 1);
            return InsertOutcome::Full;
        }
        self.seen.insert(tx.id());
        let sender = tx.sender;
        let nonce = tx.nonce;
        match self.by_sender.entry(sender).or_default().insert(nonce, tx) {
            Some(evicted) => {
                // The bug this fixes: the evicted id used to stay in
                // `seen` forever, permanently banning re-submission.
                self.seen.remove(&evicted.id());
                self.metrics.counter("mempool.evictions", 1);
                self.metrics.event(
                    "mempool",
                    "evicted",
                    &[("sender", format!("{sender:?}")), ("nonce", nonce.to_string())],
                );
                InsertOutcome::Replaced(evicted)
            }
            None => {
                self.size += 1;
                self.metrics.counter("mempool.inserted", 1);
                self.metrics.gauge("mempool.len", self.size as i64);
                InsertOutcome::Inserted
            }
        }
    }

    /// Takes up to `max` transactions, respecting gap-free nonce runs
    /// starting from each sender's `next_nonce`.
    pub fn take_batch(
        &mut self,
        max: usize,
        mut next_nonce: impl FnMut(&Address) -> u64,
    ) -> Vec<Transaction> {
        let mut batch = Vec::new();
        let senders: Vec<Address> = self.by_sender.keys().copied().collect();
        'outer: for sender in senders {
            let mut nonce = next_nonce(&sender);
            while batch.len() < max {
                let Some(queue) = self.by_sender.get_mut(&sender) else { break };
                match queue.remove(&nonce) {
                    Some(tx) => {
                        self.size -= 1;
                        batch.push(tx);
                        nonce += 1;
                    }
                    None => break,
                }
            }
            if let Some(queue) = self.by_sender.get(&sender) {
                if queue.is_empty() {
                    self.by_sender.remove(&sender);
                }
            }
            if batch.len() >= max {
                break 'outer;
            }
        }
        if !batch.is_empty() {
            self.metrics.observe("mempool.batch_size", batch.len() as f64);
            self.metrics.gauge("mempool.len", self.size as i64);
        }
        batch
    }

    /// Removes transactions already included in a committed block and
    /// stale nonces below each sender's account nonce.
    pub fn prune(&mut self, committed: &[Transaction], account_nonce: impl Fn(&Address) -> u64) {
        let before = self.size;
        for tx in committed {
            if let Some(queue) = self.by_sender.get_mut(&tx.sender) {
                if queue.remove(&tx.nonce).is_some() {
                    self.size -= 1;
                }
            }
        }
        let senders: Vec<Address> = self.by_sender.keys().copied().collect();
        for sender in senders {
            let floor = account_nonce(&sender);
            let queue = self.by_sender.get_mut(&sender).expect("sender present");
            let stale: Vec<u64> = queue.range(..floor).map(|(n, _)| *n).collect();
            for n in stale {
                queue.remove(&n);
                self.size -= 1;
            }
            if queue.is_empty() {
                self.by_sender.remove(&sender);
            }
        }
        if before > self.size {
            self.metrics.counter("mempool.pruned", (before - self.size) as u64);
            self.metrics.gauge("mempool.len", self.size as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::AuthorityKey;
    use crate::tx::TxPayload;

    fn tx(key: &AuthorityKey, nonce: u64) -> Transaction {
        Transaction::new(
            key.address(),
            nonce,
            TxPayload::Transfer { to: Address::from_seed(99), amount: 1 },
            100,
        )
        .signed(key)
    }

    #[test]
    fn insert_dedupes() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        assert!(pool.insert(tx(&key, 0)));
        assert!(!pool.insert(tx(&key, 0)));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(2);
        assert!(pool.insert(tx(&key, 0)));
        assert!(pool.insert(tx(&key, 1)));
        assert!(!pool.insert(tx(&key, 2)));
    }

    #[test]
    fn take_batch_respects_nonce_gaps() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        pool.insert(tx(&key, 0));
        pool.insert(tx(&key, 2)); // gap at 1
        let batch = pool.take_batch(10, |_| 0);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].nonce, 0);
        assert_eq!(pool.len(), 1); // nonce 2 still waiting
    }

    #[test]
    fn take_batch_starts_at_account_nonce() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        pool.insert(tx(&key, 3));
        pool.insert(tx(&key, 4));
        let batch = pool.take_batch(10, |_| 3);
        assert_eq!(batch.iter().map(|t| t.nonce).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn take_batch_honours_max() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        for n in 0..5 {
            pool.insert(tx(&key, n));
        }
        assert_eq!(pool.take_batch(3, |_| 0).len(), 3);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn prune_removes_committed_and_stale() {
        let a = AuthorityKey::from_seed(1);
        let b = AuthorityKey::from_seed(2);
        let mut pool = Mempool::new(10);
        let committed = tx(&a, 0);
        pool.insert(committed.clone());
        pool.insert(tx(&a, 1));
        pool.insert(tx(&b, 0)); // stale: account nonce already 2
        pool.prune(&[committed], |addr| if *addr == b.address() { 2 } else { 1 });
        assert_eq!(pool.len(), 1);
        let batch = pool.take_batch(10, |_| 1);
        assert_eq!(batch[0].nonce, 1);
        assert_eq!(batch[0].sender, a.address());
    }

    /// Same `(sender, nonce)` slot, different payload → different id.
    fn tx_with_amount(key: &AuthorityKey, nonce: u64, amount: u64) -> Transaction {
        Transaction::new(
            key.address(),
            nonce,
            TxPayload::Transfer { to: Address::from_seed(99), amount },
            100,
        )
        .signed(key)
    }

    #[test]
    fn replacement_surfaces_eviction_and_frees_seen_id() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(10);
        let original = tx_with_amount(&key, 0, 1);
        let replacement = tx_with_amount(&key, 0, 2);
        assert_eq!(pool.try_insert(original.clone()), InsertOutcome::Inserted);
        // The replacement evicts the original and hands it back.
        assert_eq!(pool.try_insert(replacement.clone()), InsertOutcome::Replaced(original.clone()));
        assert_eq!(pool.len(), 1);
        // Regression: the evicted id must leave the seen-set so the
        // original can be re-submitted (it used to be banned forever).
        assert!(!pool.contains(&original.id()));
        assert!(pool.contains(&replacement.id()));
        assert_eq!(pool.try_insert(original.clone()), InsertOutcome::Replaced(replacement));
        assert!(pool.contains(&original.id()));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn replacement_is_admitted_at_capacity() {
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(2);
        assert!(pool.insert(tx_with_amount(&key, 0, 1)));
        assert!(pool.insert(tx_with_amount(&key, 1, 1)));
        // Pool is full, but a replacement does not grow it.
        assert!(matches!(
            pool.try_insert(tx_with_amount(&key, 0, 7)),
            InsertOutcome::Replaced(_)
        ));
        assert_eq!(pool.try_insert(tx_with_amount(&key, 2, 1)), InsertOutcome::Full);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn insert_outcomes_feed_metrics_counters() {
        use medchain_runtime::metrics::Registry;
        let registry = Registry::new();
        let key = AuthorityKey::from_seed(1);
        let mut pool = Mempool::new(2);
        pool.set_metrics(registry.handle());
        pool.insert(tx_with_amount(&key, 0, 1)); // inserted
        pool.insert(tx_with_amount(&key, 0, 1)); // dedup hit
        pool.insert(tx_with_amount(&key, 0, 2)); // eviction
        pool.insert(tx_with_amount(&key, 1, 1)); // inserted
        pool.insert(tx_with_amount(&key, 2, 1)); // full
        assert_eq!(registry.counter_value("mempool.inserted"), 2);
        assert_eq!(registry.counter_value("mempool.dedup_hits"), 1);
        assert_eq!(registry.counter_value("mempool.evictions"), 1);
        assert_eq!(registry.counter_value("mempool.full_rejects"), 1);
        let events = registry.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].scope, "mempool");
        assert_eq!(events[0].name, "evicted");
    }

    #[test]
    fn len_matches_queued_after_mixed_operations() {
        // Property: size bookkeeping equals the sum of per-sender queue
        // lengths after arbitrary insert/take/prune sequences.
        use medchain_runtime::check::{check, CheckConfig};
        use medchain_runtime::ensure_eq;
        let keys: Vec<AuthorityKey> = (0..4).map(AuthorityKey::from_seed).collect();
        check("mempool len == queued", CheckConfig::cases(64), |g| {
            let mut pool = Mempool::new(g.usize_in(1, 24));
            let steps = g.usize_in(1, 60);
            for _ in 0..steps {
                match g.usize_in(0, 3) {
                    0 | 1 => {
                        let key = &keys[g.usize_in(0, keys.len() - 1)];
                        let nonce = g.u64() % 8;
                        let amount = 1 + g.u64() % 4;
                        pool.try_insert(tx_with_amount(key, nonce, amount));
                    }
                    2 => {
                        let floor = g.u64() % 8;
                        pool.take_batch(g.usize_in(0, 8), |_| floor);
                    }
                    _ => {
                        let floor = g.u64() % 8;
                        pool.prune(&[], |_| floor);
                    }
                }
                ensure_eq!(pool.len(), pool.queued());
            }
            Ok(())
        });
    }

    #[test]
    fn multiple_senders_interleave() {
        let a = AuthorityKey::from_seed(1);
        let b = AuthorityKey::from_seed(2);
        let mut pool = Mempool::new(10);
        pool.insert(tx(&a, 0));
        pool.insert(tx(&b, 0));
        pool.insert(tx(&b, 1));
        let batch = pool.take_batch(10, |_| 0);
        assert_eq!(batch.len(), 3);
    }
}

//! [`ChainApp`] — the application side of a consensus replica: ledger,
//! mempool, and client transaction submission.

use crate::block::Block;
use crate::consensus::Application;
use crate::hash::Hash256;
use crate::ledger::{ContractRuntime, Ledger, LedgerStats, NullRuntime, Receipt};
use crate::mempool::{InsertOutcome, Lane, Mempool};
use crate::receipt::TxReceipt;
use crate::sig::{Address, KeyRegistry};
use crate::tx::Transaction;

/// Default mempool capacity.
pub const DEFAULT_MEMPOOL_CAPACITY: usize = 4096;
/// Default maximum transactions per block.
pub const DEFAULT_MAX_BLOCK_TXS: usize = 256;

/// Outcome of lane-aware admission ([`ChainApp::submit_in`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued for inclusion on `lane` (the sender's sticky lane, which
    /// may differ from the requested one); `replaced` is true when the
    /// transaction displaced a prior occupant of its `(sender, nonce)`
    /// slot.
    Admitted {
        /// Lane the transaction was queued on.
        lane: Lane,
        /// Whether a prior transaction in the same slot was evicted.
        replaced: bool,
    },
    /// The exact transaction id is already pending — detected *before*
    /// any signature work, so re-submission of a duplicate never
    /// re-verifies a one-time signature.
    Duplicate,
    /// The pool (or the normal lane's unreserved slice) is full.
    Full,
    /// Signature or nonce check failed.
    Inadmissible,
}

impl SubmitOutcome {
    /// Whether the transaction is now queued.
    pub fn is_admitted(&self) -> bool {
        matches!(self, SubmitOutcome::Admitted { .. })
    }
}

/// A full node's chain-facing application state.
///
/// Every replica holds an identical `ChainApp` and executes every
/// committed transaction — the duplicated computing the paper starts
/// from. Work performed here is metered via [`LedgerStats`].
pub struct ChainApp {
    ledger: Ledger,
    mempool: Mempool,
    max_block_txs: usize,
    timestamp_quantum_ms: u64,
    metrics: medchain_runtime::metrics::Metrics,
}

impl std::fmt::Debug for ChainApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainApp")
            .field("height", &self.ledger.height())
            .field("mempool", &self.mempool.len())
            .finish()
    }
}

impl ChainApp {
    /// Creates a node with the [`NullRuntime`] (no contract execution).
    pub fn new(chain_id: &str, registry: KeyRegistry) -> ChainApp {
        Self::with_runtime(chain_id, registry, Box::new(NullRuntime))
    }

    /// Creates a node with a contract runtime installed.
    pub fn with_runtime(
        chain_id: &str,
        registry: KeyRegistry,
        runtime: Box<dyn ContractRuntime>,
    ) -> ChainApp {
        Self::from_ledger(Ledger::new(chain_id, registry, runtime))
    }

    /// Creates a replica of sub-chain `shard` in a `shard_count`-shard
    /// topology (DESIGN.md §9): the ledger follows that shard's genesis
    /// and rejects blocks from any other sub-chain.
    pub fn sharded(
        chain_id: &str,
        shard: crate::shard::ShardId,
        shard_count: u16,
        registry: KeyRegistry,
        runtime: Box<dyn ContractRuntime>,
    ) -> ChainApp {
        Self::from_ledger(Ledger::new_sharded(chain_id, shard, shard_count, registry, runtime))
    }

    fn from_ledger(ledger: Ledger) -> ChainApp {
        ChainApp {
            ledger,
            mempool: Mempool::new(DEFAULT_MEMPOOL_CAPACITY),
            max_block_txs: DEFAULT_MAX_BLOCK_TXS,
            timestamp_quantum_ms: 1,
            metrics: medchain_runtime::metrics::Metrics::noop(),
        }
    }

    /// Installs a metrics handle on the app, its mempool, and its
    /// ledger; commits report under `chain.*`, admission under
    /// `mempool.*`, block execution under `exec.*`.
    pub fn set_metrics(&mut self, metrics: medchain_runtime::metrics::Metrics) {
        self.mempool.set_metrics(metrics.clone());
        self.ledger.set_metrics(metrics.clone());
        self.metrics = metrics;
    }

    /// Sets the per-block transaction cap.
    pub fn set_max_block_txs(&mut self, max: usize) {
        self.max_block_txs = max;
    }

    /// Quantizes proposed block timestamps down to a multiple of
    /// `quantum_ms` (0 is treated as 1, i.e. no quantization).
    ///
    /// Block ids commit to the header timestamp, so a cluster running on
    /// wall-clock sockets produces different hashes from a logical-clock
    /// simulation unless proposals land on the same grid. Setting the
    /// quantum to the block interval on every replica makes the two
    /// transports byte-identical for the same workload: a proposal made
    /// anywhere inside tick *k* is stamped `k · interval`.
    pub fn set_timestamp_quantum_ms(&mut self, quantum_ms: u64) {
        self.timestamp_quantum_ms = quantum_ms.max(1);
    }

    /// Submits a client transaction to the local mempool.
    ///
    /// Returns `false` if the transaction is inadmissible or a duplicate.
    pub fn submit(&mut self, tx: Transaction) -> bool {
        self.submit_in(tx, Lane::Normal).is_admitted()
    }

    /// Lane-aware submission with full signature verification.
    ///
    /// Dedup by transaction id runs **before** the signature check: a
    /// one-time (Lamport-style) signature scheme consumes key state on
    /// signing, so a client retrying a submission must get a cheap
    /// idempotent answer rather than a second verification pass that
    /// could misread key-reuse bookkeeping.
    pub fn submit_in(&mut self, tx: Transaction, lane: Lane) -> SubmitOutcome {
        if self.mempool.contains(&tx.id()) {
            self.metrics.counter("mempool.dedup_hits", 1);
            return SubmitOutcome::Duplicate;
        }
        if self.ledger.check_admissible(&tx).is_err() {
            self.metrics.counter("mempool.inadmissible", 1);
            return SubmitOutcome::Inadmissible;
        }
        self.insert_checked(tx, lane)
    }

    /// Lane-aware submission for transactions whose signature was
    /// **already verified by the caller** — the gateway's batch-verify
    /// path. Only the nonce is re-checked against current state.
    ///
    /// Trust boundary: callers must have run `tx.verify(registry)` (or
    /// equivalent) on this exact transaction; passing unverified
    /// transactions here would let unsigned data into blocks, which
    /// honest replicas then reject at proposal time.
    pub fn submit_verified(&mut self, tx: Transaction, lane: Lane) -> SubmitOutcome {
        if self.mempool.contains(&tx.id()) {
            self.metrics.counter("mempool.dedup_hits", 1);
            return SubmitOutcome::Duplicate;
        }
        if self.ledger.check_nonce(&tx).is_err() {
            self.metrics.counter("mempool.inadmissible", 1);
            return SubmitOutcome::Inadmissible;
        }
        self.insert_checked(tx, lane)
    }

    fn insert_checked(&mut self, tx: Transaction, lane: Lane) -> SubmitOutcome {
        let sender = tx.sender;
        match self.mempool.try_insert_in(tx, lane) {
            InsertOutcome::Inserted(lane) => SubmitOutcome::Admitted { lane, replaced: false },
            InsertOutcome::Replaced(_) => SubmitOutcome::Admitted {
                // A replacement lands on the sender's sticky lane.
                lane: self.mempool.lane_of(&sender).unwrap_or(lane),
                replaced: true,
            },
            InsertOutcome::DuplicateId => SubmitOutcome::Duplicate,
            InsertOutcome::Full => SubmitOutcome::Full,
        }
    }

    /// Whether a transaction id is currently pending in the mempool.
    pub fn mempool_contains(&self, tx_id: &Hash256) -> bool {
        self.mempool.contains(tx_id)
    }

    /// Sets the mempool capacity slice reserved for the priority lane.
    pub fn set_priority_reserve(&mut self, reserve: usize) {
        self.mempool.set_priority_reserve(reserve);
    }

    /// Proof-carrying client receipt for a committed transaction
    /// (see [`crate::ledger::Ledger::tx_receipt`]).
    pub fn tx_receipt(&self, tx_id: &Hash256) -> Option<TxReceipt> {
        self.ledger.tx_receipt(tx_id)
    }

    /// The underlying ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Mutable ledger access (genesis funding in simulations).
    pub fn ledger_mut(&mut self) -> &mut Ledger {
        &mut self.ledger
    }

    /// Attaches a durable [`crate::store::BlockStore`] to the ledger:
    /// every committed block is persisted before the in-memory commit.
    pub fn attach_store(&mut self, store: Box<dyn crate::store::BlockStore>) {
        self.ledger.attach_store(store);
    }

    /// Pending transaction count.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Receipt lookup.
    pub fn receipt(&self, tx_id: &Hash256) -> Option<&Receipt> {
        self.ledger.receipt(tx_id)
    }

    /// Ledger work counters.
    pub fn stats(&self) -> LedgerStats {
        self.ledger.stats()
    }

    /// Block id at `height` (test/diagnostic helper).
    ///
    /// # Panics
    ///
    /// Panics if `height` has not been committed.
    pub fn tip_at(&self, height: u64) -> Hash256 {
        self.ledger.block(height).expect("height committed").id()
    }
}

impl Application for ChainApp {
    fn height(&self) -> u64 {
        self.ledger.height()
    }

    fn tip_id(&self) -> Hash256 {
        self.ledger.tip().id()
    }

    fn make_block(&mut self, proposer: Address, now_ms: u64) -> Block {
        let state = self.ledger.state();
        let batch = self
            .mempool
            .take_batch(self.max_block_txs, |sender| state.account(sender).nonce);
        let stamped = (now_ms / self.timestamp_quantum_ms) * self.timestamp_quantum_ms;
        self.ledger.propose(proposer, stamped, batch)
    }

    fn validate_block(&self, block: &Block) -> bool {
        block.header.parent == self.tip_id()
            && block.header.height == self.height() + 1
            && block.is_body_consistent()
            && block.transactions.iter().all(|tx| tx.verify(self.ledger.registry()))
    }

    fn sealed_block(&self, height: u64) -> Option<Block> {
        self.ledger.block(height).cloned()
    }

    fn commit_block(&mut self, block: &Block) -> bool {
        match self.ledger.apply(block) {
            Ok(_) => {
                let state = self.ledger.state();
                let nonces: std::collections::HashMap<Address, u64> = block
                    .transactions
                    .iter()
                    .map(|tx| (tx.sender, state.account(&tx.sender).nonce))
                    .collect();
                self.mempool
                    .prune(&block.transactions, |addr| nonces.get(addr).copied().unwrap_or(0));
                self.metrics.counter("chain.blocks_committed", 1);
                self.metrics.counter("chain.txs_committed", block.transactions.len() as u64);
                true
            }
            Err(_) => {
                self.metrics.counter("chain.commit_failures", 1);
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::AuthorityKey;
    use crate::tx::TxPayload;

    fn setup() -> (ChainApp, AuthorityKey, AuthorityKey) {
        let alice = AuthorityKey::from_seed(1);
        let bob = AuthorityKey::from_seed(2);
        let mut registry = KeyRegistry::new();
        registry.enroll(&alice);
        registry.enroll(&bob);
        let mut app = ChainApp::new("node-test", registry);
        app.ledger_mut().state_mut().credit(alice.address(), 1_000);
        (app, alice, bob)
    }

    fn transfer(key: &AuthorityKey, nonce: u64, to: Address, amount: u64) -> Transaction {
        Transaction::new(key.address(), nonce, TxPayload::Transfer { to, amount }, 100).signed(key)
    }

    #[test]
    fn submit_propose_commit_round_trip() {
        let (mut app, alice, bob) = setup();
        assert!(app.submit(transfer(&alice, 0, bob.address(), 100)));
        let block = app.make_block(alice.address(), 50);
        assert_eq!(block.transactions.len(), 1);
        assert!(app.validate_block(&block));
        assert!(app.commit_block(&block));
        assert_eq!(app.ledger().state().account(&bob.address()).balance, 100);
        assert_eq!(app.mempool_len(), 0);
    }

    #[test]
    fn submit_rejects_bad_signature() {
        let (mut app, alice, bob) = setup();
        let mut tx = transfer(&alice, 0, bob.address(), 100);
        tx.signature = None;
        assert!(!app.submit(tx));
    }

    #[test]
    fn validate_rejects_foreign_block() {
        let (app, alice, _) = setup();
        let other_registry = {
            let mut r = KeyRegistry::new();
            r.enroll(&alice);
            r
        };
        let mut other = ChainApp::new("different-chain", other_registry);
        let block = other.make_block(alice.address(), 10);
        assert!(!app.validate_block(&block));
    }

    #[test]
    fn block_cap_is_respected() {
        let (mut app, alice, bob) = setup();
        app.set_max_block_txs(3);
        for n in 0..10 {
            assert!(app.submit(transfer(&alice, n, bob.address(), 1)));
        }
        let block = app.make_block(alice.address(), 10);
        assert_eq!(block.transactions.len(), 3);
        assert_eq!(app.mempool_len(), 7);
    }

    #[test]
    fn commit_returns_false_on_invalid_block() {
        let (mut app, alice, bob) = setup();
        app.submit(transfer(&alice, 0, bob.address(), 100));
        let mut block = app.make_block(alice.address(), 50);
        block.header.state_root = Hash256::digest(b"forged");
        assert!(!app.commit_block(&block));
        assert_eq!(app.height(), 0);
    }
}

//! Transactions of the permissioned medical blockchain.
//!
//! The chain layer is deliberately execution-agnostic: contract deployment
//! and invocation payloads carry opaque bytes that the execution layer
//! (`medchain-contracts`) interprets. This keeps the substrate compatible
//! with the paper's requirement that the *same* on-chain protocol carry
//! arbitrary user-defined smart-contract code.

use crate::hash::Hash256;
use crate::sig::{Address, AuthorityKey, AuthoritySignature, KeyRegistry};

/// What a transaction asks the chain to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxPayload {
    /// Transfer of the consortium accounting token (used for incentive
    /// and cost accounting, not speculation).
    Transfer {
        /// Recipient.
        to: Address,
        /// Amount in base units.
        amount: u64,
    },
    /// Deploy a smart contract; `code` is execution-layer bytecode.
    Deploy {
        /// Contract bytecode.
        code: Vec<u8>,
        /// Constructor argument blob.
        init: Vec<u8>,
    },
    /// Invoke a deployed contract.
    Invoke {
        /// Address the contract was deployed at.
        contract: Address,
        /// ABI-encoded call data (interpreted by the execution layer).
        input: Vec<u8>,
    },
    /// Anchor the Merkle root of an off-chain dataset or code artifact
    /// (Irving–Holden integrity pattern, paper §III-A).
    Anchor {
        /// Merkle root of the off-chain artifact.
        root: Hash256,
        /// Human-readable label, e.g. `"hospital-3/emr/2018-q2"`.
        label: String,
    },
    /// Commit one shard sub-chain's tip onto the coordinator chain
    /// (consensus-level sharding, DESIGN.md §9). Only valid on a
    /// coordinator ledger; the apply-time checks enforce monotonic
    /// heights per shard so a shard cannot silently rewind.
    CrossLink {
        /// The shard whose tip is being committed.
        shard: crate::shard::ShardId,
        /// Height of the shard's tip block.
        height: u64,
        /// Digest of the shard's tip block header.
        tip: Hash256,
    },
    /// Phase one of a cross-shard atomic transfer (DESIGN.md §12):
    /// lock one leg's account on the participant shard named by the
    /// leg. A debit leg escrows the amount at prepare time; a credit
    /// leg only records the pending credit. The lock receipt is the
    /// ordinary transaction receipt committed on that shard's
    /// sub-chain.
    XsPrepare {
        /// Cross-shard transaction id shared by every leg.
        xid: Hash256,
        /// The leg this prepare locks.
        leg: XsLeg,
        /// Chain-time deadline after which the coordinator may
        /// record an abort for `xid` (timeout-abort path).
        deadline_ms: u64,
    },
    /// Coordinator-chain decision for a cross-shard transaction:
    /// commit or abort. Only valid on the coordinator ledger; at most
    /// one decision per `xid` is ever recorded, and participants
    /// resolve interrupted 2PC rounds against it on restart.
    XsDecide {
        /// The cross-shard transaction being decided.
        xid: Hash256,
        /// `true` to commit, `false` to abort.
        commit: bool,
    },
    /// Phase two on a participant shard: apply the coordinator's
    /// decision to the lock held for `account`, paying out a credit
    /// leg / refunding an aborted debit leg, and releasing the lock.
    XsFinalize {
        /// The cross-shard transaction being finalized.
        xid: Hash256,
        /// The locked account this finalize releases.
        account: Address,
        /// The coordinator's decision being applied.
        commit: bool,
    },
}

/// One leg of a cross-shard transfer: which shard it executes on,
/// which account it touches, and whether it debits (escrow at
/// prepare) or credits (pay out at commit-finalize).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XsLeg {
    /// The shard this leg must execute on.
    pub shard: crate::shard::ShardId,
    /// The account locked by this leg.
    pub account: Address,
    /// Amount moved by this leg, in base units.
    pub amount: u64,
    /// `true` for the debit (escrow) side, `false` for the credit
    /// side.
    pub debit: bool,
}

impl TxPayload {
    /// Approximate serialized size in bytes, for network accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            TxPayload::Transfer { .. } => 28,
            TxPayload::Deploy { code, init } => 8 + code.len() + init.len(),
            TxPayload::Invoke { input, .. } => 20 + input.len(),
            TxPayload::Anchor { label, .. } => 32 + label.len(),
            TxPayload::CrossLink { .. } => 42,
            TxPayload::XsPrepare { .. } => 71,
            TxPayload::XsDecide { .. } => 33,
            TxPayload::XsFinalize { .. } => 53,
        }
    }
}

/// A signed transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Sender address.
    pub sender: Address,
    /// Sender's account nonce (replay protection).
    pub nonce: u64,
    /// Requested operation.
    pub payload: TxPayload,
    /// Gas the sender is willing to spend on execution.
    pub gas_limit: u64,
    /// Membership-service signature over [`Transaction::signing_bytes`].
    pub signature: Option<AuthoritySignature>,
}

impl Transaction {
    /// Creates an unsigned transaction.
    pub fn new(sender: Address, nonce: u64, payload: TxPayload, gas_limit: u64) -> Transaction {
        Transaction { sender, nonce, payload, gas_limit, signature: None }
    }

    /// Canonical bytes covered by the signature and the transaction id.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.payload.wire_size());
        out.extend_from_slice(&self.sender.0);
        out.extend_from_slice(&self.nonce.to_le_bytes());
        out.extend_from_slice(&self.gas_limit.to_le_bytes());
        match &self.payload {
            TxPayload::Transfer { to, amount } => {
                out.push(0);
                out.extend_from_slice(&to.0);
                out.extend_from_slice(&amount.to_le_bytes());
            }
            TxPayload::Deploy { code, init } => {
                out.push(1);
                out.extend_from_slice(&(code.len() as u64).to_le_bytes());
                out.extend_from_slice(code);
                out.extend_from_slice(init);
            }
            TxPayload::Invoke { contract, input } => {
                out.push(2);
                out.extend_from_slice(&contract.0);
                out.extend_from_slice(input);
            }
            TxPayload::Anchor { root, label } => {
                out.push(3);
                out.extend_from_slice(&root.0);
                out.extend_from_slice(label.as_bytes());
            }
            TxPayload::CrossLink { shard, height, tip } => {
                out.push(4);
                out.extend_from_slice(&shard.0.to_le_bytes());
                out.extend_from_slice(&height.to_le_bytes());
                out.extend_from_slice(&tip.0);
            }
            TxPayload::XsPrepare { xid, leg, deadline_ms } => {
                out.push(5);
                out.extend_from_slice(&xid.0);
                out.extend_from_slice(&leg.shard.0.to_le_bytes());
                out.extend_from_slice(&leg.account.0);
                out.extend_from_slice(&leg.amount.to_le_bytes());
                out.push(u8::from(leg.debit));
                out.extend_from_slice(&deadline_ms.to_le_bytes());
            }
            TxPayload::XsDecide { xid, commit } => {
                out.push(6);
                out.extend_from_slice(&xid.0);
                out.push(u8::from(*commit));
            }
            TxPayload::XsFinalize { xid, account, commit } => {
                out.push(7);
                out.extend_from_slice(&xid.0);
                out.extend_from_slice(&account.0);
                out.push(u8::from(*commit));
            }
        }
        out
    }

    /// Transaction id: the digest of the signing bytes.
    pub fn id(&self) -> Hash256 {
        Hash256::digest(&self.signing_bytes())
    }

    /// Signs the transaction with `key`, returning it for chaining.
    pub fn signed(mut self, key: &AuthorityKey) -> Transaction {
        self.signature = Some(key.sign(&self.signing_bytes()));
        self
    }

    /// Verifies signature presence, signer match, and MAC validity
    /// against the consortium registry.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        match &self.signature {
            Some(sig) => sig.signer == self.sender && registry.verify(&self.signing_bytes(), sig),
            None => false,
        }
    }

    /// Exact wire size for network accounting: the canonical encoded
    /// length, which is what a socket transport actually frames.
    pub fn wire_size(&self) -> usize {
        use medchain_runtime::codec::Encode;
        self.encoded().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with(key: &AuthorityKey) -> KeyRegistry {
        let mut r = KeyRegistry::new();
        r.enroll(key);
        r
    }

    #[test]
    fn sign_and_verify() {
        let key = AuthorityKey::from_seed(1);
        let tx = Transaction::new(
            key.address(),
            0,
            TxPayload::Transfer { to: Address::from_seed(9), amount: 10 },
            1_000,
        )
        .signed(&key);
        assert!(tx.verify(&registry_with(&key)));
    }

    #[test]
    fn unsigned_tx_fails_verification() {
        let key = AuthorityKey::from_seed(1);
        let tx = Transaction::new(
            key.address(),
            0,
            TxPayload::Anchor { root: Hash256::ZERO, label: "x".into() },
            0,
        );
        assert!(!tx.verify(&registry_with(&key)));
    }

    #[test]
    fn signature_does_not_transfer_to_modified_tx() {
        let key = AuthorityKey::from_seed(1);
        let mut tx = Transaction::new(
            key.address(),
            0,
            TxPayload::Transfer { to: Address::from_seed(9), amount: 10 },
            1_000,
        )
        .signed(&key);
        tx.payload = TxPayload::Transfer { to: Address::from_seed(9), amount: 10_000 };
        assert!(!tx.verify(&registry_with(&key)));
    }

    #[test]
    fn sender_spoofing_is_rejected() {
        let key = AuthorityKey::from_seed(1);
        let victim = AuthorityKey::from_seed(2);
        let mut registry = registry_with(&key);
        registry.enroll(&victim);
        let mut tx = Transaction::new(
            key.address(),
            0,
            TxPayload::Transfer { to: Address::from_seed(9), amount: 10 },
            1_000,
        )
        .signed(&key);
        tx.sender = victim.address();
        assert!(!tx.verify(&registry));
    }

    #[test]
    fn id_is_stable_and_payload_sensitive() {
        let key = AuthorityKey::from_seed(1);
        let mk = |amount| {
            Transaction::new(
                key.address(),
                7,
                TxPayload::Transfer { to: Address::from_seed(3), amount },
                500,
            )
        };
        assert_eq!(mk(5).id(), mk(5).id());
        assert_ne!(mk(5).id(), mk(6).id());
    }

    #[test]
    fn cross_shard_payloads_round_trip_and_have_distinct_ids() {
        use crate::shard::ShardId;
        use medchain_runtime::codec::{Decode, Encode};
        let key = AuthorityKey::from_seed(4);
        let leg = XsLeg {
            shard: ShardId(1),
            account: Address::from_seed(7),
            amount: 25,
            debit: true,
        };
        let payloads = [
            TxPayload::XsPrepare { xid: Hash256::digest(b"x"), leg, deadline_ms: 9_000 },
            TxPayload::XsDecide { xid: Hash256::digest(b"x"), commit: true },
            TxPayload::XsDecide { xid: Hash256::digest(b"x"), commit: false },
            TxPayload::XsFinalize {
                xid: Hash256::digest(b"x"),
                account: Address::from_seed(7),
                commit: true,
            },
        ];
        let mut ids = std::collections::BTreeSet::new();
        for payload in payloads {
            let tx = Transaction::new(key.address(), 0, payload.clone(), 100).signed(&key);
            assert!(tx.verify(&registry_with(&key)));
            assert_eq!(TxPayload::decoded(&payload.encoded()).unwrap(), payload);
            ids.insert(tx.id());
        }
        assert_eq!(ids.len(), 4, "each payload shape must hash distinctly");
    }

    #[test]
    fn wire_size_tracks_payload() {
        let small = TxPayload::Invoke { contract: Address::from_seed(0), input: vec![0; 4] };
        let large = TxPayload::Invoke { contract: Address::from_seed(0), input: vec![0; 400] };
        assert!(large.wire_size() > small.wire_size());
    }
}

mod codec_impls {
    use super::{Transaction, TxPayload, XsLeg};
    use medchain_runtime::{impl_codec_enum, impl_codec_struct};

    impl_codec_enum!(TxPayload {
        0 => Transfer { to, amount },
        1 => Deploy { code, init },
        2 => Invoke { contract, input },
        3 => Anchor { root, label },
        4 => CrossLink { shard, height, tip },
        5 => XsPrepare { xid, leg, deadline_ms },
        6 => XsDecide { xid, commit },
        7 => XsFinalize { xid, account, commit },
    });
    impl_codec_struct!(XsLeg { shard, account, amount, debit });
    impl_codec_struct!(Transaction { sender, nonce, payload, gas_limit, signature });
}

//! # medchain-chain — permissioned blockchain substrate
//!
//! The blockchain the paper's architecture runs on: hashing and
//! signatures built from scratch, Merkle-anchored blocks, a replicated
//! ledger with a pluggable smart-contract runtime, four consensus
//! engines (PoA, PBFT, PoW, PoS) over a deterministic discrete-event
//! network simulator, and an energy model calibrated to the
//! Digiconomist figure the paper cites.
//!
//! Every replica executes every committed transaction — the *duplicated
//! computing* the paper starts from (§I). The crates layered above
//! (`medchain-contracts`, `medchain-offchain`, `medchain`) implement the
//! transformation of that duplication into distributed parallel
//! computing.
//!
//! ## Quick example: a 4-validator PoA consortium
//!
//! ```
//! use medchain_chain::consensus::{poa::PoaEngine, Cluster};
//! use medchain_chain::node::ChainApp;
//!
//! let (engines, registry, _) = PoaEngine::make_validators(4, 50);
//! let apps = (0..4).map(|_| ChainApp::new("demo", registry.clone())).collect();
//! let mut cluster = Cluster::new(engines, apps, 42);
//! let report = cluster.run_until_height(3, 60_000);
//! assert!(report.reached);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod auth;
pub mod block;
pub mod consensus;
pub mod energy;
pub mod exec;
pub mod hash;
pub mod ledger;
pub mod mempool;
pub mod merkle;
pub mod net;
pub mod node;
pub mod receipt;
pub mod shard;
pub mod sig;
pub mod store;
pub mod tx;

pub use auth::{LeafKey, NodePager, ProofTerminal, SmtProof, StateProof, StateTree};
pub use block::{Block, Header, Seal};
pub use exec::{ExecScope, RwSet, StateAccess, StateDelta, StateKey, WorldStateOverlay};
pub use hash::{Hash256, Sha256};
pub use ledger::{
    Account, AccountPager, CommitObserver, ContractRuntime, CrossLinkRecord, Event, ExecError,
    ExecOutcome, Ledger, Receipt, StateCacheConfig, WorldState, XsDecisionRecord, XsLock,
};
pub use mempool::Lane;
pub use merkle::{MerkleProof, MerkleTree};
pub use net::{NodeId, SimNetwork, SimTransport, TcpTransport, Transport, Wire};
pub use node::SubmitOutcome;
pub use receipt::TxReceipt;
pub use shard::{shard_for_key, shard_for_tx, sharded_contract_address, CrossLink, ShardId};
pub use sig::{Address, AuthorityKey, AuthoritySignature, KeyRegistry};
pub use store::{BlockStore, MemStore, StoreError};
pub use tx::{Transaction, TxPayload, XsLeg};

//! SHA-256 implemented from scratch (FIPS 180-4), plus the [`Hash256`]
//! digest newtype used throughout the chain.
//!
//! The blockchain substrate needs a collision-resistant hash for block
//! headers, Merkle trees, transaction ids, Lamport signatures and
//! off-chain data anchoring. We implement SHA-256 in-repo rather than
//! pulling a crypto dependency (see DESIGN.md §2).

use std::fmt;

/// Initial hash values: first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use medchain_chain::hash::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"abc");
/// let digest = hasher.finalize();
/// assert_eq!(
///     digest.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (for the length suffix).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 { state: H0, len: 0, buf: [0; 64], buf_len: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len += data.len() as u64;
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Consumes the hasher, returning the 32-byte digest.
    pub fn finalize(mut self) -> Hash256 {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Append length manually so `self.len` bookkeeping is not disturbed.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash256(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// A 256-bit digest.
///
/// # Examples
///
/// ```
/// use medchain_chain::hash::Hash256;
///
/// let a = Hash256::digest(b"patient record");
/// let b = Hash256::digest(b"patient record");
/// assert_eq!(a, b);
/// assert_ne!(a, Hash256::digest(b"tampered record"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero digest, used as the parent of the genesis block.
    pub const ZERO: Hash256 = Hash256([0; 32]);

    /// Hashes `data` in one shot.
    pub fn digest(data: &[u8]) -> Hash256 {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Hashes the concatenation of two digests (Merkle interior nodes).
    pub fn combine(left: &Hash256, right: &Hash256) -> Hash256 {
        let mut h = Sha256::new();
        h.update(&left.0);
        h.update(&right.0);
        h.finalize()
    }

    /// Returns the digest as a lowercase hex string.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseHashError`] if the string is not exactly 64 hex digits.
    pub fn from_hex(s: &str) -> Result<Hash256, ParseHashError> {
        if s.len() != 64 {
            return Err(ParseHashError);
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = hex_val(chunk[0]).ok_or(ParseHashError)?;
            let lo = hex_val(chunk[1]).ok_or(ParseHashError)?;
            out[i] = (hi << 4) | lo;
        }
        Ok(Hash256(out))
    }

    /// Number of leading zero bits — the proof-of-work difficulty measure.
    pub fn leading_zero_bits(&self) -> u32 {
        let mut bits = 0;
        for b in &self.0 {
            if *b == 0 {
                bits += 8;
            } else {
                bits += b.leading_zeros();
                break;
            }
        }
        bits
    }

    /// Borrows the digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash256({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Hash256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Hash256 {
    fn from(bytes: [u8; 32]) -> Self {
        Hash256(bytes)
    }
}

/// Error returned when parsing a hex digest fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseHashError;

impl fmt::Display for ParseHashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid 256-bit hash hex syntax")
    }
}

impl std::error::Error for ParseHashError {}

/// HMAC-SHA256 (RFC 2104), used by authority signatures and key derivation.
///
/// # Examples
///
/// ```
/// use medchain_chain::hash::hmac_sha256;
///
/// let tag = hmac_sha256(b"node-secret", b"message");
/// assert_eq!(tag, hmac_sha256(b"node-secret", b"message"));
/// assert_ne!(tag, hmac_sha256(b"other-secret", b"message"));
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Hash256 {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&Hash256::digest(key).0);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest.0);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST FIPS 180-4 test vectors.
    #[test]
    fn nist_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
            (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(Hash256::digest(input).to_hex(), *expected);
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Hash256::digest(data), "split at {split}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let h = Hash256::digest(b"round trip");
        assert_eq!(Hash256::from_hex(&h.to_hex()).unwrap(), h);
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert!(Hash256::from_hex("zz").is_err());
        assert!(Hash256::from_hex(&"g".repeat(64)).is_err());
        assert!(Hash256::from_hex(&"a".repeat(63)).is_err());
    }

    #[test]
    fn leading_zero_bits_counts_correctly() {
        assert_eq!(Hash256::ZERO.leading_zero_bits(), 256);
        let mut one = [0u8; 32];
        one[0] = 0x01;
        assert_eq!(Hash256(one).leading_zero_bits(), 7);
        let mut half = [0u8; 32];
        half[1] = 0x80;
        assert_eq!(Hash256(half).leading_zero_bits(), 8);
    }

    /// RFC 4231 test case 2.
    #[test]
    fn hmac_rfc4231() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }
}

mod codec_impls {
    use super::Hash256;
    use medchain_runtime::codec::{CodecError, Decode, Encode, Reader};

    impl Encode for Hash256 {
        fn encode(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.0);
        }
    }

    impl Decode for Hash256 {
        fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
            Ok(Hash256(<[u8; 32]>::decode(r)?))
        }
    }
}

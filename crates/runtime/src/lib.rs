//! Hermetic runtime substrate for the MedChain workspace.
//!
//! Every other crate in the workspace builds on this one instead of on
//! external registry crates, so the whole workspace compiles offline and
//! every run is bit-for-bit deterministic for a fixed seed:
//!
//! - [`rng`] — seeded xoshiro256** deterministic RNG ([`DetRng`]),
//!   replacing `rand::rngs::StdRng`.
//! - [`codec`] — canonical byte encoding ([`codec::Encode`] /
//!   [`codec::Decode`]) with round-trip laws, replacing derive-only
//!   `serde` on chain, ledger, EMR, and audit types.
//! - [`sync`] — scoped-parallelism helpers over [`std::thread::scope`],
//!   replacing `crossbeam::thread::scope`.
//! - [`check`] — a minimal seeded property-test harness replacing
//!   `proptest` for the workspace's invariant tests.
//! - [`timing`] — an `Instant`-based micro-benchmark harness replacing
//!   `criterion` for the `crates/bench` targets.
//! - [`metrics`] — structured counter/gauge/histogram/event sink behind
//!   the [`MetricsSink`] trait with a lock-cheap [`Registry`] and TSV
//!   exporter, so experiments assert on internals instead of stdout.

#![deny(missing_docs)]

pub mod check;
pub mod codec;
pub mod metrics;
pub mod rng;
pub mod sync;
pub mod timing;

pub use check::{check, CheckConfig, Gen};
pub use codec::{CodecError, Decode, Encode, Reader};
pub use metrics::{Metrics, MetricsSink, Registry};
pub use rng::DetRng;
pub use sync::scoped_map;
pub use timing::{black_box, Bench};

//! Canonical deterministic byte encoding.
//!
//! [`Encode`] / [`Decode`] give every chain-visible type (blocks,
//! transactions, ledger state, audit records, EMR payloads) **one**
//! serialization story: a fixed, platform-independent byte layout the
//! hashing and wire layers can rely on.
//!
//! ## Layout rules
//!
//! - Integers: little-endian, fixed width; `usize` travels as `u64`.
//! - `f64`/`f32`: IEEE-754 bit patterns, little-endian.
//! - `bool`: one byte, strictly `0` or `1`.
//! - `String` / `Vec<T>` / maps: `u32` little-endian length prefix, then
//!   elements in order (map entries in `BTreeMap` key order — canonical).
//! - `Option<T>`: one tag byte (`0` = `None`, `1` = `Some`), then the value.
//! - `[u8; N]`: raw bytes, no prefix.
//! - Structs: fields in declaration order. Enums: one tag byte, then the
//!   variant's fields in order.
//!
//! ## Laws
//!
//! For every `T: Encode + Decode` and value `v`:
//!
//! 1. **Round trip**: `T::decoded(&v.encoded()) == Ok(v)`.
//! 2. **Canonical**: equal values encode to identical bytes (there is no
//!    alternative accepted spelling — decoding is strict and
//!    [`Decode::decoded`] rejects trailing bytes).
//! 3. **Prefix-free per type**: a decoder consumes exactly the bytes its
//!    encoder produced, so concatenated encodings decode unambiguously.
//!
//! Implement the traits for your types with [`impl_codec_struct!`],
//! [`impl_codec_unit_enum!`], or by hand for data-carrying enums.

use std::collections::BTreeMap;
use std::fmt;

/// Why decoding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// An enum tag byte had no matching variant.
    InvalidTag {
        /// The type being decoded.
        ty: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix exceeded the remaining input.
    LengthOverrun {
        /// Declared element count.
        declared: u64,
        /// Remaining input bytes.
        remaining: usize,
    },
    /// A `bool` byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A `String` payload was not valid UTF-8.
    InvalidUtf8,
    /// A numeric value did not fit the target type on this platform.
    IntegerOverflow,
    /// Decoding finished with unconsumed trailing bytes.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "input ended mid-value"),
            CodecError::InvalidTag { ty, tag } => write!(f, "invalid tag {tag} for {ty}"),
            CodecError::LengthOverrun { declared, remaining } => {
                write!(f, "declared length {declared} exceeds remaining {remaining} bytes")
            }
            CodecError::InvalidBool(b) => write!(f, "invalid bool byte {b}"),
            CodecError::InvalidUtf8 => write!(f, "string payload is not UTF-8"),
            CodecError::IntegerOverflow => write!(f, "integer does not fit target type"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A strict cursor over an input buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf` for decoding.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEnd);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consumes one byte.
    pub fn take_byte(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Errors unless the whole input was consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::TrailingBytes(n)),
        }
    }
}

/// Canonical byte encoding.
pub trait Encode {
    /// Appends this value's canonical bytes to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// This value's canonical bytes as a fresh buffer.
    fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Canonical byte decoding (strict inverse of [`Encode`]).
pub trait Decode: Sized {
    /// Decodes one value from the cursor, consuming exactly the bytes
    /// the encoder produced.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Decodes a value that must span the entire input.
    fn decoded(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

macro_rules! int_codec {
    ($($t:ty),* $(,)?) => {$(
        impl Encode for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("exact take")))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        usize::try_from(u64::decode(r)?).map_err(|_| CodecError::IntegerOverflow)
    }
}

impl Encode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Encode for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
}

impl Decode for f32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(f32::from_bits(u32::decode(r)?))
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::InvalidBool(b)),
        }
    }
}

fn encode_len(len: usize, out: &mut Vec<u8>) {
    u32::try_from(len).expect("collection length exceeds u32").encode(out);
}

fn decode_len(r: &mut Reader<'_>) -> Result<usize, CodecError> {
    let declared = u32::decode(r)? as u64;
    // Each element consumes at least one byte for all element types the
    // workspace encodes, so a declared count beyond the remaining input
    // is always corrupt; rejecting it here bounds allocations.
    if declared > r.remaining() as u64 {
        return Err(CodecError::LengthOverrun { declared, remaining: r.remaining() });
    }
    Ok(declared as usize)
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = decode_len(r)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }
}

impl Encode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_slice().encode(out);
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = decode_len(r)?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::InvalidTag { ty: "Option", tag }),
        }
    }
}

impl<T: Encode> Encode for std::collections::BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode + Ord> Decode for std::collections::BTreeSet<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = decode_len(r)?;
        let mut set = std::collections::BTreeSet::new();
        for _ in 0..len {
            set.insert(T::decode(r)?);
        }
        Ok(set)
    }
}

impl<K: Encode, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = decode_len(r)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes = r.take(N)?;
        Ok(bytes.try_into().expect("exact take"))
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
}

/// Implements [`Encode`] + [`Decode`] for a struct with named fields,
/// in the listed (declaration) order.
///
/// ```
/// # use medchain_runtime::impl_codec_struct;
/// # use medchain_runtime::codec::{Encode, Decode};
/// #[derive(Debug, PartialEq)]
/// pub struct Header { pub height: u64, pub tag: String }
/// impl_codec_struct!(Header { height, tag });
/// let h = Header { height: 9, tag: "x".into() };
/// assert_eq!(Header::decoded(&h.encoded()).unwrap(), h);
/// ```
#[macro_export]
macro_rules! impl_codec_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::codec::Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                $( $crate::codec::Encode::encode(&self.$field, out); )+
            }
        }
        impl $crate::codec::Decode for $ty {
            fn decode(
                r: &mut $crate::codec::Reader<'_>,
            ) -> Result<Self, $crate::codec::CodecError> {
                Ok($ty { $( $field: $crate::codec::Decode::decode(r)?, )+ })
            }
        }
    };
}

/// Implements [`Encode`] + [`Decode`] for a fieldless enum as a single
/// tag byte (the listed order fixes the tags: first variant = 0).
#[macro_export]
macro_rules! impl_codec_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::codec::Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                let mut tag: u8 = 0;
                $(
                    if matches!(self, $ty::$variant) {
                        out.push(tag);
                        return;
                    }
                    #[allow(unused_assignments)]
                    { tag += 1; }
                )+
                unreachable!("variant not listed in impl_codec_unit_enum");
            }
        }
        impl $crate::codec::Decode for $ty {
            fn decode(
                r: &mut $crate::codec::Reader<'_>,
            ) -> Result<Self, $crate::codec::CodecError> {
                let got = r.take_byte()?;
                let mut tag: u8 = 0;
                $(
                    if got == tag {
                        return Ok($ty::$variant);
                    }
                    #[allow(unused_assignments)]
                    { tag += 1; }
                )+
                Err($crate::codec::CodecError::InvalidTag {
                    ty: stringify!($ty),
                    tag: got,
                })
            }
        }
    };
}

/// Implements [`Encode`] + [`Decode`] for an enum whose variants carry
/// named fields, tuple fields (give each a binding name), or no fields,
/// with explicit tag bytes.
///
/// ```
/// # use medchain_runtime::impl_codec_enum;
/// # use medchain_runtime::codec::{Encode, Decode};
/// #[derive(Debug, PartialEq)]
/// pub enum Seal {
///     Genesis,
///     Authority { proposer: u64, votes: Vec<u64> },
///     Raw(Vec<u8>),
/// }
/// impl_codec_enum!(Seal {
///     0 => Genesis,
///     1 => Authority { proposer, votes },
///     2 => Raw(bytes),
/// });
/// let s = Seal::Authority { proposer: 4, votes: vec![1, 2] };
/// assert_eq!(Seal::decoded(&s.encoded()).unwrap(), s);
/// ```
#[macro_export]
macro_rules! impl_codec_enum {
    ($ty:ident {
        $($tag:literal => $variant:ident
            $(( $($tfield:ident),* $(,)? ))?
            $({ $($field:ident),* $(,)? })?
        ),+ $(,)?
    }) => {
        impl $crate::codec::Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                match self {
                    $(
                        $ty::$variant $(( $($tfield),* ))? $({ $($field),* })? => {
                            out.push($tag);
                            $( $( $crate::codec::Encode::encode($tfield, out); )* )?
                            $( $( $crate::codec::Encode::encode($field, out); )* )?
                        }
                    )+
                }
            }
        }
        impl $crate::codec::Decode for $ty {
            fn decode(
                r: &mut $crate::codec::Reader<'_>,
            ) -> Result<Self, $crate::codec::CodecError> {
                match r.take_byte()? {
                    $(
                        $tag => Ok($ty::$variant
                            $(( $({
                                let _ = stringify!($tfield);
                                $crate::codec::Decode::decode(r)?
                            }),* ))?
                            $({ $( $field: $crate::codec::Decode::decode(r)?, )* })?
                        ),
                    )+
                    tag => Err($crate::codec::CodecError::InvalidTag {
                        ty: stringify!($ty),
                        tag,
                    }),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        assert_eq!(T::decoded(&v.encoded()).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u64::MAX);
        round_trip(-1i64);
        round_trip(3.25f64);
        round_trip(true);
        round_trip(String::from("héllo"));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Option::<u64>::None);
        round_trip(Some(9u64));
        round_trip([7u8; 32]);
        round_trip(usize::MAX / 2);
        round_trip((4u8, String::from("pair")));
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1u64);
        map.insert("b".to_string(), 2u64);
        round_trip(map);
    }

    #[test]
    fn decoding_is_strict() {
        // Trailing byte rejected.
        let mut bytes = 7u64.encoded();
        bytes.push(0);
        assert_eq!(u64::decoded(&bytes), Err(CodecError::TrailingBytes(1)));
        // Truncation rejected.
        assert_eq!(u64::decoded(&[1, 2, 3]), Err(CodecError::UnexpectedEnd));
        // Bad bool byte rejected.
        assert_eq!(bool::decoded(&[2]), Err(CodecError::InvalidBool(2)));
        // Oversized length prefix rejected without allocation.
        let bytes = u32::MAX.encoded();
        assert!(matches!(
            Vec::<u8>::decoded(&bytes),
            Err(CodecError::LengthOverrun { .. })
        ));
        // Bad UTF-8 rejected.
        let mut bytes = Vec::new();
        encode_len(2, &mut bytes);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(String::decoded(&bytes), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn encoding_is_canonical() {
        // Equal values produce identical bytes (maps iterate in key order).
        let mut a = BTreeMap::new();
        a.insert(2u64, "two".to_string());
        a.insert(1u64, "one".to_string());
        let mut b = BTreeMap::new();
        b.insert(1u64, "one".to_string());
        b.insert(2u64, "two".to_string());
        assert_eq!(a.encoded(), b.encoded());
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        id: u64,
        name: String,
        tags: Vec<u8>,
    }
    impl_codec_struct!(Demo { id, name, tags });

    #[derive(Debug, PartialEq)]
    enum Kind {
        Alpha,
        Beta,
        Gamma,
    }
    impl_codec_unit_enum!(Kind { Alpha, Beta, Gamma });

    #[derive(Debug, PartialEq)]
    enum Payload {
        Empty,
        Move { to: u64, amount: u64 },
        Blob(Vec<u8>, bool),
    }
    impl_codec_enum!(Payload {
        0 => Empty,
        1 => Move { to, amount },
        2 => Blob(data, sealed),
    });

    #[test]
    fn derive_macros_round_trip() {
        round_trip(Demo { id: 7, name: "n".into(), tags: vec![1, 2] });
        round_trip(Kind::Alpha);
        round_trip(Kind::Gamma);
        round_trip(Payload::Empty);
        round_trip(Payload::Move { to: 3, amount: 10 });
        round_trip(Payload::Blob(vec![1, 2, 3], true));
        round_trip(std::collections::BTreeSet::from([3u64, 1, 2]));
        assert!(matches!(
            Kind::decoded(&[9]),
            Err(CodecError::InvalidTag { ty: "Kind", tag: 9 })
        ));
    }

    #[test]
    fn concatenated_values_decode_unambiguously() {
        let mut bytes = Vec::new();
        Demo { id: 1, name: "a".into(), tags: vec![] }.encode(&mut bytes);
        Demo { id: 2, name: "b".into(), tags: vec![9] }.encode(&mut bytes);
        let mut r = Reader::new(&bytes);
        assert_eq!(Demo::decode(&mut r).unwrap().id, 1);
        assert_eq!(Demo::decode(&mut r).unwrap().id, 2);
        r.finish().unwrap();
    }
}

//! Structured metrics and event sink for the whole workspace.
//!
//! The paper's quantitative claims — energy wasted by duplicated
//! computing (§I), scalability of the transformed architecture (§III) —
//! are measured by the experiment harness. Before this module existed the
//! experiments scraped stdout tables; now every layer (consensus engines,
//! mempool, transport, off-chain executor and oracle, federated
//! learning) reports through a [`MetricsSink`], and tests assert on sink
//! values directly.
//!
//! Design points:
//!
//! * **Keys are hierarchical `scope.name` strings** — `consensus.rounds`,
//!   `mempool.evictions`, `transport.bytes` — so a TSV export sorts into
//!   subsystem blocks. The scope is the owning subsystem, the name the
//!   measured quantity.
//! * **The [`Metrics`] handle costs one branch when disabled.** Hot paths
//!   hold a `Metrics` (a cheap `Option<Arc<dyn MetricsSink>>` clone); the
//!   default handle is a no-op, so instrumented code pays a single
//!   `is_some` test per emission unless a sink is installed.
//! * **[`Registry`] is the lock-cheap default sink**: one mutex around a
//!   sorted map, taken only for the duration of a single counter bump.
//!   Experiments create a registry, hand out handles, and read counters
//!   or export TSV at the end.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Upper bound on retained structured events; older events are dropped
/// first and counted in [`Registry::events_dropped`].
pub const MAX_EVENTS: usize = 4096;

/// A sink for counters, gauges, histogram observations, and structured
/// events, keyed by hierarchical `scope.name` strings.
pub trait MetricsSink: Send + Sync {
    /// Adds `delta` to the counter at `key`.
    fn counter(&self, key: &str, delta: u64);
    /// Sets the gauge at `key` to `value`.
    fn gauge(&self, key: &str, value: i64);
    /// Records one observation of `value` in the histogram at `key`.
    fn observe(&self, key: &str, value: f64);
    /// Records a structured event under `scope` with `name` and fields.
    fn event(&self, scope: &str, name: &str, fields: &[(&str, String)]);
}

/// A cheap, cloneable handle to an optional [`MetricsSink`].
///
/// The default handle is disabled (no sink): every emission is a single
/// branch. Subsystems store a `Metrics` and expose `set_metrics`; callers
/// that want numbers install a [`Registry`] handle.
#[derive(Clone, Default)]
pub struct Metrics {
    sink: Option<Arc<dyn MetricsSink>>,
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.sink.is_some() { "Metrics(on)" } else { "Metrics(noop)" })
    }
}

impl Metrics {
    /// The disabled handle: every emission is one branch and no work.
    pub fn noop() -> Metrics {
        Metrics { sink: None }
    }

    /// A handle forwarding to `sink`.
    pub fn new(sink: Arc<dyn MetricsSink>) -> Metrics {
        Metrics { sink: Some(sink) }
    }

    /// Whether a sink is installed.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Adds `delta` to the counter at `key`.
    pub fn counter(&self, key: &str, delta: u64) {
        if let Some(sink) = &self.sink {
            sink.counter(key, delta);
        }
    }

    /// Sets the gauge at `key` to `value`.
    pub fn gauge(&self, key: &str, value: i64) {
        if let Some(sink) = &self.sink {
            sink.gauge(key, value);
        }
    }

    /// Records one histogram observation of `value` at `key`.
    pub fn observe(&self, key: &str, value: f64) {
        if let Some(sink) = &self.sink {
            sink.observe(key, value);
        }
    }

    /// Records a structured event.
    pub fn event(&self, scope: &str, name: &str, fields: &[(&str, String)]) {
        if let Some(sink) = &self.sink {
            sink.event(scope, name, fields);
        }
    }

    /// A handle that prepends `prefix.` to every key (and event scope)
    /// before forwarding to this handle's sink. Instrumented code keeps
    /// emitting its canonical keys (`consensus.rounds`,
    /// `transport.bytes`); the caller decides the namespace — e.g. a
    /// sharded network hands each committee
    /// `metrics.scoped("shard-0")`, so its rounds land under
    /// `shard-0.consensus.rounds`. Scoping a disabled handle stays
    /// disabled (and free); nesting composes: scoping twice prepends
    /// both prefixes.
    pub fn scoped(&self, prefix: &str) -> Metrics {
        match &self.sink {
            None => Metrics::noop(),
            Some(sink) => Metrics::new(Arc::new(PrefixSink {
                prefix: prefix.to_string(),
                inner: Arc::clone(sink),
            })),
        }
    }
}

/// A [`MetricsSink`] adapter that namespaces every key under a prefix.
/// Built by [`Metrics::scoped`].
struct PrefixSink {
    prefix: String,
    inner: Arc<dyn MetricsSink>,
}

impl PrefixSink {
    fn key(&self, key: &str) -> String {
        format!("{}.{key}", self.prefix)
    }
}

impl MetricsSink for PrefixSink {
    fn counter(&self, key: &str, delta: u64) {
        self.inner.counter(&self.key(key), delta);
    }

    fn gauge(&self, key: &str, value: i64) {
        self.inner.gauge(&self.key(key), value);
    }

    fn observe(&self, key: &str, value: f64) {
        self.inner.observe(&self.key(key), value);
    }

    fn event(&self, scope: &str, name: &str, fields: &[(&str, String)]) {
        self.inner.event(&self.key(scope), name, fields);
    }
}

/// Summary of a histogram's observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl HistogramSummary {
    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One recorded structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Owning subsystem (the key scope).
    pub scope: String,
    /// Event name.
    pub name: String,
    /// Ordered `(field, value)` pairs.
    pub fields: Vec<(String, String)>,
}

#[derive(Default)]
struct RegistryState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramSummary>,
    events: Vec<EventRecord>,
    events_dropped: u64,
}

/// The default in-memory sink: counters, gauges, histograms, and a
/// bounded event log behind one short-held mutex. Cloning shares the
/// underlying state, so `registry.clone()` hands the same numbers to
/// another reader.
#[derive(Clone, Default)]
pub struct Registry {
    state: Arc<Mutex<RegistryState>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock().expect("metrics registry poisoned");
        f.debug_struct("Registry")
            .field("counters", &state.counters.len())
            .field("gauges", &state.gauges.len())
            .field("histograms", &state.histograms.len())
            .field("events", &state.events.len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A [`Metrics`] handle that writes into this registry.
    pub fn handle(&self) -> Metrics {
        Metrics::new(Arc::new(self.clone()))
    }

    /// Current value of the counter at `key` (0 if never bumped).
    pub fn counter_value(&self, key: &str) -> u64 {
        let state = self.state.lock().expect("metrics registry poisoned");
        state.counters.get(key).copied().unwrap_or(0)
    }

    /// Current value of the gauge at `key`.
    pub fn gauge_value(&self, key: &str) -> Option<i64> {
        let state = self.state.lock().expect("metrics registry poisoned");
        state.gauges.get(key).copied()
    }

    /// Summary of the histogram at `key`.
    pub fn histogram(&self, key: &str) -> Option<HistogramSummary> {
        let state = self.state.lock().expect("metrics registry poisoned");
        state.histograms.get(key).copied()
    }

    /// All counter keys, sorted.
    pub fn counter_keys(&self) -> Vec<String> {
        let state = self.state.lock().expect("metrics registry poisoned");
        state.counters.keys().cloned().collect()
    }

    /// All gauges as sorted `(key, value)` pairs.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        let state = self.state.lock().expect("metrics registry poisoned");
        state.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Retained structured events, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        let state = self.state.lock().expect("metrics registry poisoned");
        state.events.clone()
    }

    /// Events discarded because the log exceeded [`MAX_EVENTS`].
    pub fn events_dropped(&self) -> u64 {
        let state = self.state.lock().expect("metrics registry poisoned");
        state.events_dropped
    }

    /// Clears every metric and event.
    pub fn reset(&self) {
        let mut state = self.state.lock().expect("metrics registry poisoned");
        *state = RegistryState::default();
    }

    /// Plain-text TSV export, one metric per line, sorted by key:
    ///
    /// ```text
    /// counter<TAB>consensus.rounds<TAB>12
    /// gauge<TAB>transport.queue_cap<TAB>1024
    /// hist<TAB>mempool.batch_size<TAB>count=4<TAB>sum=40<TAB>min=4<TAB>max=16
    /// event<TAB>mempool.evicted<TAB>sender=…<TAB>nonce=3
    /// ```
    pub fn to_tsv(&self) -> String {
        let state = self.state.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (key, value) in &state.counters {
            out.push_str(&format!("counter\t{key}\t{value}\n"));
        }
        for (key, value) in &state.gauges {
            out.push_str(&format!("gauge\t{key}\t{value}\n"));
        }
        for (key, h) in &state.histograms {
            out.push_str(&format!(
                "hist\t{key}\tcount={}\tsum={}\tmin={}\tmax={}\n",
                h.count, h.sum, h.min, h.max
            ));
        }
        for event in &state.events {
            out.push_str(&format!("event\t{}.{}", event.scope, event.name));
            for (field, value) in &event.fields {
                out.push_str(&format!("\t{field}={value}"));
            }
            out.push('\n');
        }
        out
    }
}

impl MetricsSink for Registry {
    fn counter(&self, key: &str, delta: u64) {
        let mut state = self.state.lock().expect("metrics registry poisoned");
        match state.counters.get_mut(key) {
            Some(value) => *value += delta,
            None => {
                state.counters.insert(key.to_string(), delta);
            }
        }
    }

    fn gauge(&self, key: &str, value: i64) {
        let mut state = self.state.lock().expect("metrics registry poisoned");
        match state.gauges.get_mut(key) {
            Some(slot) => *slot = value,
            None => {
                state.gauges.insert(key.to_string(), value);
            }
        }
    }

    fn observe(&self, key: &str, value: f64) {
        let mut state = self.state.lock().expect("metrics registry poisoned");
        match state.histograms.get_mut(key) {
            Some(h) => h.record(value),
            None => {
                state.histograms.insert(
                    key.to_string(),
                    HistogramSummary { count: 1, sum: value, min: value, max: value },
                );
            }
        }
    }

    fn event(&self, scope: &str, name: &str, fields: &[(&str, String)]) {
        let mut state = self.state.lock().expect("metrics registry poisoned");
        if state.events.len() >= MAX_EVENTS {
            state.events.remove(0);
            state.events_dropped += 1;
        }
        state.events.push(EventRecord {
            scope: scope.to_string(),
            name: name.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        });
    }
}

/// Samples every gauge on a [`Registry`] into its own event log at a
/// fixed tick cadence.
///
/// Gauges are last-write-wins: a TSV export at the end of a run shows
/// only the final value, hiding how a queue depth or mempool length
/// evolved. Drive `tick()` from any loop the harness already has (block
/// rounds, experiment iterations); every `every`-th tick appends one
/// `metrics.gauge_snapshot` event carrying the tick number and the
/// current value of each gauge, so the trajectory survives into
/// [`Registry::events`] and the TSV export.
#[derive(Debug)]
pub struct GaugeSnapshotter {
    registry: Registry,
    every: u64,
    ticks: u64,
    taken: u64,
}

impl GaugeSnapshotter {
    /// Snapshots `registry`'s gauges every `every` ticks (`every == 0`
    /// disables sampling).
    pub fn new(registry: Registry, every: u64) -> GaugeSnapshotter {
        GaugeSnapshotter { registry, every, ticks: 0, taken: 0 }
    }

    /// Advances one tick; on every `every`-th tick records a
    /// `metrics.gauge_snapshot` event. Returns `true` when a snapshot
    /// was taken this tick.
    pub fn tick(&mut self) -> bool {
        self.ticks += 1;
        if self.every == 0 || self.ticks % self.every != 0 {
            return false;
        }
        let gauges = self.registry.gauges();
        if gauges.is_empty() {
            return false;
        }
        let mut fields: Vec<(&str, String)> = vec![("tick", self.ticks.to_string())];
        for (key, value) in &gauges {
            fields.push((key.as_str(), value.to_string()));
        }
        self.registry.handle().event("metrics", "gauge_snapshot", &fields);
        self.taken += 1;
        true
    }

    /// Ticks elapsed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Snapshots recorded so far.
    pub fn taken(&self) -> u64 {
        self.taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_disabled_and_free() {
        let m = Metrics::noop();
        assert!(!m.enabled());
        // All emissions are silent no-ops.
        m.counter("a.b", 1);
        m.gauge("a.g", -2);
        m.observe("a.h", 0.5);
        m.event("a", "e", &[("k", "v".to_string())]);
        assert_eq!(Metrics::default().enabled(), false);
    }

    #[test]
    fn registry_counts_gauges_and_histograms() {
        let registry = Registry::new();
        let m = registry.handle();
        assert!(m.enabled());
        m.counter("consensus.rounds", 2);
        m.counter("consensus.rounds", 3);
        m.gauge("transport.queue_cap", 1024);
        m.gauge("transport.queue_cap", 512);
        m.observe("mempool.batch_size", 4.0);
        m.observe("mempool.batch_size", 16.0);
        assert_eq!(registry.counter_value("consensus.rounds"), 5);
        assert_eq!(registry.counter_value("never.bumped"), 0);
        assert_eq!(registry.gauge_value("transport.queue_cap"), Some(512));
        let h = registry.histogram("mempool.batch_size").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 20.0);
        assert_eq!(h.min, 4.0);
        assert_eq!(h.max, 16.0);
        assert_eq!(h.mean(), 10.0);
    }

    #[test]
    fn clones_share_state() {
        let registry = Registry::new();
        let other = registry.clone();
        registry.handle().counter("x.y", 7);
        assert_eq!(other.counter_value("x.y"), 7);
        other.reset();
        assert_eq!(registry.counter_value("x.y"), 0);
    }

    #[test]
    fn events_are_bounded() {
        let registry = Registry::new();
        let m = registry.handle();
        for i in 0..(MAX_EVENTS + 10) {
            m.event("scope", "tick", &[("i", i.to_string())]);
        }
        assert_eq!(registry.events().len(), MAX_EVENTS);
        assert_eq!(registry.events_dropped(), 10);
        // Oldest dropped first: the first retained event is i=10.
        assert_eq!(registry.events()[0].fields[0].1, "10");
    }

    #[test]
    fn tsv_export_is_sorted_and_grep_able() {
        let registry = Registry::new();
        let m = registry.handle();
        m.counter("transport.bytes", 100);
        m.counter("consensus.rounds", 4);
        m.gauge("mempool.len", 3);
        m.observe("oracle.rpc_ms", 1.5);
        m.event("mempool", "evicted", &[("nonce", "3".to_string())]);
        let tsv = registry.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "counter\tconsensus.rounds\t4");
        assert_eq!(lines[1], "counter\ttransport.bytes\t100");
        assert!(lines.contains(&"gauge\tmempool.len\t3"));
        assert!(tsv.contains("hist\toracle.rpc_ms\tcount=1"));
        assert!(tsv.contains("event\tmempool.evicted\tnonce=3"));
    }

    #[test]
    fn gauge_snapshotter_samples_on_cadence() {
        let registry = Registry::new();
        let m = registry.handle();
        let mut snap = GaugeSnapshotter::new(registry.clone(), 3);
        for i in 0..9i64 {
            m.gauge("mempool.len", i);
            m.gauge("transport.inflight", i * 2);
            snap.tick();
        }
        assert_eq!(snap.ticks(), 9);
        assert_eq!(snap.taken(), 3);
        let events: Vec<EventRecord> = registry
            .events()
            .into_iter()
            .filter(|e| e.scope == "metrics" && e.name == "gauge_snapshot")
            .collect();
        assert_eq!(events.len(), 3);
        // Snapshot at tick 6 captured the gauge values set on tick 6
        // (i = 5), not the final ones.
        let at6 = &events[1];
        assert!(at6.fields.contains(&("tick".to_string(), "6".to_string())));
        assert!(at6.fields.contains(&("mempool.len".to_string(), "5".to_string())));
        assert!(at6.fields.contains(&("transport.inflight".to_string(), "10".to_string())));
    }

    #[test]
    fn gauge_snapshotter_skips_when_disabled_or_empty() {
        let registry = Registry::new();
        // No gauges yet: nothing to record even on the cadence tick.
        let mut snap = GaugeSnapshotter::new(registry.clone(), 1);
        assert!(!snap.tick());
        // every == 0 disables sampling entirely.
        registry.handle().gauge("g", 1);
        let mut off = GaugeSnapshotter::new(registry.clone(), 0);
        for _ in 0..5 {
            assert!(!off.tick());
        }
        assert_eq!(registry.events().len(), 0);
    }

    #[test]
    fn scoped_handles_namespace_every_key() {
        let registry = Registry::new();
        let m = registry.handle();
        let shard0 = m.scoped("shard-0");
        let coord = m.scoped("coordinator");
        shard0.counter("consensus.rounds", 3);
        coord.counter("consensus.rounds", 1);
        shard0.gauge("mempool.len", 5);
        shard0.observe("transport.delay_ms", 2.0);
        shard0.event("mempool", "evicted", &[("nonce", "1".to_string())]);
        assert_eq!(registry.counter_value("shard-0.consensus.rounds"), 3);
        assert_eq!(registry.counter_value("coordinator.consensus.rounds"), 1);
        assert_eq!(registry.counter_value("consensus.rounds"), 0);
        assert_eq!(registry.gauge_value("shard-0.mempool.len"), Some(5));
        assert_eq!(registry.histogram("shard-0.transport.delay_ms").unwrap().count, 1);
        assert_eq!(registry.events()[0].scope, "shard-0.mempool");
        // Nesting composes; scoping a noop handle stays disabled.
        m.scoped("a").scoped("b").counter("c", 1);
        assert_eq!(registry.counter_value("a.b.c"), 1);
        assert!(!Metrics::noop().scoped("x").enabled());
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Metrics>();
        assert_send_sync::<Registry>();
        // Counters survive concurrent bumps from scoped threads.
        let registry = Registry::new();
        let m = registry.handle();
        crate::sync::scoped_map(vec![0u32; 8], |_| m.counter("t.c", 1));
        assert_eq!(registry.counter_value("t.c"), 8);
    }
}

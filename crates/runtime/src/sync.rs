//! Scoped parallelism helpers.
//!
//! Thin wrappers over [`std::thread::scope`] (std since Rust 1.63) that
//! express the workspace's one parallel pattern — fan a fixed batch of
//! independent work units out to one OS thread each and collect results
//! in input order — without an external scoped-thread crate.

/// Runs `f` over every item on its own OS thread and returns the
/// results in input order.
///
/// Items may borrow from the caller's stack (the scope outlives the
/// workers), which is exactly what per-site fan-out needs: each worker
/// gets mutable access to its own site state.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
///
/// ```
/// use medchain_runtime::sync::scoped_map;
/// let squares = scoped_map((1u64..=4).collect(), |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn scoped_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> =
            items.into_iter().map(|item| scope.spawn(move || f(item))).collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Runs `f` for each index in `0..count` on its own OS thread and
/// returns the results in index order — the sharded fan-out shape.
pub fn scoped_map_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    scoped_map((0..count).collect(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = scoped_map((0..32u64).collect(), |i| {
            // Stagger finish times so order must come from collection,
            // not completion.
            std::thread::sleep(std::time::Duration::from_micros(32 - i));
            i * 2
        });
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn workers_can_mutate_borrowed_state() {
        let mut slots = vec![0u64; 8];
        let refs: Vec<&mut u64> = slots.iter_mut().collect();
        scoped_map(refs, |slot| *slot = 7);
        assert_eq!(slots, vec![7; 8]);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        scoped_map(vec![1], |_| panic!("worker boom"));
    }

    #[test]
    fn indexed_variant() {
        assert_eq!(scoped_map_indexed(4, |i| i + 1), vec![1, 2, 3, 4]);
    }
}

//! Seeded deterministic random numbers.
//!
//! [`DetRng`] is a xoshiro256** generator seeded through SplitMix64, the
//! standard construction for turning a single `u64` seed into a
//! well-distributed 256-bit state. It exposes exactly the surface the
//! workspace uses: uniform integers over ranges, uniform floats,
//! Bernoulli draws, Fisher–Yates shuffling, sampling without
//! replacement, byte filling (for key material), and Box–Muller
//! gaussians.
//!
//! Two generators built with the same seed produce identical streams on
//! every platform; this is the determinism guarantee the experiment
//! harness (E1–E18) and the property-check harness rely on.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step — used only to expand seeds into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, deterministic xoshiro256** random number generator.
///
/// ```
/// use medchain_runtime::DetRng;
/// let mut a = DetRng::from_seed(42);
/// let mut b = DetRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn from_seed(seed: u64) -> DetRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256** state must not be all-zero; SplitMix64 cannot
        // produce four zero outputs in a row, but keep the guard cheap.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        DetRng { s }
    }

    /// Derives an independent child generator; advances this one.
    ///
    /// Useful for handing deterministic sub-streams to parallel workers
    /// without sharing a generator across threads.
    pub fn split(&mut self) -> DetRng {
        DetRng::from_seed(self.next_u64())
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of [`Self::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes (key material, nonces).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw of a [`Standard`] type (`rng.gen::<f64>()`).
    pub fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// Uniform value in `range` (half-open `a..b` or inclusive `a..=b`),
    /// over any primitive integer or float type.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Unbiased uniform integer in `[0, span)` via Lemire rejection.
    fn bounded_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded_u64(slice.len() as u64) as usize])
        }
    }

    /// Samples `n` distinct elements without replacement (partial
    /// Fisher–Yates over indices); returns fewer if the slice is short.
    /// Order of the sample is random.
    pub fn sample<T: Clone>(&mut self, slice: &[T], n: usize) -> Vec<T> {
        let n = n.min(slice.len());
        let mut indices: Vec<usize> = (0..slice.len()).collect();
        for i in 0..n {
            let j = i + self.bounded_u64((indices.len() - i) as u64) as usize;
            indices.swap(i, j);
        }
        indices[..n].iter().map(|&i| slice[i].clone()).collect()
    }

    /// Gaussian draw via Box–Muller.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        let u1 = loop {
            let u = self.gen_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + sd * z
    }
}

/// Types with a canonical "uniform" distribution for [`DetRng::gen`].
pub trait Standard {
    /// Draws one uniform value.
    fn standard(rng: &mut DetRng) -> Self;
}

impl Standard for f64 {
    fn standard(rng: &mut DetRng) -> f64 {
        rng.gen_f64()
    }
}

impl Standard for f32 {
    fn standard(rng: &mut DetRng) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn standard(rng: &mut DetRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard(rng: &mut DetRng) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard(rng: &mut DetRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`DetRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut DetRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(rng.bounded_u64(span) as $u as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut DetRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = end.wrapping_sub(start) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $u as $t;
                }
                start.wrapping_add(rng.bounded_u64(span + 1) as $u as $t)
            }
        }
    )*};
}

int_sample_range! {
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
}

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(
                    self.start < self.end && self.start.is_finite() && self.end.is_finite(),
                    "gen_range: empty or non-finite float range"
                );
                let v = self.start + (rng.gen_f64() as $t) * (self.end - self.start);
                // Guard the half-open upper bound against rounding.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut DetRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(
                    start <= end && start.is_finite() && end.is_finite(),
                    "gen_range: empty or non-finite float range"
                );
                start + (rng.gen_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = DetRng::from_seed(7);
        let mut b = DetRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::from_seed(1);
        let mut b = DetRng::from_seed(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = DetRng::from_seed(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let x = rng.gen_range(0usize..1);
            assert_eq!(x, 0);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = DetRng::from_seed(11);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut rng = DetRng::from_seed(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        DetRng::from_seed(9).shuffle(&mut a);
        DetRng::from_seed(9).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement() {
        let mut rng = DetRng::from_seed(13);
        let pool: Vec<u32> = (0..100).collect();
        let picked = rng.sample(&pool, 10);
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = DetRng::from_seed(1);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::from_seed(21);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn fill_bytes_deterministic_and_covering() {
        let mut buf1 = [0u8; 37];
        let mut buf2 = [0u8; 37];
        DetRng::from_seed(4).fill_bytes(&mut buf1);
        DetRng::from_seed(4).fill_bytes(&mut buf2);
        assert_eq!(buf1, buf2);
        assert!(buf1.iter().any(|&b| b != 0));
    }
}

//! `Instant`-based micro-benchmark harness.
//!
//! A deliberately small replacement for `criterion` that keeps the
//! `benches/bench_*.rs` targets runnable offline: auto-calibrated
//! iteration counts, median-of-batches timing, optional byte
//! throughput, and one aligned report line per benchmark.
//!
//! Budget per benchmark is tunable with `MEDCHAIN_BENCH_MS` (default
//! 100 ms measure time) so CI smoke runs can set it to 1.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] — keeps benchmark inputs and
/// results opaque to the optimizer.
pub use std::hint::black_box;

/// One benchmark's measured result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id (`suite/name`).
    pub id: String,
    /// Median time per iteration.
    pub per_iter: Duration,
    /// Iterations per measured batch.
    pub iters: u64,
    /// Optional processed-bytes-per-iteration for throughput.
    pub bytes: Option<u64>,
}

impl Measurement {
    /// Throughput in MiB/s, if byte accounting was requested.
    pub fn mib_per_s(&self) -> Option<f64> {
        let bytes = self.bytes? as f64;
        let secs = self.per_iter.as_secs_f64();
        if secs == 0.0 {
            return None;
        }
        Some(bytes / secs / (1024.0 * 1024.0))
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named group of benchmarks that prints one report line each.
///
/// ```no_run
/// use medchain_runtime::timing::{black_box, Bench};
/// let mut b = Bench::new("hashing");
/// let data = vec![0u8; 1024];
/// b.throughput_bytes(1024).bench("sha256/1KiB", || black_box(&data).len());
/// b.finish();
/// ```
pub struct Bench {
    suite: String,
    measure_budget: Duration,
    pending_bytes: Option<u64>,
    results: Vec<Measurement>,
}

impl Bench {
    /// Creates a suite; prints a header line.
    pub fn new(suite: &str) -> Bench {
        let ms = std::env::var("MEDCHAIN_BENCH_MS")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(100)
            .max(1);
        println!("bench suite '{suite}' ({ms} ms/benchmark budget)");
        Bench {
            suite: suite.to_string(),
            measure_budget: Duration::from_millis(ms),
            pending_bytes: None,
            results: Vec::new(),
        }
    }

    /// Declares that the *next* benchmark processes `bytes` per
    /// iteration, enabling a MiB/s column (mirrors criterion's
    /// `Throughput::Bytes`).
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Bench {
        self.pending_bytes = Some(bytes);
        self
    }

    /// Measures closure `f`, printing a `suite/name  time: …` line.
    ///
    /// The closure's return value is black-boxed so computing it cannot
    /// be optimized away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &mut Bench {
        let bytes = self.pending_bytes.take();
        // Warm up and calibrate: grow the batch until it costs ≥ 1/10 of
        // the budget, so short ops get enough iterations to time.
        let calibration_floor = self.measure_budget / 10;
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= calibration_floor || iters >= 1 << 30 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters.saturating_mul(16)
            } else {
                // Aim straight for the floor with 2x headroom.
                let scale = calibration_floor.as_secs_f64() / elapsed.as_secs_f64();
                (iters as f64 * scale.clamp(1.5, 16.0)) as u64 + 1
            };
        }
        // Measure: batches of `iters` until the budget is spent, then
        // take the median batch.
        let mut batches: Vec<Duration> = Vec::new();
        let deadline = Instant::now() + self.measure_budget;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            batches.push(start.elapsed());
            if Instant::now() >= deadline && batches.len() >= 3 {
                break;
            }
            if batches.len() >= 64 {
                break;
            }
        }
        batches.sort_unstable();
        let median = batches[batches.len() / 2];
        let per_iter = median / u32::try_from(iters).unwrap_or(u32::MAX).max(1);
        let m = Measurement {
            id: format!("{}/{}", self.suite, name),
            per_iter,
            iters,
            bytes,
        };
        match m.mib_per_s() {
            Some(mibs) => println!(
                "  {:<44} time: {:>12}/iter   thrpt: {:>10.1} MiB/s",
                m.id,
                fmt_duration(m.per_iter),
                mibs
            ),
            None => println!("  {:<44} time: {:>12}/iter", m.id, fmt_duration(m.per_iter)),
        }
        self.results.push(m);
        self
    }

    /// Finishes the suite, returning all measurements.
    pub fn finish(self) -> Vec<Measurement> {
        println!("bench suite '{}' done: {} benchmarks", self.suite, self.results.len());
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        std::env::set_var("MEDCHAIN_BENCH_MS", "1");
        let mut b = Bench::new("selftest");
        b.bench("noop", || 1u64 + 1);
        b.throughput_bytes(1024).bench("bytes", || [0u8; 64].iter().sum::<u8>());
        let results = b.finish();
        assert_eq!(results.len(), 2);
        assert!(results[0].per_iter <= Duration::from_millis(10));
        assert_eq!(results[1].bytes, Some(1024));
        assert!(results[1].mib_per_s().unwrap() > 0.0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
    }
}

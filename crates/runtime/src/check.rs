//! Minimal seeded property-test harness.
//!
//! [`check`] runs a property closure over many generated cases. Each
//! case draws its inputs from a [`Gen`] seeded deterministically from
//! the base seed and the case index, so a failure report names the one
//! seed that reproduces it:
//!
//! ```text
//! property 'merkle proofs verify' failed on case 17 (case seed 0x3a2f…):
//!   proof for leaf 3 rejected
//! reproduce with: MEDCHAIN_CHECK_SEED=0x3a2f… cargo test <name>
//! ```
//!
//! Set `MEDCHAIN_CHECK_SEED=<hex or decimal>` to re-run only that case,
//! and `MEDCHAIN_CHECK_CASES=<n>` to override the case count globally.

use crate::rng::DetRng;

/// How a [`check`] run generates cases.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Number of generated cases.
    pub cases: u32,
    /// Base seed; case `i` uses a seed derived from `(seed, i)`.
    pub seed: u64,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        // "MEDCHAIN" in ASCII — a fixed, documented base seed.
        CheckConfig { cases: 64, seed: 0x4d45_4443_4841_494e }
    }
}

impl CheckConfig {
    /// Default config with `cases` cases.
    pub fn cases(cases: u32) -> CheckConfig {
        CheckConfig { cases, ..CheckConfig::default() }
    }
}

/// Case-input generator handed to property closures.
///
/// Wraps a [`DetRng`] with convenience draws for the shapes properties
/// need (sized byte blobs, vectors, strings, index picks).
#[derive(Debug)]
pub struct Gen {
    rng: DetRng,
}

impl Gen {
    /// A generator seeded directly (for standalone use).
    pub fn from_seed(seed: u64) -> Gen {
        Gen { rng: DetRng::from_seed(seed) }
    }

    /// Direct access to the underlying RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `i64`.
    pub fn i64(&mut self) -> i64 {
        self.rng.next_u64() as i64
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.gen_f64()
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform byte.
    pub fn byte(&mut self) -> u8 {
        self.rng.gen_range(0u8..=255)
    }

    /// Random byte blob with length in `[min_len, max_len)`.
    pub fn bytes(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        let len = if min_len + 1 >= max_len { min_len } else { self.usize_in(min_len, max_len) };
        let mut buf = vec![0u8; len];
        self.rng.fill_bytes(&mut buf);
        buf
    }

    /// Fixed-size random byte array.
    pub fn byte_array<const N: usize>(&mut self) -> [u8; N] {
        let mut buf = [0u8; N];
        self.rng.fill_bytes(&mut buf);
        buf
    }

    /// Vector with length in `[min_len, max_len)`, elements from `f`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = if min_len + 1 >= max_len { min_len } else { self.usize_in(min_len, max_len) };
        (0..len).map(|_| f(self)).collect()
    }

    /// ASCII string with length in `[0, max_len)` (printable characters).
    pub fn string(&mut self, max_len: usize) -> String {
        let len = if max_len <= 1 { 0 } else { self.usize_in(0, max_len) };
        (0..len).map(|_| self.rng.gen_range(0x20u8..0x7f) as char).collect()
    }
}

/// The result a property closure returns: `Err(message)` fails the case.
pub type PropResult = Result<(), String>;

fn derive_case_seed(base: u64, case: u64) -> u64 {
    // One SplitMix64-style mix of (base, case) — avoids correlated
    // neighbouring case streams.
    let mut z = base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// Runs `property` over `config.cases` generated cases.
///
/// # Panics
///
/// Panics on the first failing case with the property name, case index,
/// failure message, and the exact seed that reproduces it.
pub fn check(name: &str, config: CheckConfig, property: impl Fn(&mut Gen) -> PropResult) {
    if let Some(seed) = std::env::var("MEDCHAIN_CHECK_SEED").ok().and_then(|s| parse_seed(&s)) {
        let mut gen = Gen::from_seed(seed);
        if let Err(msg) = property(&mut gen) {
            panic!("property '{name}' failed with MEDCHAIN_CHECK_SEED={seed:#x}:\n  {msg}");
        }
        return;
    }
    let cases = std::env::var("MEDCHAIN_CHECK_CASES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(config.cases);
    for case in 0..cases as u64 {
        let case_seed = derive_case_seed(config.seed, case);
        let mut gen = Gen::from_seed(case_seed);
        if let Err(msg) = property(&mut gen) {
            panic!(
                "property '{name}' failed on case {case} (case seed {case_seed:#x}):\n  {msg}\n\
                 reproduce with: MEDCHAIN_CHECK_SEED={case_seed:#x}"
            );
        }
    }
}

/// Fails the surrounding property case unless `cond` holds.
#[macro_export]
macro_rules! ensure {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the surrounding property case unless `left == right`.
#[macro_export]
macro_rules! ensure_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left:  {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Fails the surrounding property case unless `left != right`.
#[macro_export]
macro_rules! ensure_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check("counts", CheckConfig::cases(16), |g| {
            counter.set(counter.get() + 1);
            let _ = g.u64();
            Ok(())
        });
        ran += counter.get();
        assert_eq!(ran, 16);
    }

    #[test]
    #[should_panic(expected = "property 'fails' failed on case 0")]
    fn failing_property_reports_case_and_seed() {
        check("fails", CheckConfig::cases(8), |_| Err("boom".into()));
    }

    #[test]
    fn generator_is_deterministic_per_case() {
        let mut first: Vec<u64> = Vec::new();
        let store = std::cell::RefCell::new(Vec::new());
        check("collect", CheckConfig::cases(8), |g| {
            store.borrow_mut().push(g.u64());
            Ok(())
        });
        first.append(&mut store.borrow_mut());
        check("collect again", CheckConfig::cases(8), |g| {
            store.borrow_mut().push(g.u64());
            Ok(())
        });
        assert_eq!(first, *store.borrow());
    }

    #[test]
    fn ensure_macros_produce_messages() {
        fn prop() -> PropResult {
            ensure_eq!(1 + 1, 2);
            ensure_ne!(1, 2);
            ensure!(true, "never");
            Ok(())
        }
        assert_eq!(prop(), Ok(()));
        fn bad() -> PropResult {
            ensure_eq!(1, 2);
            Ok(())
        }
        assert!(bad().unwrap_err().contains("1 == 2"));
    }
}

//! The off-chain task executor — where the real computation happens.
//!
//! The paper's transformation keeps contracts as thin policy gates and
//! moves "the off-chain real arbitrary computation codes" next to the
//! data (§III). [`TaskExecutor`] is one site's compute engine: a registry
//! of analytics *tools* (arbitrary Rust closures keyed by name, with
//! code-integrity hashes matching the on-chain `ToolRegistered` anchors)
//! executed against locally resident data. [`run_parallel`] fans a batch
//! of tasks across OS threads, so wall-clock measurements in the
//! experiments reflect genuine parallel execution.

use medchain_chain::Hash256;
use medchain_contracts::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Failure raised by a tool or oracle backend implementation.
///
/// Tool bodies are arbitrary closures, so the error carries a message
/// rather than a closed set of variants, but it still implements
/// [`std::error::Error`] so callers can box and chain it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolError {
    message: String,
}

impl ToolError {
    /// Creates a tool error from any message.
    pub fn new(message: impl Into<String>) -> ToolError {
        ToolError { message: message.into() }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ToolError {}

impl From<&str> for ToolError {
    fn from(message: &str) -> ToolError {
        ToolError::new(message)
    }
}

impl From<String> for ToolError {
    fn from(message: String) -> ToolError {
        ToolError { message }
    }
}

/// An analytics tool: pure function from parameters to results, in the
/// standard value format.
pub type ToolFn = dyn Fn(&[Value]) -> Result<Vec<Value>, ToolError> + Send + Sync;

/// A registered tool with its integrity hash.
#[derive(Clone)]
pub struct Tool {
    name: String,
    code_hash: Hash256,
    func: Arc<ToolFn>,
}

impl fmt::Debug for Tool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tool")
            .field("name", &self.name)
            .field("code_hash", &self.code_hash)
            .finish()
    }
}

impl Tool {
    /// Creates a tool. The `code_hash` is the anchor registered on-chain
    /// via the analytics contract; `version_tag` feeds the hash so that
    /// re-deployments are distinguishable.
    pub fn new(
        name: &str,
        version_tag: &str,
        func: impl Fn(&[Value]) -> Result<Vec<Value>, ToolError> + Send + Sync + 'static,
    ) -> Tool {
        let mut material = name.as_bytes().to_vec();
        material.extend_from_slice(version_tag.as_bytes());
        Tool { name: name.to_string(), code_hash: Hash256::digest(&material), func: Arc::new(func) }
    }

    /// Tool name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Integrity hash to anchor on-chain.
    pub fn code_hash(&self) -> Hash256 {
        self.code_hash
    }
}

/// Result of one task execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskResult {
    /// Tool that ran.
    pub tool: String,
    /// Returned values.
    pub output: Vec<Value>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

/// Errors from task execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutorError {
    /// Tool not installed at this site.
    UnknownTool(String),
    /// The on-chain anchor does not match the local tool code.
    IntegrityMismatch {
        /// Tool name.
        tool: String,
        /// Hash recorded on-chain.
        expected: Hash256,
        /// Hash of the local implementation.
        actual: Hash256,
    },
    /// The tool itself failed.
    ToolFailed(ToolError),
}

impl fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutorError::UnknownTool(name) => write!(f, "tool {name:?} not installed"),
            ExecutorError::IntegrityMismatch { tool, expected, actual } => write!(
                f,
                "integrity mismatch for {tool:?}: on-chain {expected:?}, local {actual:?}"
            ),
            ExecutorError::ToolFailed(err) => write!(f, "tool failed: {err}"),
        }
    }
}

impl std::error::Error for ExecutorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecutorError::ToolFailed(err) => Some(err),
            _ => None,
        }
    }
}

/// One site's analytics compute engine.
#[derive(Debug, Default, Clone)]
pub struct TaskExecutor {
    tools: HashMap<String, Tool>,
    executed: u64,
    metrics: medchain_runtime::metrics::Metrics,
}

impl TaskExecutor {
    /// Creates an executor with no tools installed.
    pub fn new() -> TaskExecutor {
        TaskExecutor::default()
    }

    /// Installs a metrics handle; `offchain.*` counters (tasks run,
    /// failures, wall-clock task latency) report there.
    pub fn set_metrics(&mut self, metrics: medchain_runtime::metrics::Metrics) {
        self.metrics = metrics;
    }

    /// Installs a tool.
    pub fn install(&mut self, tool: Tool) {
        self.tools.insert(tool.name().to_string(), tool);
    }

    /// Looks up an installed tool.
    pub fn tool(&self, name: &str) -> Option<&Tool> {
        self.tools.get(name)
    }

    /// Number of tasks executed.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Runs `tool` with `params`, optionally verifying the local code
    /// hash against an on-chain `anchor` first (the paper's requirement
    /// that the chain "manage and enforce its integrity of the off-chain
    /// data and code").
    ///
    /// # Errors
    ///
    /// Returns [`ExecutorError`] on unknown tools, integrity mismatches,
    /// or tool failures.
    pub fn run(
        &mut self,
        tool: &str,
        params: &[Value],
        anchor: Option<Hash256>,
    ) -> Result<TaskResult, ExecutorError> {
        let entry = self
            .tools
            .get(tool)
            .ok_or_else(|| ExecutorError::UnknownTool(tool.to_string()))?;
        if let Some(expected) = anchor {
            if expected != entry.code_hash {
                return Err(ExecutorError::IntegrityMismatch {
                    tool: tool.to_string(),
                    expected,
                    actual: entry.code_hash,
                });
            }
        }
        let start = Instant::now();
        let output = match (entry.func)(params) {
            Ok(output) => output,
            Err(err) => {
                self.metrics.counter("offchain.task_failures", 1);
                return Err(ExecutorError::ToolFailed(err));
            }
        };
        self.executed += 1;
        let elapsed = start.elapsed();
        self.metrics.counter("offchain.tasks", 1);
        self.metrics.observe("offchain.task_ms", elapsed.as_secs_f64() * 1e3);
        Ok(TaskResult { tool: tool.to_string(), output, elapsed })
    }
}

/// A task to fan out: `(tool name, parameters)`.
pub type TaskSpec = (String, Vec<Value>);

/// Runs a batch of tasks across OS threads, one thread per task (the
/// per-site fan-out of the transformed architecture). Results come back
/// in task order.
pub fn run_parallel(
    executors: &mut [TaskExecutor],
    tasks: &[TaskSpec],
) -> Vec<Result<TaskResult, ExecutorError>> {
    assert_eq!(
        executors.len(),
        tasks.len(),
        "one executor (site) per task; got {} executors, {} tasks",
        executors.len(),
        tasks.len()
    );
    medchain_runtime::sync::scoped_map(
        executors.iter_mut().zip(tasks).collect(),
        |(executor, task)| executor.run(&task.0, &task.1, None),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_tool() -> Tool {
        Tool::new("sum", "v1", |params| {
            let mut total = 0i64;
            for p in params {
                total += p.as_int().map_err(|e| ToolError::new(e.to_string()))?;
            }
            Ok(vec![Value::Int(total)])
        })
    }

    #[test]
    fn run_installed_tool() {
        let mut executor = TaskExecutor::new();
        executor.install(sum_tool());
        let result = executor
            .run("sum", &[Value::Int(1), Value::Int(2), Value::Int(3)], None)
            .unwrap();
        assert_eq!(result.output, vec![Value::Int(6)]);
        assert_eq!(executor.executed(), 1);
    }

    #[test]
    fn unknown_tool_is_an_error() {
        let mut executor = TaskExecutor::new();
        assert!(matches!(
            executor.run("ghost", &[], None),
            Err(ExecutorError::UnknownTool(_))
        ));
    }

    #[test]
    fn integrity_anchor_is_enforced() {
        let mut executor = TaskExecutor::new();
        let tool = sum_tool();
        let good_anchor = tool.code_hash();
        executor.install(tool);
        assert!(executor.run("sum", &[Value::Int(1)], Some(good_anchor)).is_ok());
        let bad_anchor = Hash256::digest(b"tampered tool");
        assert!(matches!(
            executor.run("sum", &[Value::Int(1)], Some(bad_anchor)),
            Err(ExecutorError::IntegrityMismatch { .. })
        ));
    }

    #[test]
    fn tool_versions_have_distinct_hashes() {
        let v1 = Tool::new("t", "v1", |_| Ok(vec![]));
        let v2 = Tool::new("t", "v2", |_| Ok(vec![]));
        assert_ne!(v1.code_hash(), v2.code_hash());
    }

    #[test]
    fn tool_failure_propagates() {
        let mut executor = TaskExecutor::new();
        executor.install(Tool::new("bad", "v1", |_| Err(ToolError::new("boom"))));
        assert_eq!(
            executor.run("bad", &[], None),
            Err(ExecutorError::ToolFailed(ToolError::new("boom")))
        );
    }

    #[test]
    fn parallel_fan_out_preserves_order() {
        let mut executors: Vec<TaskExecutor> = (0..4)
            .map(|_| {
                let mut e = TaskExecutor::new();
                e.install(sum_tool());
                e
            })
            .collect();
        let tasks: Vec<TaskSpec> = (0..4)
            .map(|i| ("sum".to_string(), vec![Value::Int(i), Value::Int(i)]))
            .collect();
        let results = run_parallel(&mut executors, &tasks);
        for (i, result) in results.iter().enumerate() {
            assert_eq!(result.as_ref().unwrap().output, vec![Value::Int(2 * i as i64)]);
        }
    }

    #[test]
    fn parallel_fan_out_is_actually_concurrent() {
        // Each task sleeps 30 ms; 8 tasks serially would take 240 ms.
        let mut executors: Vec<TaskExecutor> = (0..8)
            .map(|_| {
                let mut e = TaskExecutor::new();
                e.install(Tool::new("sleep", "v1", |_| {
                    std::thread::sleep(Duration::from_millis(30));
                    Ok(vec![Value::Int(1)])
                }));
                e
            })
            .collect();
        let tasks: Vec<TaskSpec> = (0..8).map(|_| ("sleep".to_string(), vec![])).collect();
        let start = Instant::now();
        let results = run_parallel(&mut executors, &tasks);
        let elapsed = start.elapsed();
        assert!(results.iter().all(Result::is_ok));
        assert!(elapsed < Duration::from_millis(200), "not parallel: {elapsed:?}");
    }
}

//! # medchain-offchain — the off-chain control plane
//!
//! Implements the paper's seamless on-chain/off-chain collaboration
//! (Figs. 1, 3, 4): the [`monitor::MonitorNode`] watching contract
//! events, the [`oracle::DataOracle`] RPC bridge with a standard value
//! format, the [`executor::TaskExecutor`] running arbitrary analytics
//! tools next to locally hosted data, the per-site
//! [`control::ControlNode`] that makes identical on-chain contracts
//! behave differently at every site, and hash-anchored integrity
//! ([`registry`]) for off-chain data and code.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod control;
pub mod executor;
pub mod monitor;
pub mod oracle;
pub mod pipeline;
pub mod registry;

pub use control::{ActionIntent, ControlNode, ControlStats};
pub use executor::{run_parallel, ExecutorError, TaskExecutor, TaskResult, Tool, ToolError};
pub use monitor::{CapturedEvent, MonitorNode};
pub use oracle::{DataOracle, OracleBackend, OracleError, OracleRequest};
pub use pipeline::{DynamicPipeline, PipelineCtx, PipelineStep, Route};
pub use registry::{
    anchor_label, verify_against_chain, verify_record, AnchoredArtifact, IntegrityVerdict,
};

//! The data oracle — the RPC bridge between on-chain contracts and the
//! off-chain world (paper Fig. 4).
//!
//! "For security reason, on-chain smart contract is strictly limited or
//! without direct external communication capability with outside world,
//! and so we need to design a special data oracle mechanism by remote
//! procedure call" (§IV). The oracle exposes named services; every
//! request and response uses the VM value codec, so results arrive at
//! contracts in "a standard format" (§III-A).

use crate::executor::ToolError;
use medchain_contracts::value::Value;
use medchain_runtime::metrics::Metrics;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// An RPC request to an off-chain service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleRequest {
    /// Target service (e.g. `"emr-store"`, `"analytics"`).
    pub service: String,
    /// Method on the service.
    pub method: String,
    /// Parameters in the standard value format.
    pub params: Vec<Value>,
}

impl OracleRequest {
    /// Builds a request.
    pub fn new(service: &str, method: &str, params: Vec<Value>) -> OracleRequest {
        OracleRequest { service: service.to_string(), method: method.to_string(), params }
    }
}

/// Errors an oracle call can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// No backend registered for the service.
    UnknownService(String),
    /// The backend rejected the call.
    Backend(ToolError),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::UnknownService(s) => write!(f, "unknown oracle service {s:?}"),
            OracleError::Backend(err) => write!(f, "oracle backend error: {err}"),
        }
    }
}

impl std::error::Error for OracleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OracleError::Backend(err) => Some(err),
            OracleError::UnknownService(_) => None,
        }
    }
}

/// An off-chain service reachable through the oracle.
pub trait OracleBackend: Send + Sync {
    /// Handles one request.
    ///
    /// # Errors
    ///
    /// Returns a backend-defined [`ToolError`] on failure.
    fn handle(&self, method: &str, params: &[Value]) -> Result<Vec<Value>, ToolError>;
}

impl<F> OracleBackend for F
where
    F: Fn(&str, &[Value]) -> Result<Vec<Value>, ToolError> + Send + Sync,
{
    fn handle(&self, method: &str, params: &[Value]) -> Result<Vec<Value>, ToolError> {
        self(method, params)
    }
}

/// Call statistics for the bridge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Successful calls.
    pub ok: u64,
    /// Failed calls.
    pub failed: u64,
    /// Total parameter bytes moved into backends.
    pub bytes_in: u64,
    /// Total result bytes returned.
    pub bytes_out: u64,
}

/// The oracle bridge: a registry of named backends plus call metering.
#[derive(Clone, Default)]
pub struct DataOracle {
    backends: HashMap<String, Arc<dyn OracleBackend>>,
    stats: OracleStats,
    metrics: Metrics,
}

impl fmt::Debug for DataOracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut services: Vec<&str> = self.backends.keys().map(String::as_str).collect();
        services.sort_unstable();
        f.debug_struct("DataOracle")
            .field("services", &services)
            .field("stats", &self.stats)
            .finish()
    }
}

impl DataOracle {
    /// Creates an empty oracle.
    pub fn new() -> DataOracle {
        DataOracle::default()
    }

    /// Registers a backend under `service`.
    pub fn register(&mut self, service: &str, backend: Arc<dyn OracleBackend>) {
        self.backends.insert(service.to_string(), backend);
    }

    /// Registered service names, sorted.
    pub fn services(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.backends.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Call statistics.
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// Installs a metrics handle; `oracle.*` counters (calls, failures,
    /// RPC latency, bytes moved) report there alongside [`OracleStats`].
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Performs an RPC.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError`] on unknown services or backend failures.
    pub fn call(&mut self, request: &OracleRequest) -> Result<Vec<Value>, OracleError> {
        let backend = self
            .backends
            .get(&request.service)
            .ok_or_else(|| OracleError::UnknownService(request.service.clone()))?
            .clone();
        let bytes_in = request.params.iter().map(Value::encoded_len).sum::<usize>() as u64;
        self.stats.bytes_in += bytes_in;
        self.metrics.counter("oracle.calls", 1);
        self.metrics.counter("oracle.bytes_in", bytes_in);
        let start = Instant::now();
        let outcome = backend.handle(&request.method, &request.params);
        self.metrics.observe("oracle.rpc_ms", start.elapsed().as_secs_f64() * 1e3);
        match outcome {
            Ok(result) => {
                self.stats.ok += 1;
                let bytes_out = result.iter().map(Value::encoded_len).sum::<usize>() as u64;
                self.stats.bytes_out += bytes_out;
                self.metrics.counter("oracle.bytes_out", bytes_out);
                Ok(result)
            }
            Err(err) => {
                self.stats.failed += 1;
                self.metrics.counter("oracle.failures", 1);
                Err(OracleError::Backend(err))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_backend() -> Arc<dyn OracleBackend> {
        Arc::new(|method: &str, params: &[Value]| -> Result<Vec<Value>, ToolError> {
            match method {
                "echo" => Ok(params.to_vec()),
                "fail" => Err(ToolError::new("deliberate")),
                other => Err(ToolError::new(format!("no method {other}"))),
            }
        })
    }

    #[test]
    fn call_round_trip() {
        let mut oracle = DataOracle::new();
        oracle.register("echo-svc", echo_backend());
        let result = oracle
            .call(&OracleRequest::new("echo-svc", "echo", vec![Value::Int(5), Value::str("x")]))
            .unwrap();
        assert_eq!(result, vec![Value::Int(5), Value::str("x")]);
        assert_eq!(oracle.stats().ok, 1);
        assert!(oracle.stats().bytes_in > 0);
        assert!(oracle.stats().bytes_out > 0);
    }

    #[test]
    fn unknown_service_is_an_error() {
        let mut oracle = DataOracle::new();
        let err = oracle.call(&OracleRequest::new("ghost", "m", vec![])).unwrap_err();
        assert_eq!(err, OracleError::UnknownService("ghost".into()));
    }

    #[test]
    fn backend_failures_are_counted() {
        let mut oracle = DataOracle::new();
        oracle.register("svc", echo_backend());
        let err = oracle.call(&OracleRequest::new("svc", "fail", vec![])).unwrap_err();
        assert!(matches!(err, OracleError::Backend(_)));
        assert_eq!(oracle.stats().failed, 1);
        assert_eq!(oracle.stats().ok, 0);
    }

    #[test]
    fn calls_feed_metrics_counters() {
        let registry = medchain_runtime::metrics::Registry::default();
        let mut oracle = DataOracle::new();
        oracle.set_metrics(registry.handle());
        oracle.register("svc", echo_backend());
        oracle.call(&OracleRequest::new("svc", "echo", vec![Value::Int(9)])).unwrap();
        let _ = oracle.call(&OracleRequest::new("svc", "fail", vec![]));
        assert_eq!(registry.counter_value("oracle.calls"), 2);
        assert_eq!(registry.counter_value("oracle.failures"), 1);
        assert_eq!(registry.counter_value("oracle.bytes_in"), oracle.stats().bytes_in);
        assert_eq!(registry.counter_value("oracle.bytes_out"), oracle.stats().bytes_out);
        assert_eq!(registry.histogram("oracle.rpc_ms").map(|h| h.count), Some(2));
    }

    #[test]
    fn services_are_listed_sorted() {
        let mut oracle = DataOracle::new();
        oracle.register("zeta", echo_backend());
        oracle.register("alpha", echo_backend());
        assert_eq!(oracle.services(), vec!["alpha", "zeta"]);
    }
}

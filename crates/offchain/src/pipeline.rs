//! Dynamic analytics pipelines (paper §IV, Analytics Services):
//! "Blockchain smart contract will manage the right computing tool to
//! right data set at the right time. The analytics decision tree is
//! based on the resulting data and condition of the results of previous
//! computing step. The pipeline of these tools need dynamically
//! established."
//!
//! A [`DynamicPipeline`] is a named graph of steps; each step runs a
//! tool from the site's [`TaskExecutor`] and a routing function inspects
//! the output to pick the next step — a decision tree over live results
//! rather than a static DAG.

use crate::executor::{ExecutorError, TaskExecutor};
use medchain_contracts::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Where to go after a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// Continue with the named step.
    Next(String),
    /// Pipeline complete.
    Done,
}

/// Accumulated context visible to parameter builders: outputs of every
/// completed step, by step name.
#[derive(Debug, Default, Clone)]
pub struct PipelineCtx {
    outputs: HashMap<String, Vec<Value>>,
}

impl PipelineCtx {
    /// Output of a completed step.
    pub fn output(&self, step: &str) -> Option<&[Value]> {
        self.outputs.get(step).map(Vec::as_slice)
    }

    /// First integer of a completed step's output, if any.
    pub fn int_of(&self, step: &str) -> Option<i64> {
        self.output(step)?.first()?.as_int().ok()
    }
}

type ParamsFn = Box<dyn Fn(&PipelineCtx) -> Vec<Value> + Send + Sync>;
type RouteFn = Box<dyn Fn(&[Value]) -> Route + Send + Sync>;

/// One pipeline step: a tool, its parameter builder, and its router.
pub struct PipelineStep {
    tool: String,
    params: ParamsFn,
    route: RouteFn,
}

impl fmt::Debug for PipelineStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelineStep").field("tool", &self.tool).finish()
    }
}

impl PipelineStep {
    /// Creates a step running `tool`.
    pub fn new(
        tool: &str,
        params: impl Fn(&PipelineCtx) -> Vec<Value> + Send + Sync + 'static,
        route: impl Fn(&[Value]) -> Route + Send + Sync + 'static,
    ) -> PipelineStep {
        PipelineStep { tool: tool.to_string(), params: Box::new(params), route: Box::new(route) }
    }

    /// A terminal step (always routes to [`Route::Done`]).
    pub fn terminal(
        tool: &str,
        params: impl Fn(&PipelineCtx) -> Vec<Value> + Send + Sync + 'static,
    ) -> PipelineStep {
        PipelineStep::new(tool, params, |_| Route::Done)
    }
}

/// Errors from pipeline execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineRunError {
    /// A routed-to step name does not exist.
    UnknownStep(String),
    /// A tool failed.
    Tool(ExecutorError),
    /// The step budget was exhausted (cycle guard).
    StepBudgetExhausted(usize),
}

impl fmt::Display for PipelineRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineRunError::UnknownStep(name) => write!(f, "unknown pipeline step {name:?}"),
            PipelineRunError::Tool(e) => write!(f, "pipeline tool failed: {e}"),
            PipelineRunError::StepBudgetExhausted(budget) => {
                write!(f, "pipeline exceeded its budget of {budget} steps")
            }
        }
    }
}

impl std::error::Error for PipelineRunError {}

/// Trace of one executed step.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutedStep {
    /// Step name.
    pub step: String,
    /// Tool that ran.
    pub tool: String,
    /// Tool output.
    pub output: Vec<Value>,
}

/// A dynamically routed analytics pipeline.
#[derive(Debug, Default)]
pub struct DynamicPipeline {
    steps: HashMap<String, PipelineStep>,
    start: Option<String>,
    max_steps: usize,
}

impl DynamicPipeline {
    /// Creates an empty pipeline with a 64-step budget.
    pub fn new() -> DynamicPipeline {
        DynamicPipeline { steps: HashMap::new(), start: None, max_steps: 64 }
    }

    /// Sets the step budget (cycle guard).
    pub fn with_max_steps(mut self, max_steps: usize) -> DynamicPipeline {
        self.max_steps = max_steps;
        self
    }

    /// Adds a named step; the first added step is the start.
    pub fn step(mut self, name: &str, step: PipelineStep) -> DynamicPipeline {
        if self.start.is_none() {
            self.start = Some(name.to_string());
        }
        self.steps.insert(name.to_string(), step);
        self
    }

    /// Runs the pipeline against a site executor.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineRunError`] on unknown steps, tool failures, or
    /// budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline has no steps.
    pub fn run(&self, executor: &mut TaskExecutor) -> Result<Vec<ExecutedStep>, PipelineRunError> {
        let mut current = self.start.clone().expect("pipeline has at least one step");
        let mut ctx = PipelineCtx::default();
        let mut trace = Vec::new();
        for _ in 0..self.max_steps {
            let step = self
                .steps
                .get(&current)
                .ok_or_else(|| PipelineRunError::UnknownStep(current.clone()))?;
            let params = (step.params)(&ctx);
            let result =
                executor.run(&step.tool, &params, None).map_err(PipelineRunError::Tool)?;
            ctx.outputs.insert(current.clone(), result.output.clone());
            trace.push(ExecutedStep {
                step: current.clone(),
                tool: step.tool.clone(),
                output: result.output.clone(),
            });
            match (step.route)(&result.output) {
                Route::Done => return Ok(trace),
                Route::Next(next) => current = next,
            }
        }
        Err(PipelineRunError::StepBudgetExhausted(self.max_steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Tool;

    /// Build an executor with a triage toolset: `screen` returns a risk
    /// score from its input, `deep` and `summary` tag their input.
    fn triage_executor() -> TaskExecutor {
        let mut executor = TaskExecutor::new();
        executor.install(Tool::new("screen", "v1", |params| {
            let x = params.first().and_then(|v| v.as_int().ok()).unwrap_or(0);
            Ok(vec![Value::Int(x * 2)]) // "risk score"
        }));
        executor.install(Tool::new("deep", "v1", |params| {
            let score = params.first().and_then(|v| v.as_int().ok()).unwrap_or(0);
            Ok(vec![Value::str("deep-analysis"), Value::Int(score)])
        }));
        executor.install(Tool::new("summary", "v1", |_params| {
            Ok(vec![Value::str("routine-summary")])
        }));
        executor
    }

    fn triage_pipeline(input: i64) -> DynamicPipeline {
        DynamicPipeline::new()
            .step(
                "screen",
                PipelineStep::new(
                    "screen",
                    move |_ctx| vec![Value::Int(input)],
                    |output| {
                        let score = output.first().and_then(|v| v.as_int().ok()).unwrap_or(0);
                        if score >= 100 {
                            Route::Next("deep".into())
                        } else {
                            Route::Next("summary".into())
                        }
                    },
                ),
            )
            .step(
                "deep",
                PipelineStep::terminal("deep", |ctx| {
                    vec![Value::Int(ctx.int_of("screen").unwrap_or(0))]
                }),
            )
            .step("summary", PipelineStep::terminal("summary", |_ctx| vec![]))
    }

    #[test]
    fn high_risk_routes_to_deep_analysis() {
        let mut executor = triage_executor();
        let trace = triage_pipeline(80).run(&mut executor).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].tool, "deep");
        // The deep step received the screen score via the context.
        assert_eq!(trace[1].output[1], Value::Int(160));
    }

    #[test]
    fn low_risk_routes_to_summary() {
        let mut executor = triage_executor();
        let trace = triage_pipeline(10).run(&mut executor).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].tool, "summary");
        assert_eq!(trace[1].output[0], Value::str("routine-summary"));
    }

    #[test]
    fn unknown_route_is_an_error() {
        let pipeline = DynamicPipeline::new().step(
            "start",
            PipelineStep::new("screen", |_| vec![Value::Int(1)], |_| {
                Route::Next("ghost".into())
            }),
        );
        let mut executor = triage_executor();
        assert!(matches!(
            pipeline.run(&mut executor),
            Err(PipelineRunError::UnknownStep(name)) if name == "ghost"
        ));
    }

    #[test]
    fn cycles_hit_the_step_budget() {
        let pipeline = DynamicPipeline::new()
            .with_max_steps(10)
            .step(
                "loop",
                PipelineStep::new("screen", |_| vec![Value::Int(1)], |_| {
                    Route::Next("loop".into())
                }),
            );
        let mut executor = triage_executor();
        assert_eq!(
            pipeline.run(&mut executor),
            Err(PipelineRunError::StepBudgetExhausted(10))
        );
    }

    #[test]
    fn tool_failure_propagates() {
        let mut executor = TaskExecutor::new();
        executor.install(Tool::new("broken", "v1", |_| Err("nope".into())));
        let pipeline = DynamicPipeline::new()
            .step("only", PipelineStep::terminal("broken", |_| vec![]));
        assert!(matches!(
            pipeline.run(&mut executor),
            Err(PipelineRunError::Tool(ExecutorError::ToolFailed(_)))
        ));
    }
}

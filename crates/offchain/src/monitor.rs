//! The monitor node (paper Fig. 3).
//!
//! "A monitor node is used to monitor all the related smart contract
//! events which would like to access the managed heterogeneous data
//! sets. The monitor node is a mechanism for our system to securely
//! bridge the smart contract and the external world" (§III-A).
//!
//! [`MonitorNode`] scans committed blocks for contract events, keeps a
//! height cursor so every event is observed exactly once, and dispatches
//! to topic-filtered subscribers.

use medchain_chain::{Event, Hash256, Ledger};
use std::fmt;

/// An event captured from a committed block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedEvent {
    /// Height of the block that carried the event.
    pub block_height: u64,
    /// Transaction that emitted it.
    pub tx_id: Hash256,
    /// The event itself.
    pub event: Event,
}

/// A topic subscription.
type Handler = Box<dyn FnMut(&CapturedEvent) + Send>;

/// Scans the chain for contract events and dispatches them off-chain.
pub struct MonitorNode {
    cursor: u64,
    subscriptions: Vec<(Option<String>, Handler)>,
    observed: u64,
}

impl fmt::Debug for MonitorNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorNode")
            .field("cursor", &self.cursor)
            .field("subscriptions", &self.subscriptions.len())
            .field("observed", &self.observed)
            .finish()
    }
}

impl Default for MonitorNode {
    fn default() -> Self {
        Self::new()
    }
}

impl MonitorNode {
    /// Creates a monitor starting at genesis.
    pub fn new() -> MonitorNode {
        MonitorNode { cursor: 0, subscriptions: Vec::new(), observed: 0 }
    }

    /// Subscribes `handler` to events with `topic` (`None` = all topics).
    pub fn subscribe(
        &mut self,
        topic: Option<&str>,
        handler: impl FnMut(&CapturedEvent) + Send + 'static,
    ) {
        self.subscriptions.push((topic.map(str::to_string), Box::new(handler)));
    }

    /// Height up to which events have been observed.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Total events observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Scans blocks `(cursor, tip]`, invoking subscribers and returning
    /// all captured events in commit order.
    pub fn poll(&mut self, ledger: &Ledger) -> Vec<CapturedEvent> {
        let mut captured = Vec::new();
        let tip = ledger.height();
        while self.cursor < tip {
            let height = self.cursor + 1;
            let block = ledger.block(height).expect("height below tip");
            for tx in &block.transactions {
                let Some(receipt) = ledger.receipt(&tx.id()) else { continue };
                for event in &receipt.events {
                    let item = CapturedEvent {
                        block_height: height,
                        tx_id: receipt.tx_id,
                        event: event.clone(),
                    };
                    self.observed += 1;
                    for (topic, handler) in &mut self.subscriptions {
                        if topic.as_deref().is_none_or(|t| t == item.event.topic) {
                            handler(&item);
                        }
                    }
                    captured.push(item);
                }
            }
            self.cursor = height;
        }
        captured
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medchain_chain::consensus::Application;
    use medchain_chain::node::ChainApp;
    use medchain_chain::sig::AuthorityKey;
    use medchain_chain::tx::TxPayload;
    use medchain_chain::{KeyRegistry, Transaction};
    use medchain_contracts::native::native_manifest;
    use medchain_contracts::runtime::{call_data, Runtime};
    use medchain_contracts::value::Value;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn app_with_data_contract() -> (ChainApp, AuthorityKey, medchain_chain::Address) {
        let key = AuthorityKey::from_seed(1);
        let mut registry = KeyRegistry::new();
        registry.enroll(&key);
        let mut app =
            ChainApp::with_runtime("monitor-test", registry, Box::new(Runtime::standard()));
        let deploy = Transaction::new(
            key.address(),
            0,
            TxPayload::Deploy { code: native_manifest("data_contract"), init: Vec::new() },
            10_000,
        )
        .signed(&key);
        app.submit(deploy);
        let block = app.make_block(key.address(), 1);
        assert!(app.commit_block(&block));
        let contract = medchain_chain::ledger::contract_address(&key.address(), 0);
        (app, key, contract)
    }

    fn register_dataset(app: &mut ChainApp, key: &AuthorityKey, nonce: u64, label: &str) {
        let tx = Transaction::new(
            key.address(),
            nonce,
            TxPayload::Invoke {
                contract: medchain_chain::ledger::contract_address(&key.address(), 0),
                input: call_data(
                    "register",
                    &[
                        Value::str(label),
                        Value::Bytes(Hash256::digest(label.as_bytes()).0.to_vec()),
                        Value::str("csv"),
                    ],
                ),
            },
            10_000,
        )
        .signed(key);
        assert!(app.submit(tx));
        let block = app.make_block(key.address(), 10);
        assert!(app.commit_block(&block));
    }

    #[test]
    fn poll_captures_events_once() {
        let (mut app, key, _) = app_with_data_contract();
        register_dataset(&mut app, &key, 1, "emr-a");
        let mut monitor = MonitorNode::new();
        let events = monitor.poll(app.ledger());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event.topic, "DatasetRegistered");
        // No double delivery.
        assert!(monitor.poll(app.ledger()).is_empty());
        // New block, new events.
        register_dataset(&mut app, &key, 2, "emr-b");
        assert_eq!(monitor.poll(app.ledger()).len(), 1);
        assert_eq!(monitor.observed(), 2);
    }

    #[test]
    fn topic_filters_select_subscribers() {
        let (mut app, key, _) = app_with_data_contract();
        register_dataset(&mut app, &key, 1, "emr-a");
        let matched = Arc::new(AtomicUsize::new(0));
        let unmatched = Arc::new(AtomicUsize::new(0));
        let all = Arc::new(AtomicUsize::new(0));
        let mut monitor = MonitorNode::new();
        let m = matched.clone();
        monitor.subscribe(Some("DatasetRegistered"), move |_| {
            m.fetch_add(1, Ordering::SeqCst);
        });
        let u = unmatched.clone();
        monitor.subscribe(Some("AnalyticsRequested"), move |_| {
            u.fetch_add(1, Ordering::SeqCst);
        });
        let a = all.clone();
        monitor.subscribe(None, move |_| {
            a.fetch_add(1, Ordering::SeqCst);
        });
        monitor.poll(app.ledger());
        assert_eq!(matched.load(Ordering::SeqCst), 1);
        assert_eq!(unmatched.load(Ordering::SeqCst), 0);
        assert_eq!(all.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cursor_tracks_tip() {
        let (mut app, key, _) = app_with_data_contract();
        let mut monitor = MonitorNode::new();
        monitor.poll(app.ledger());
        assert_eq!(monitor.cursor(), app.height());
        register_dataset(&mut app, &key, 1, "emr-a");
        monitor.poll(app.ledger());
        assert_eq!(monitor.cursor(), app.height());
    }
}

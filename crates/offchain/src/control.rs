//! The per-node off-chain control code (paper Fig. 1).
//!
//! "The off-chain control code which communicate with on-chain smart
//! contract of each node is different. Each individual control code will
//! feed different data to the smart contract. As a result, each smart
//! contract on each node will effectively behave differently" (§III).
//!
//! [`ControlNode`] is that per-site brain: it watches contract events via
//! its [`MonitorNode`], decides which requests concern data hosted at
//! *this* site, runs the requested analytics locally through its
//! [`TaskExecutor`], and emits [`ActionIntent`]s — follow-up on-chain
//! transactions for the surrounding node to sign and submit. The same
//! on-chain contract code thus drives *different* computation at every
//! site, which is exactly the transformation the paper proposes.

use crate::executor::{TaskExecutor, Tool};
use crate::monitor::{CapturedEvent, MonitorNode};
use crate::oracle::DataOracle;
use medchain_chain::{Hash256, Ledger};
use medchain_contracts::events;
use medchain_contracts::value::{decode_args, Value};
use std::collections::HashSet;
use std::fmt;

/// A follow-up action the control code wants performed on-chain.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionIntent {
    /// Post an analytics result hash for a completed task.
    PostResult {
        /// Task id assigned by the analytics contract.
        task_id: i64,
        /// Hash of the locally computed result.
        result_hash: Hash256,
        /// The raw result values (kept off-chain; only the hash goes on).
        result: Vec<Value>,
    },
    /// A permitted data request was served off-chain to the requester.
    DataServed {
        /// Dataset label.
        label: String,
        /// Access token from the data contract.
        token: Vec<u8>,
        /// Number of records delivered.
        records: usize,
    },
}

/// Work statistics for one control node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Analytics tasks executed locally.
    pub tasks_run: u64,
    /// Analytics tasks skipped (data not hosted here).
    pub tasks_skipped: u64,
    /// Data requests served.
    pub data_served: u64,
    /// Task failures.
    pub failures: u64,
}

/// One site's off-chain control code.
pub struct ControlNode {
    site: String,
    monitor: MonitorNode,
    executor: TaskExecutor,
    oracle: DataOracle,
    hosted_datasets: HashSet<String>,
    stats: ControlStats,
}

impl fmt::Debug for ControlNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ControlNode")
            .field("site", &self.site)
            .field("hosted_datasets", &self.hosted_datasets.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl ControlNode {
    /// Creates the control code for `site`.
    pub fn new(site: &str) -> ControlNode {
        ControlNode {
            site: site.to_string(),
            monitor: MonitorNode::new(),
            executor: TaskExecutor::new(),
            oracle: DataOracle::new(),
            hosted_datasets: HashSet::new(),
            stats: ControlStats::default(),
        }
    }

    /// The site name.
    pub fn site(&self) -> &str {
        &self.site
    }

    /// Installs an analytics tool at this site.
    pub fn install_tool(&mut self, tool: Tool) {
        self.executor.install(tool);
    }

    /// Declares that `label` is hosted (physically resident) here.
    pub fn host_dataset(&mut self, label: &str) {
        self.hosted_datasets.insert(label.to_string());
    }

    /// Whether `label` is hosted here.
    pub fn hosts(&self, label: &str) -> bool {
        self.hosted_datasets.contains(label)
    }

    /// The site's oracle bridge (register data backends here).
    pub fn oracle_mut(&mut self) -> &mut DataOracle {
        &mut self.oracle
    }

    /// The site's executor.
    pub fn executor_mut(&mut self) -> &mut TaskExecutor {
        &mut self.executor
    }

    /// Work statistics.
    pub fn stats(&self) -> ControlStats {
        self.stats
    }

    /// One control cycle: observe new contract events, run any analytics
    /// addressed to data hosted at this site, serve permitted data
    /// requests, and return the on-chain follow-ups.
    pub fn step(&mut self, ledger: &Ledger) -> Vec<ActionIntent> {
        let mut intents = Vec::new();
        for captured in self.monitor.poll(ledger) {
            match captured.event.topic.as_str() {
                events::ANALYTICS_REQUESTED => {
                    if let Some(intent) = self.handle_analytics_request(&captured) {
                        intents.push(intent);
                    }
                }
                events::DATA_REQUESTED => {
                    if let Some(intent) = self.handle_data_request(&captured) {
                        intents.push(intent);
                    }
                }
                _ => {}
            }
        }
        intents
    }

    /// Payload: `[task_id, tool, dataset, params, requester]`.
    fn handle_analytics_request(&mut self, captured: &CapturedEvent) -> Option<ActionIntent> {
        let values = decode_args(&captured.event.data).ok()?;
        let task_id = values.first()?.as_int().ok()?;
        let tool = values.get(1)?.as_str().ok()?.to_string();
        let dataset = values.get(2)?.as_str().ok()?.to_string();
        let params_blob = values.get(3)?.as_bytes().ok()?.to_vec();
        if !self.hosts(&dataset) {
            self.stats.tasks_skipped += 1;
            return None;
        }
        // Move compute to data: fetch the locally resident dataset through
        // the site oracle, then run the tool against it.
        let mut params = vec![Value::str(&dataset), Value::Bytes(params_blob)];
        if let Ok(local) = self.oracle.call(&crate::oracle::OracleRequest::new(
            "local-data",
            "fetch",
            vec![Value::str(&dataset)],
        )) {
            params.extend(local);
        }
        match self.executor.run(&tool, &params, None) {
            Ok(result) => {
                self.stats.tasks_run += 1;
                let encoded = medchain_contracts::value::encode_args(&result.output);
                Some(ActionIntent::PostResult {
                    task_id,
                    result_hash: Hash256::digest(&encoded),
                    result: result.output,
                })
            }
            Err(_) => {
                self.stats.failures += 1;
                None
            }
        }
    }

    /// Payload: `[label, requester, purpose, token]`.
    fn handle_data_request(&mut self, captured: &CapturedEvent) -> Option<ActionIntent> {
        let values = decode_args(&captured.event.data).ok()?;
        let label = values.first()?.as_str().ok()?.to_string();
        let token = values.get(3)?.as_bytes().ok()?.to_vec();
        if !self.hosts(&label) {
            return None;
        }
        let records = self
            .oracle
            .call(&crate::oracle::OracleRequest::new(
                "local-data",
                "fetch",
                vec![Value::str(&label)],
            ))
            .map(|v| v.len())
            .unwrap_or(0);
        self.stats.data_served += 1;
        Some(ActionIntent::DataServed { label, token, records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ToolError;
    use medchain_chain::consensus::Application;
    use medchain_chain::ledger::contract_address;
    use medchain_chain::node::ChainApp;
    use medchain_chain::sig::AuthorityKey;
    use medchain_chain::tx::TxPayload;
    use medchain_chain::{KeyRegistry, Transaction};
    use medchain_contracts::native::native_manifest;
    use medchain_contracts::runtime::{call_data, Runtime};
    use std::sync::Arc;

    struct Setup {
        app: ChainApp,
        key: AuthorityKey,
        analytics: medchain_chain::Address,
        nonce: u64,
    }

    impl Setup {
        fn new() -> Setup {
            let key = AuthorityKey::from_seed(1);
            let mut registry = KeyRegistry::new();
            registry.enroll(&key);
            let mut app =
                ChainApp::with_runtime("control-test", registry, Box::new(Runtime::standard()));
            let deploy = Transaction::new(
                key.address(),
                0,
                TxPayload::Deploy {
                    code: native_manifest("analytics_contract"),
                    init: Vec::new(),
                },
                10_000,
            )
            .signed(&key);
            app.submit(deploy);
            let block = app.make_block(key.address(), 1);
            assert!(app.commit_block(&block));
            let analytics = contract_address(&key.address(), 0);
            Setup { app, key, analytics, nonce: 1 }
        }

        fn invoke(&mut self, selector: &str, args: &[Value]) {
            let tx = Transaction::new(
                self.key.address(),
                self.nonce,
                TxPayload::Invoke {
                    contract: self.analytics,
                    input: call_data(selector, args),
                },
                100_000,
            )
            .signed(&self.key);
            self.nonce += 1;
            assert!(self.app.submit(tx));
            let block = self.app.make_block(self.key.address(), 10);
            assert!(self.app.commit_block(&block));
        }
    }

    fn mean_tool() -> Tool {
        // params: [dataset_label, params_blob, x1, x2, ...]
        Tool::new("mean", "v1", |params| {
            let values: Vec<i64> =
                params.iter().skip(2).filter_map(|v| v.as_int().ok()).collect();
            if values.is_empty() {
                return Ok(vec![Value::Int(0)]);
            }
            Ok(vec![Value::Int(values.iter().sum::<i64>() / values.len() as i64)])
        })
    }

    fn local_data_backend() -> Arc<dyn crate::oracle::OracleBackend> {
        Arc::new(|_method: &str, params: &[Value]| -> Result<Vec<Value>, ToolError> {
            match params.first().and_then(|v| v.as_str().ok()) {
                Some("site-a/emr") => Ok(vec![Value::Int(10), Value::Int(20), Value::Int(30)]),
                other => Err(ToolError::new(format!("not hosted: {other:?}"))),
            }
        })
    }

    #[test]
    fn analytics_request_runs_locally_and_posts_result() {
        let mut setup = Setup::new();
        let tool = mean_tool();
        setup.invoke(
            "register_tool",
            &[Value::str("mean"), Value::Bytes(tool.code_hash().0.to_vec())],
        );
        setup.invoke(
            "request_run",
            &[Value::str("mean"), Value::str("site-a/emr"), Value::Bytes(vec![])],
        );

        let mut control = ControlNode::new("site-a");
        control.install_tool(tool);
        control.host_dataset("site-a/emr");
        control.oracle_mut().register("local-data", local_data_backend());

        let intents = control.step(setup.app.ledger());
        assert_eq!(intents.len(), 1);
        match &intents[0] {
            ActionIntent::PostResult { task_id, result, .. } => {
                assert_eq!(*task_id, 0);
                assert_eq!(result, &vec![Value::Int(20)]);
            }
            other => panic!("unexpected intent {other:?}"),
        }
        assert_eq!(control.stats().tasks_run, 1);
        // Nothing new on a second cycle.
        assert!(control.step(setup.app.ledger()).is_empty());
    }

    #[test]
    fn requests_for_other_sites_are_skipped() {
        let mut setup = Setup::new();
        let tool = mean_tool();
        setup.invoke(
            "register_tool",
            &[Value::str("mean"), Value::Bytes(tool.code_hash().0.to_vec())],
        );
        setup.invoke(
            "request_run",
            &[Value::str("mean"), Value::str("site-b/emr"), Value::Bytes(vec![])],
        );

        let mut control = ControlNode::new("site-a");
        control.install_tool(tool);
        control.host_dataset("site-a/emr");
        let intents = control.step(setup.app.ledger());
        assert!(intents.is_empty());
        assert_eq!(control.stats().tasks_skipped, 1);
    }

    #[test]
    fn tool_failure_is_counted() {
        let mut setup = Setup::new();
        let bad = Tool::new("mean", "broken", |_| Err(ToolError::new("crash")));
        setup.invoke(
            "register_tool",
            &[Value::str("mean"), Value::Bytes(bad.code_hash().0.to_vec())],
        );
        setup.invoke(
            "request_run",
            &[Value::str("mean"), Value::str("site-a/emr"), Value::Bytes(vec![])],
        );
        let mut control = ControlNode::new("site-a");
        control.install_tool(bad);
        control.host_dataset("site-a/emr");
        control.oracle_mut().register("local-data", local_data_backend());
        assert!(control.step(setup.app.ledger()).is_empty());
        assert_eq!(control.stats().failures, 1);
    }
}

//! Hash-anchored registration of off-chain artifacts (Irving–Holden).
//!
//! "They proposed to create a hash for the raw data set and create a
//! transaction in the public … blockchain distributed ledger to store
//! the hash value … As such, the data modification can be easily
//! detected by any peer" (§III-A). We strengthen the cited scheme with a
//! Merkle root, so single-record membership proofs are possible without
//! revealing the rest of the dataset.

use medchain_chain::{
    Address, AuthorityKey, Hash256, MerkleProof, MerkleTree, Transaction, TxPayload, WorldState,
};
use std::fmt;

/// Canonical anchor label for a site-owned artifact.
pub fn anchor_label(site: &str, artifact: &str) -> String {
    format!("{site}/{artifact}")
}

/// A dataset (or code bundle) prepared for anchoring: the Merkle tree of
/// its serialized records.
#[derive(Debug, Clone)]
pub struct AnchoredArtifact {
    label: String,
    tree: MerkleTree,
}

impl AnchoredArtifact {
    /// Builds the anchor tree over serialized records.
    pub fn new<I, T>(label: &str, records: I) -> AnchoredArtifact
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]>,
    {
        AnchoredArtifact { label: label.to_string(), tree: MerkleTree::from_items(records) }
    }

    /// The anchor label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The Merkle root committed on-chain.
    pub fn root(&self) -> Hash256 {
        self.tree.root()
    }

    /// Number of records committed.
    pub fn record_count(&self) -> usize {
        self.tree.leaf_count()
    }

    /// Builds the signed anchor transaction.
    pub fn anchor_tx(&self, key: &AuthorityKey, nonce: u64) -> Transaction {
        Transaction::new(
            key.address(),
            nonce,
            TxPayload::Anchor { root: self.root(), label: self.label.clone() },
            100,
        )
        .signed(key)
    }

    /// Proves membership of the record at `index`.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        self.tree.prove(index)
    }
}

/// Result of verifying off-chain data against its on-chain anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityVerdict {
    /// Recomputed root matches the anchor.
    Intact,
    /// Roots differ — the off-chain data was modified.
    Tampered {
        /// Root recorded on-chain.
        anchored: Hash256,
        /// Root recomputed from the presented data.
        computed: Hash256,
    },
    /// No anchor exists for the label.
    NotAnchored,
}

impl IntegrityVerdict {
    /// Whether the data passed verification.
    pub fn is_intact(&self) -> bool {
        matches!(self, IntegrityVerdict::Intact)
    }
}

impl fmt::Display for IntegrityVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityVerdict::Intact => f.write_str("intact"),
            IntegrityVerdict::Tampered { .. } => f.write_str("tampered"),
            IntegrityVerdict::NotAnchored => f.write_str("not anchored"),
        }
    }
}

/// Verifies presented records against the on-chain anchor for `label`.
pub fn verify_against_chain<I, T>(state: &WorldState, label: &str, records: I) -> IntegrityVerdict
where
    I: IntoIterator<Item = T>,
    T: AsRef<[u8]>,
{
    let Some(anchored) = state.anchor(label) else {
        return IntegrityVerdict::NotAnchored;
    };
    let computed = MerkleTree::from_items(records).root();
    if computed == anchored {
        IntegrityVerdict::Intact
    } else {
        IntegrityVerdict::Tampered { anchored, computed }
    }
}

/// Verifies a single record's membership proof against the anchor —
/// the low-cost peer verification Irving & Holden describe.
pub fn verify_record(
    state: &WorldState,
    label: &str,
    record: &[u8],
    proof: &MerkleProof,
) -> IntegrityVerdict {
    let Some(anchored) = state.anchor(label) else {
        return IntegrityVerdict::NotAnchored;
    };
    if proof.verify(&Hash256::digest(record), &anchored) {
        IntegrityVerdict::Intact
    } else {
        IntegrityVerdict::Tampered { anchored, computed: Hash256::digest(record) }
    }
}

/// Identifies who may anchor under a site prefix: simple namespace rule
/// `site-address-hex/artifact`.
pub fn site_owns_label(site: &Address, label: &str) -> bool {
    label.starts_with(&format!("{}/", site.to_hex()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use medchain_chain::ledger::{Ledger, NullRuntime};
    use medchain_chain::KeyRegistry;

    fn ledger_with(key: &AuthorityKey) -> Ledger {
        let mut registry = KeyRegistry::new();
        registry.enroll(key);
        Ledger::new("anchor-test", registry, Box::new(NullRuntime))
    }

    fn records() -> Vec<Vec<u8>> {
        (0..10u8).map(|i| format!("patient-record-{i}").into_bytes()).collect()
    }

    #[test]
    fn anchor_and_verify_intact() {
        let key = AuthorityKey::from_seed(1);
        let mut ledger = ledger_with(&key);
        let artifact = AnchoredArtifact::new("hospital-1/emr", records());
        let block = ledger.propose(key.address(), 10, vec![artifact.anchor_tx(&key, 0)]);
        ledger.apply(&block).unwrap();
        assert_eq!(
            verify_against_chain(ledger.state(), "hospital-1/emr", records()),
            IntegrityVerdict::Intact
        );
    }

    #[test]
    fn tampering_is_detected() {
        let key = AuthorityKey::from_seed(1);
        let mut ledger = ledger_with(&key);
        let artifact = AnchoredArtifact::new("hospital-1/emr", records());
        let block = ledger.propose(key.address(), 10, vec![artifact.anchor_tx(&key, 0)]);
        ledger.apply(&block).unwrap();

        let mut tampered = records();
        tampered[3] = b"patient-record-3-with-falsified-outcome".to_vec();
        let verdict = verify_against_chain(ledger.state(), "hospital-1/emr", tampered);
        assert!(matches!(verdict, IntegrityVerdict::Tampered { .. }));
    }

    #[test]
    fn missing_anchor_is_reported() {
        let key = AuthorityKey::from_seed(1);
        let ledger = ledger_with(&key);
        assert_eq!(
            verify_against_chain(ledger.state(), "nobody/nothing", records()),
            IntegrityVerdict::NotAnchored
        );
    }

    #[test]
    fn single_record_proof_verifies() {
        let key = AuthorityKey::from_seed(1);
        let mut ledger = ledger_with(&key);
        let artifact = AnchoredArtifact::new("hospital-1/emr", records());
        let block = ledger.propose(key.address(), 10, vec![artifact.anchor_tx(&key, 0)]);
        ledger.apply(&block).unwrap();

        let proof = artifact.prove(4).unwrap();
        assert!(verify_record(ledger.state(), "hospital-1/emr", &records()[4], &proof)
            .is_intact());
        // Wrong record with the same proof fails.
        assert!(!verify_record(ledger.state(), "hospital-1/emr", b"forged", &proof).is_intact());
    }

    #[test]
    fn label_namespace_rule() {
        let site = Address::from_seed(3);
        assert!(site_owns_label(&site, &anchor_label(&site.to_hex(), "emr")));
        assert!(!site_owns_label(&site, "someone-else/emr"));
    }

    #[test]
    fn anchor_counts_records() {
        let artifact = AnchoredArtifact::new("x/y", records());
        assert_eq!(artifact.record_count(), 10);
        assert_eq!(artifact.label(), "x/y");
    }
}

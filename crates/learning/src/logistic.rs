//! Logistic regression trained with mini-batch SGD.
//!
//! The workhorse disease-risk model of the experiments: small enough to
//! federate cheaply, strong enough to recover the synthetic cohorts'
//! ground-truth logistic models.

use crate::linalg::{dot, sigmoid};
use medchain_data::Dataset;
use medchain_runtime::DetRng;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig { learning_rate: 0.1, epochs: 30, batch_size: 32, l2: 1e-4, seed: 7 }
    }
}

/// A binary logistic-regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Zero-initialized model of dimension `dim`.
    pub fn new(dim: usize) -> LogisticRegression {
        LogisticRegression { weights: vec![0.0; dim], bias: 0.0 }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// The learned weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Flat parameter vector (weights ‖ bias) — the FedAvg payload.
    pub fn params(&self) -> Vec<f64> {
        let mut p = self.weights.clone();
        p.push(self.bias);
        p
    }

    /// Installs a flat parameter vector from [`LogisticRegression::params`].
    ///
    /// # Panics
    ///
    /// Panics if the length is not `dim + 1`.
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.weights.len() + 1, "parameter length mismatch");
        self.weights.copy_from_slice(&params[..params.len() - 1]);
        self.bias = params[params.len() - 1];
    }

    /// Predicted probability for one row.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        sigmoid(dot(&self.weights, x) + self.bias)
    }

    /// Predicted probabilities for a dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        data.features.iter().map(|x| self.predict_one(x)).collect()
    }

    /// Trains in place with mini-batch SGD.
    ///
    /// # Panics
    ///
    /// Panics if the dataset dimension does not match the model.
    pub fn train(&mut self, data: &Dataset, config: &SgdConfig) {
        if data.is_empty() {
            return;
        }
        assert_eq!(data.dim(), self.dim(), "dataset dimension mismatch");
        let mut rng = DetRng::from_seed(config.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let batch = config.batch_size.max(1);
        for _ in 0..config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(batch) {
                let mut grad_w = vec![0.0; self.dim()];
                let mut grad_b = 0.0;
                for &i in chunk {
                    let error = self.predict_one(&data.features[i]) - data.labels[i];
                    for (g, xi) in grad_w.iter_mut().zip(&data.features[i]) {
                        *g += error * xi;
                    }
                    grad_b += error;
                }
                let scale = config.learning_rate / chunk.len() as f64;
                for (w, g) in self.weights.iter_mut().zip(&grad_w) {
                    *w -= scale * g + config.learning_rate * config.l2 * *w;
                }
                self.bias -= scale * grad_b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, auc};
    use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile, STROKE_CODE};

    fn stroke_data(n: usize, seed: u64) -> Dataset {
        let records = CohortGenerator::new("s", SiteProfile::default(), seed).cohort(
            0,
            n,
            &DiseaseModel::stroke(),
        );
        Dataset::from_records(&records, STROKE_CODE)
    }

    #[test]
    fn learns_linearly_separable_toy() {
        let data = Dataset {
            features: vec![vec![0.0], vec![0.2], vec![0.8], vec![1.0]],
            labels: vec![0.0, 0.0, 1.0, 1.0],
            feature_names: vec!["x".into()],
        };
        let mut model = LogisticRegression::new(1);
        model.train(
            &data,
            &SgdConfig { learning_rate: 1.0, epochs: 500, batch_size: 4, l2: 0.0, seed: 1 },
        );
        assert!(model.predict_one(&[0.0]) < 0.5);
        assert!(model.predict_one(&[1.0]) > 0.5);
    }

    #[test]
    fn recovers_signal_on_synthetic_cohort() {
        let data = stroke_data(4_000, 3);
        let (train, test) = data.train_test_split(0.8, 1);
        let mut model = LogisticRegression::new(train.dim());
        model.train(&train, &SgdConfig::default());
        let test_auc = auc(&model.predict(&test), &test.labels);
        assert!(test_auc > 0.75, "AUC {test_auc} too low — no signal recovered");
    }

    #[test]
    fn weights_point_at_true_risk_factors() {
        let data = stroke_data(6_000, 5);
        let mut model = LogisticRegression::new(data.dim());
        model.train(&data, &SgdConfig { epochs: 60, ..SgdConfig::default() });
        // age (0), sbp (1), smoker (4) are strong positive factors;
        // activity (6) is protective in the ground truth.
        assert!(model.weights()[0] > 0.1, "age weight {}", model.weights()[0]);
        assert!(model.weights()[1] > 0.1, "sbp weight {}", model.weights()[1]);
        assert!(model.weights()[4] > 0.1, "smoker weight {}", model.weights()[4]);
        assert!(model.weights()[6] < 0.0, "steps weight {}", model.weights()[6]);
    }

    #[test]
    fn params_round_trip() {
        let data = stroke_data(500, 7);
        let mut model = LogisticRegression::new(data.dim());
        model.train(&data, &SgdConfig::default());
        let mut clone = LogisticRegression::new(data.dim());
        clone.set_params(&model.params());
        assert_eq!(clone, model);
    }

    #[test]
    fn training_is_deterministic() {
        let data = stroke_data(800, 9);
        let mut a = LogisticRegression::new(data.dim());
        a.train(&data, &SgdConfig::default());
        let mut b = LogisticRegression::new(data.dim());
        b.train(&data, &SgdConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_dataset_is_a_no_op() {
        let mut model = LogisticRegression::new(3);
        model.train(&Dataset::default(), &SgdConfig::default());
        assert_eq!(model.params(), vec![0.0; 4]);
    }

    #[test]
    fn accuracy_beats_base_rate() {
        let data = stroke_data(4_000, 11);
        let (train, test) = data.train_test_split(0.8, 2);
        let mut model = LogisticRegression::new(train.dim());
        model.train(&train, &SgdConfig::default());
        let acc = accuracy(&model.predict(&test), &test.labels);
        let base = 1.0 - test.positive_rate();
        assert!(acc >= base - 0.02, "accuracy {acc} below base rate {base}");
    }
}

//! Analytics decomposition: splitting an aggregate computation into
//! per-site map tasks plus an exact compose step.
//!
//! "The researches and developments of new innovative decomposition
//! mechanisms are required to decompose a complicated analytics into
//! distributed and parallel tasks which can be run in the blockchain
//! distributed parallel smart contract environment" (paper §III). The
//! aggregates here carry sufficient statistics, so composing per-site
//! partials is *exactly* equal to the centralized computation — the
//! property that makes move-compute-to-data lossless.

use medchain_data::schema::Field;
use medchain_data::PatientRecord;
use std::fmt;

/// A decomposable aggregate over one field.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// Row count.
    Count,
    /// Sum of a field.
    Sum(Field),
    /// Mean of a field.
    Mean(Field),
    /// Population variance of a field.
    Variance(Field),
    /// Fixed-bin histogram of a field.
    Histogram {
        /// Aggregated field.
        field: Field,
        /// Number of bins.
        bins: usize,
        /// Inclusive lower edge.
        min: f64,
        /// Exclusive upper edge.
        max: f64,
    },
    /// Prevalence of a diagnosis code (fraction of records).
    Prevalence(String),
}

/// Mergeable sufficient statistics produced by one site.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Partial {
    /// Rows contributing (field present).
    pub n: u64,
    /// Σx.
    pub sum: f64,
    /// Σx².
    pub sum_sq: f64,
    /// Histogram bin counts (empty unless histogram).
    pub bins: Vec<u64>,
    /// Rows scanned (including rows missing the field).
    pub scanned: u64,
}

impl Partial {
    /// Merges another partial into this one.
    pub fn merge(&mut self, other: &Partial) {
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.scanned += other.scanned;
        if self.bins.is_empty() {
            self.bins = other.bins.clone();
        } else if !other.bins.is_empty() {
            assert_eq!(self.bins.len(), other.bins.len(), "histogram bin mismatch");
            for (a, b) in self.bins.iter_mut().zip(&other.bins) {
                *a += b;
            }
        }
    }

    /// Serialized size in bytes (what a site uploads instead of raw
    /// records).
    pub fn wire_size(&self) -> usize {
        8 * 4 + self.bins.len() * 8
    }
}

/// Final composed value of an aggregate.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateValue {
    /// A scalar result.
    Scalar(f64),
    /// Histogram bin counts.
    Histogram(Vec<u64>),
}

impl AggregateValue {
    /// Reads a scalar result.
    ///
    /// # Panics
    ///
    /// Panics on histogram values.
    pub fn scalar(&self) -> f64 {
        match self {
            AggregateValue::Scalar(v) => *v,
            AggregateValue::Histogram(_) => panic!("histogram result, not scalar"),
        }
    }
}

impl fmt::Display for AggregateValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateValue::Scalar(v) => write!(f, "{v:.6}"),
            AggregateValue::Histogram(bins) => write!(f, "{bins:?}"),
        }
    }
}

impl Aggregate {
    /// The map step: computes this aggregate's partial over one site's
    /// records.
    pub fn map_site(&self, records: &[PatientRecord]) -> Partial {
        let mut partial = Partial { scanned: records.len() as u64, ..Partial::default() };
        match self {
            Aggregate::Count => partial.n = records.len() as u64,
            Aggregate::Sum(field) | Aggregate::Mean(field) | Aggregate::Variance(field) => {
                for record in records {
                    if let Some(v) = field.extract(record) {
                        partial.n += 1;
                        partial.sum += v;
                        partial.sum_sq += v * v;
                    }
                }
            }
            Aggregate::Histogram { field, bins, min, max } => {
                partial.bins = vec![0; *bins];
                let width = (max - min) / *bins as f64;
                for record in records {
                    if let Some(v) = field.extract(record) {
                        if v >= *min && v < *max && width > 0.0 {
                            partial.n += 1;
                            let bin = ((v - min) / width) as usize;
                            partial.bins[bin.min(*bins - 1)] += 1;
                        }
                    }
                }
            }
            Aggregate::Prevalence(code) => {
                for record in records {
                    partial.n += u64::from(record.has_diagnosis(code));
                }
            }
        }
        partial
    }

    /// The compose step: merges per-site partials into the final value.
    pub fn compose(&self, partials: &[Partial]) -> AggregateValue {
        let mut merged = Partial::default();
        for p in partials {
            merged.merge(p);
        }
        match self {
            Aggregate::Count => AggregateValue::Scalar(merged.n as f64),
            Aggregate::Sum(_) => AggregateValue::Scalar(merged.sum),
            Aggregate::Mean(_) => AggregateValue::Scalar(if merged.n == 0 {
                0.0
            } else {
                merged.sum / merged.n as f64
            }),
            Aggregate::Variance(_) => AggregateValue::Scalar(if merged.n == 0 {
                0.0
            } else {
                let mean = merged.sum / merged.n as f64;
                merged.sum_sq / merged.n as f64 - mean * mean
            }),
            Aggregate::Histogram { .. } => AggregateValue::Histogram(merged.bins),
            Aggregate::Prevalence(_) => AggregateValue::Scalar(if merged.scanned == 0 {
                0.0
            } else {
                merged.n as f64 / merged.scanned as f64
            }),
        }
    }

    /// Convenience: centralized computation (map + compose over one
    /// shard), the reference the distributed path must match.
    pub fn compute(&self, records: &[PatientRecord]) -> AggregateValue {
        self.compose(&[self.map_site(records)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile, STROKE_CODE};

    fn records(n: usize, seed: u64) -> Vec<PatientRecord> {
        CohortGenerator::new("s", SiteProfile::default(), seed).cohort(
            0,
            n,
            &DiseaseModel::stroke(),
        )
    }

    fn assert_distributed_equals_centralized(aggregate: Aggregate) {
        let all = records(900, 77);
        let centralized = aggregate.compute(&all);
        let partials: Vec<Partial> =
            all.chunks(250).map(|site| aggregate.map_site(site)).collect();
        let distributed = aggregate.compose(&partials);
        match (&centralized, &distributed) {
            (AggregateValue::Scalar(a), AggregateValue::Scalar(b)) => {
                assert!((a - b).abs() < 1e-9, "{aggregate:?}: {a} vs {b}")
            }
            (AggregateValue::Histogram(a), AggregateValue::Histogram(b)) => assert_eq!(a, b),
            other => panic!("variant mismatch: {other:?}"),
        }
    }

    #[test]
    fn count_decomposes_exactly() {
        assert_distributed_equals_centralized(Aggregate::Count);
    }

    #[test]
    fn sum_and_mean_decompose_exactly() {
        assert_distributed_equals_centralized(Aggregate::Sum(Field::Age));
        assert_distributed_equals_centralized(Aggregate::Mean(Field::SystolicBp));
    }

    #[test]
    fn variance_decomposes_exactly() {
        assert_distributed_equals_centralized(Aggregate::Variance(Field::Cholesterol));
    }

    #[test]
    fn histogram_decomposes_exactly() {
        assert_distributed_equals_centralized(Aggregate::Histogram {
            field: Field::Age,
            bins: 12,
            min: 15.0,
            max: 100.0,
        });
    }

    #[test]
    fn prevalence_decomposes_exactly() {
        assert_distributed_equals_centralized(Aggregate::Prevalence(STROKE_CODE.into()));
    }

    #[test]
    fn mean_value_is_plausible() {
        let all = records(2_000, 5);
        let mean_age = Aggregate::Mean(Field::Age).compute(&all).scalar();
        assert!((40.0..70.0).contains(&mean_age), "mean age {mean_age}");
    }

    #[test]
    fn missing_modality_rows_are_excluded_not_zeroed() {
        let all = records(1_000, 6);
        let n_with_wearable = all.iter().filter(|r| r.wearable.is_some()).count() as u64;
        let partial = Aggregate::Mean(Field::DailySteps).map_site(&all);
        assert_eq!(partial.n, n_with_wearable);
        assert_eq!(partial.scanned, 1_000);
    }

    #[test]
    fn partial_wire_size_is_tiny_compared_to_raw_records() {
        let all = records(5_000, 8);
        let partial = Aggregate::Variance(Field::Age).map_site(&all);
        let raw_bytes: usize = all.iter().map(|r| r.canonical_bytes().len()).sum();
        assert!(partial.wire_size() * 1_000 < raw_bytes);
    }

    #[test]
    fn empty_compose_is_zero() {
        assert_eq!(Aggregate::Mean(Field::Age).compose(&[]), AggregateValue::Scalar(0.0));
        assert_eq!(Aggregate::Count.compose(&[]), AggregateValue::Scalar(0.0));
    }
}

mod codec_impls {
    use super::{Aggregate, Partial};
    use medchain_runtime::{impl_codec_enum, impl_codec_struct};

    impl_codec_enum!(Aggregate {
        0 => Count,
        1 => Sum(field),
        2 => Mean(field),
        3 => Variance(field),
        4 => Histogram { field, bins, min, max },
        5 => Prevalence(code),
    });
    impl_codec_struct!(Partial { n, sum, sum_sq, bins, scanned });
}

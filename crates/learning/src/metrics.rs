//! Evaluation metrics for the learning experiments.

/// Classification accuracy at a 0.5 threshold.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn accuracy(probabilities: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(probabilities.len(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let correct = probabilities
        .iter()
        .zip(labels)
        .filter(|(p, y)| (**p >= 0.5) == (**y >= 0.5))
        .count();
    correct as f64 / labels.len() as f64
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) estimator,
/// with tie correction. Returns 0.5 when one class is absent.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn auc(probabilities: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(probabilities.len(), labels.len());
    let positives = labels.iter().filter(|y| **y >= 0.5).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return 0.5;
    }
    // Rank the scores (average ranks for ties).
    let mut order: Vec<usize> = (0..probabilities.len()).collect();
    order.sort_by(|&a, &b| {
        probabilities[a].partial_cmp(&probabilities[b]).expect("scores must not be NaN")
    });
    let mut ranks = vec![0.0; probabilities.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && probabilities[order[j + 1]] == probabilities[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let positive_rank_sum: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(y, _)| **y >= 0.5)
        .map(|(_, r)| *r)
        .sum();
    let p = positives as f64;
    let n = negatives as f64;
    (positive_rank_sum - p * (p + 1.0) / 2.0) / (p * n)
}

/// Binary cross-entropy (log loss), clamped for numerical safety.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn log_loss(probabilities: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(probabilities.len(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let eps = 1e-12;
    let total: f64 = probabilities
        .iter()
        .zip(labels)
        .map(|(p, y)| {
            let p = p.clamp(eps, 1.0 - eps);
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        })
        .sum();
    total / labels.len() as f64
}

/// Root-mean-square error for regression.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len());
    if targets.is_empty() {
        return 0.0;
    }
    let mse: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / targets.len() as f64;
    mse.sqrt()
}

/// A 2×2 confusion matrix at a 0.5 threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Tallies predictions against labels.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn tally(probabilities: &[f64], labels: &[f64]) -> Confusion {
        assert_eq!(probabilities.len(), labels.len());
        let mut c = Confusion::default();
        for (p, y) in probabilities.iter().zip(labels) {
            match (*p >= 0.5, *y >= 0.5) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Sensitivity (recall): TP / (TP + FN); 0 when no positives.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// Precision: TP / (TP + FP); 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let p = [0.9, 0.8, 0.1, 0.2];
        let y = [1.0, 1.0, 0.0, 0.0];
        assert_eq!(accuracy(&p, &y), 1.0);
        assert!((auc(&p, &y) - 1.0).abs() < 1e-12);
        assert!(log_loss(&p, &y) < 0.3);
    }

    #[test]
    fn inverted_classifier_has_zero_auc() {
        let p = [0.1, 0.2, 0.9, 0.8];
        let y = [1.0, 1.0, 0.0, 0.0];
        assert!((auc(&p, &y) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn random_scores_give_half_auc() {
        // Constant scores: all tied → 0.5 by tie correction.
        let p = [0.5; 10];
        let y = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        assert!((auc(&p, &y) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_labels_give_half_auc() {
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[0.1, 0.9], &[0.0, 0.0]), 0.5);
    }

    #[test]
    fn rmse_basic() {
        assert!((rmse(&[1.0, 2.0], &[1.0, 4.0]) - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_counts() {
        let p = [0.9, 0.9, 0.1, 0.1, 0.6];
        let y = [1.0, 0.0, 0.0, 1.0, 1.0];
        let c = Confusion::tally(&p, &y);
        assert_eq!(c, Confusion { tp: 2, fp: 1, tn: 1, fn_: 1 });
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn log_loss_clamps_extremes() {
        assert!(log_loss(&[0.0, 1.0], &[1.0, 0.0]).is_finite());
    }
}

//! A small multi-layer perceptron with backpropagation.
//!
//! ReLU hidden layers, sigmoid output, binary cross-entropy loss.
//! Supports layer freezing and output re-initialization — the mechanics
//! of transfer learning (paper §III-A/C) — plus flat parameter
//! export/import for federated averaging.

use crate::linalg::sigmoid;
use medchain_data::Dataset;
use medchain_runtime::DetRng;

/// MLP architecture and training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer widths, e.g. `[16, 8]`.
    pub hidden: Vec<usize>,
    /// Learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 regularization.
    pub l2: f64,
    /// Initialization / shuffle seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: vec![16],
            learning_rate: 0.05,
            epochs: 40,
            batch_size: 32,
            l2: 1e-4,
            seed: 11,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Layer {
    /// Row-major `[out][in]` weights.
    w: Vec<Vec<f64>>,
    b: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut DetRng) -> Layer {
        // He-style initialization.
        let scale = (2.0 / inputs as f64).sqrt();
        Layer {
            w: (0..outputs)
                .map(|_| (0..inputs).map(|_| rng.gen_range(-scale..scale)).collect())
                .collect(),
            b: vec![0.0; outputs],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.w
            .iter()
            .zip(&self.b)
            .map(|(row, b)| row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>() + b)
            .collect()
    }

    fn param_count(&self) -> usize {
        self.w.len() * self.w.first().map_or(0, Vec::len) + self.b.len()
    }
}

/// A feed-forward binary classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Layer>,
    /// Layers with index `< frozen_below` receive no gradient updates.
    frozen_below: usize,
}

impl Mlp {
    /// Builds a network for `input_dim` features using `config`'s
    /// architecture and seed.
    pub fn new(input_dim: usize, config: &MlpConfig) -> Mlp {
        let mut rng = DetRng::from_seed(config.seed);
        let mut dims = vec![input_dim];
        dims.extend(&config.hidden);
        dims.push(1);
        let layers = dims.windows(2).map(|w| Layer::new(w[0], w[1], &mut rng)).collect();
        Mlp { layers, frozen_below: 0 }
    }

    /// Number of layers (hidden + output).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable + frozen parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Freezes every layer except the output head (transfer learning).
    pub fn freeze_feature_layers(&mut self) {
        self.frozen_below = self.layers.len().saturating_sub(1);
    }

    /// Unfreezes all layers.
    pub fn unfreeze(&mut self) {
        self.frozen_below = 0;
    }

    /// Re-initializes the output head (start of fine-tuning on a new
    /// target task).
    pub fn reinit_output(&mut self, seed: u64) {
        let mut rng = DetRng::from_seed(seed);
        let last = self.layers.last_mut().expect("at least one layer");
        let inputs = last.w.first().map_or(0, Vec::len);
        *last = Layer::new(inputs, last.w.len(), &mut rng);
    }

    /// Forward pass: per-layer post-activation outputs (ReLU hidden,
    /// sigmoid final).
    fn forward_all(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut activations: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len());
        let mut current = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = layer.forward(&current);
            if i + 1 == self.layers.len() {
                for v in &mut z {
                    *v = sigmoid(*v);
                }
            } else {
                for v in &mut z {
                    *v = v.max(0.0);
                }
            }
            activations.push(z.clone());
            current = z;
        }
        activations
    }

    /// Predicted probability for one row.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        self.forward_all(x).last().expect("output layer")[0]
    }

    /// Predicted probabilities for a dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        data.features.iter().map(|x| self.predict_one(x)).collect()
    }

    /// Trains with mini-batch SGD and backpropagation.
    ///
    /// # Panics
    ///
    /// Panics if the dataset dimension does not match the input layer.
    pub fn train(&mut self, data: &Dataset, config: &MlpConfig) {
        if data.is_empty() {
            return;
        }
        let input_dim = self.layers[0].w.first().map_or(0, Vec::len);
        assert_eq!(data.dim(), input_dim, "dataset dimension mismatch");
        let mut rng = DetRng::from_seed(config.seed ^ 0x5eed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let batch = config.batch_size.max(1);
        for _ in 0..config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(batch) {
                self.train_batch(data, chunk, config);
            }
        }
    }

    fn train_batch(&mut self, data: &Dataset, batch: &[usize], config: &MlpConfig) {
        // Accumulate gradients over the batch.
        let mut grad_w: Vec<Vec<Vec<f64>>> = self
            .layers
            .iter()
            .map(|l| l.w.iter().map(|row| vec![0.0; row.len()]).collect())
            .collect();
        let mut grad_b: Vec<Vec<f64>> =
            self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

        for &i in batch {
            let x = &data.features[i];
            let y = data.labels[i];
            let activations = self.forward_all(x);
            // Output delta for sigmoid + BCE: (p - y).
            let mut delta = vec![activations.last().expect("output")[0] - y];
            for layer_idx in (0..self.layers.len()).rev() {
                let input: &[f64] =
                    if layer_idx == 0 { x } else { &activations[layer_idx - 1] };
                for (j, d) in delta.iter().enumerate() {
                    for (k, xi) in input.iter().enumerate() {
                        grad_w[layer_idx][j][k] += d * xi;
                    }
                    grad_b[layer_idx][j] += d;
                }
                if layer_idx > 0 {
                    // Propagate: delta_prev = W^T delta ⊙ relu'(a_prev).
                    let prev_act = &activations[layer_idx - 1];
                    let mut prev_delta = vec![0.0; prev_act.len()];
                    for (j, d) in delta.iter().enumerate() {
                        for (k, pd) in prev_delta.iter_mut().enumerate() {
                            *pd += self.layers[layer_idx].w[j][k] * d;
                        }
                    }
                    for (pd, act) in prev_delta.iter_mut().zip(prev_act) {
                        if *act <= 0.0 {
                            *pd = 0.0;
                        }
                    }
                    delta = prev_delta;
                }
            }
        }

        let scale = config.learning_rate / batch.len() as f64;
        for layer_idx in self.frozen_below..self.layers.len() {
            let layer = &mut self.layers[layer_idx];
            for (row, grow) in layer.w.iter_mut().zip(&grad_w[layer_idx]) {
                for (w, g) in row.iter_mut().zip(grow) {
                    *w -= scale * g + config.learning_rate * config.l2 * *w;
                }
            }
            for (b, g) in layer.b.iter_mut().zip(&grad_b[layer_idx]) {
                *b -= scale * g;
            }
        }
    }

    /// Flat parameter export (FedAvg payload).
    pub fn params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            for row in &layer.w {
                out.extend_from_slice(row);
            }
            out.extend_from_slice(&layer.b);
        }
        out
    }

    /// Installs a flat parameter vector from [`Mlp::params`].
    ///
    /// # Panics
    ///
    /// Panics if the length does not match [`Mlp::param_count`].
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.param_count(), "parameter length mismatch");
        let mut at = 0;
        for layer in &mut self.layers {
            for row in &mut layer.w {
                let len = row.len();
                row.copy_from_slice(&params[at..at + len]);
                at += len;
            }
            let len = layer.b.len();
            layer.b.copy_from_slice(&params[at..at + len]);
            at += len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::auc;
    use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile, STROKE_CODE};

    fn xor_data() -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..50 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                features.push(vec![a, b]);
                labels.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
            }
        }
        Dataset { features, labels, feature_names: vec!["a".into(), "b".into()] }
    }

    #[test]
    fn learns_xor() {
        let data = xor_data();
        let config = MlpConfig {
            hidden: vec![8],
            learning_rate: 0.5,
            epochs: 300,
            batch_size: 16,
            l2: 0.0,
            // Seed 1 avoids the dead-ReLU local minimum XOR is prone to.
            seed: 1,
        };
        let mut net = Mlp::new(2, &config);
        net.train(&data, &config);
        assert!(net.predict_one(&[0.0, 0.0]) < 0.4);
        assert!(net.predict_one(&[1.0, 1.0]) < 0.4);
        assert!(net.predict_one(&[0.0, 1.0]) > 0.6);
        assert!(net.predict_one(&[1.0, 0.0]) > 0.6);
    }

    #[test]
    fn beats_chance_on_stroke_cohort() {
        let records = CohortGenerator::new("s", SiteProfile::default(), 21).cohort(
            0,
            3_000,
            &DiseaseModel::stroke(),
        );
        let data = Dataset::from_records(&records, STROKE_CODE);
        let (train, test) = data.train_test_split(0.8, 4);
        let config = MlpConfig::default();
        let mut net = Mlp::new(train.dim(), &config);
        net.train(&train, &config);
        let score = auc(&net.predict(&test), &test.labels);
        assert!(score > 0.72, "AUC {score}");
    }

    #[test]
    fn params_round_trip_exactly() {
        let config = MlpConfig::default();
        let net = Mlp::new(10, &config);
        let mut other = Mlp::new(10, &MlpConfig { seed: 99, ..config });
        assert_ne!(net, other);
        other.set_params(&net.params());
        assert_eq!(net, other);
    }

    #[test]
    fn frozen_layers_do_not_move() {
        let data = xor_data();
        let config = MlpConfig { epochs: 5, ..MlpConfig::default() };
        let mut net = Mlp::new(2, &config);
        let before = net.params();
        let hidden_params = net.param_count() - (net.layers.last().unwrap().param_count());
        net.freeze_feature_layers();
        net.train(&data, &config);
        let after = net.params();
        assert_eq!(&before[..hidden_params], &after[..hidden_params], "hidden layers moved");
        assert_ne!(&before[hidden_params..], &after[hidden_params..], "head did not train");
    }

    #[test]
    fn reinit_output_changes_only_head() {
        let config = MlpConfig::default();
        let mut net = Mlp::new(4, &config);
        let before = net.params();
        let head = net.layers.last().unwrap().param_count();
        net.reinit_output(123);
        let after = net.params();
        let split = before.len() - head;
        assert_eq!(&before[..split], &after[..split]);
        assert_ne!(&before[split..], &after[split..]);
    }

    #[test]
    fn construction_is_seed_deterministic() {
        let config = MlpConfig::default();
        assert_eq!(Mlp::new(5, &config), Mlp::new(5, &config));
    }
}

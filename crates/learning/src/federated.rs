//! Federated averaging across hospital sites (paper §III-C).
//!
//! "Google researchers introduced a distributed learning approach, named
//! federated learning, that enables [devices] to collaboratively learn a
//! shared prediction model while keeping all the training data on local
//! devices." Our setting differs as the paper notes: a few powerful,
//! reliable hospital servers rather than millions of flaky phones — so
//! the orchestration is synchronous FedAvg over all sites per round.
//!
//! Local site training runs on real OS threads, and communication is
//! metered in bytes so experiment E8 can compare "ship the model" against
//! "ship the raw records".

use crate::linalg::weighted_average;
use crate::logistic::{LogisticRegression, SgdConfig};
use crate::metrics::{accuracy, auc};
use crate::nn::{Mlp, MlpConfig};
use medchain_data::Dataset;

/// A model that can participate in federated averaging.
pub trait LocalLearner: Clone + Send {
    /// Flat parameter export.
    fn params(&self) -> Vec<f64>;
    /// Flat parameter import.
    fn set_params(&mut self, params: &[f64]);
    /// One round of local training on the site shard.
    fn fit_local(&mut self, shard: &Dataset);
    /// Predicted probabilities.
    fn predict(&self, data: &Dataset) -> Vec<f64>;
}

/// Logistic regression with its local-training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FedLogistic {
    /// The model.
    pub model: LogisticRegression,
    /// Local epochs/batching per round.
    pub local: SgdConfig,
}

impl FedLogistic {
    /// Fresh model of dimension `dim` training `local_epochs` per round.
    pub fn new(dim: usize, local_epochs: usize) -> FedLogistic {
        FedLogistic {
            model: LogisticRegression::new(dim),
            local: SgdConfig { epochs: local_epochs, ..SgdConfig::default() },
        }
    }
}

impl LocalLearner for FedLogistic {
    fn params(&self) -> Vec<f64> {
        self.model.params()
    }

    fn set_params(&mut self, params: &[f64]) {
        self.model.set_params(params);
    }

    fn fit_local(&mut self, shard: &Dataset) {
        self.model.train(shard, &self.local);
    }

    fn predict(&self, data: &Dataset) -> Vec<f64> {
        self.model.predict(data)
    }
}

/// MLP with its local-training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FedMlp {
    /// The network.
    pub model: Mlp,
    /// Local epochs/batching per round.
    pub local: MlpConfig,
}

impl FedMlp {
    /// Fresh network for `dim` inputs training `local_epochs` per round.
    pub fn new(dim: usize, local_epochs: usize) -> FedMlp {
        let local = MlpConfig { epochs: local_epochs, ..MlpConfig::default() };
        FedMlp { model: Mlp::new(dim, &local), local }
    }
}

impl LocalLearner for FedMlp {
    fn params(&self) -> Vec<f64> {
        self.model.params()
    }

    fn set_params(&mut self, params: &[f64]) {
        self.model.set_params(params);
    }

    fn fit_local(&mut self, shard: &Dataset) {
        self.model.train(shard, &self.local);
    }

    fn predict(&self, data: &Dataset) -> Vec<f64> {
        self.model.predict(data)
    }
}

/// Per-round evaluation snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Round number (1-based).
    pub round: usize,
    /// AUC of the global model on the held-out set.
    pub auc: f64,
    /// Accuracy of the global model on the held-out set.
    pub accuracy: f64,
}

/// Result of a federated run.
#[derive(Debug, Clone, PartialEq)]
pub struct FedReport {
    /// Per-round held-out metrics (empty when no eval set given).
    pub history: Vec<RoundStats>,
    /// Bytes uploaded by sites (model parameters only).
    pub bytes_uplink: u64,
    /// Bytes downloaded by sites (global model broadcasts).
    pub bytes_downlink: u64,
    /// Bytes that centralizing the raw shards would have moved instead.
    pub bytes_raw_equivalent: u64,
}

impl FedReport {
    /// Final-round AUC (0.5 if no history).
    pub fn final_auc(&self) -> f64 {
        self.history.last().map_or(0.5, |s| s.auc)
    }
}

/// Synchronous FedAvg orchestrator.
#[derive(Debug, Clone)]
pub struct FedAvg<M> {
    global: M,
    rounds: usize,
    metrics: medchain_runtime::metrics::Metrics,
}

impl<M: LocalLearner> FedAvg<M> {
    /// Creates an orchestrator from an initial global model.
    pub fn new(initial: M, rounds: usize) -> FedAvg<M> {
        FedAvg { global: initial, rounds, metrics: medchain_runtime::metrics::Metrics::noop() }
    }

    /// Installs a metrics handle; `learning.*` counters (rounds, model
    /// bytes moved up/down) report there alongside [`FedReport`].
    pub fn set_metrics(&mut self, metrics: medchain_runtime::metrics::Metrics) {
        self.metrics = metrics;
    }

    /// The current global model.
    pub fn global(&self) -> &M {
        &self.global
    }

    /// Consumes the orchestrator, returning the global model.
    pub fn into_global(self) -> M {
        self.global
    }

    /// Runs FedAvg over `shards` (one per site), evaluating on `eval`
    /// after each round. Raw data never leaves its shard; only
    /// parameters move.
    pub fn run(&mut self, shards: &[Dataset], eval: Option<&Dataset>) -> FedReport {
        assert!(!shards.is_empty(), "need at least one site");
        let param_bytes = (self.global.params().len() * 8) as u64;
        let sites = shards.len() as u64;
        let mut report = FedReport {
            history: Vec::with_capacity(self.rounds),
            bytes_uplink: 0,
            bytes_downlink: 0,
            bytes_raw_equivalent: shards.iter().map(|s| s.wire_size() as u64).sum(),
        };
        for round in 1..=self.rounds {
            // Broadcast the global model, train locally in parallel.
            let mut locals: Vec<M> = (0..shards.len()).map(|_| self.global.clone()).collect();
            medchain_runtime::sync::scoped_map(
                locals.iter_mut().zip(shards).collect(),
                |(local, shard)| local.fit_local(shard),
            );
            report.bytes_downlink += param_bytes * sites;
            report.bytes_uplink += param_bytes * sites;
            self.metrics.counter("learning.rounds", 1);
            self.metrics.counter("learning.bytes_downlink", param_bytes * sites);
            self.metrics.counter("learning.bytes_uplink", param_bytes * sites);

            // Aggregate weighted by shard size.
            let params: Vec<Vec<f64>> = locals.iter().map(LocalLearner::params).collect();
            let weights: Vec<f64> = shards.iter().map(|s| s.len() as f64).collect();
            self.global.set_params(&weighted_average(&params, &weights));

            if let Some(test) = eval {
                let probabilities = self.global.predict(test);
                report.history.push(RoundStats {
                    round,
                    auc: auc(&probabilities, &test.labels),
                    accuracy: accuracy(&probabilities, &test.labels),
                });
            }
        }
        report
    }
}

/// Baseline: train one model on the centralized union of all shards
/// (what HIPAA-style constraints forbid — the upper bound).
pub fn centralized_baseline<M: LocalLearner>(mut model: M, shards: &[Dataset]) -> M {
    let union = Dataset::concat(shards);
    model.fit_local(&union);
    model
}

/// Baseline: each site trains alone; returns per-site models (the
/// silo'd lower bound the paper's integration argument starts from).
pub fn local_only_baseline<M: LocalLearner>(model: M, shards: &[Dataset]) -> Vec<M> {
    shards
        .iter()
        .map(|shard| {
            let mut local = model.clone();
            local.fit_local(shard);
            local
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile, STROKE_CODE};

    fn site_shards(sites: usize, per_site: usize) -> (Vec<Dataset>, Dataset) {
        let mut shards = Vec::new();
        for i in 0..sites {
            let records =
                CohortGenerator::new(&format!("site-{i}"), SiteProfile::varied(i), 100 + i as u64)
                    .cohort((i * per_site) as u64, per_site, &DiseaseModel::stroke());
            shards.push(Dataset::from_records(&records, STROKE_CODE));
        }
        let eval_records = CohortGenerator::new("eval", SiteProfile::default(), 999).cohort(
            1_000_000,
            1_500,
            &DiseaseModel::stroke(),
        );
        (shards, Dataset::from_records(&eval_records, STROKE_CODE))
    }

    #[test]
    fn federated_beats_chance_and_approaches_centralized() {
        let (shards, eval) = site_shards(4, 600);
        let mut fed = FedAvg::new(FedLogistic::new(10, 3), 12);
        let report = fed.run(&shards, Some(&eval));
        let fed_auc = report.final_auc();

        let central = centralized_baseline(FedLogistic::new(10, 36), &shards);
        let central_auc = auc(&central.predict(&eval), &eval.labels);

        assert!(fed_auc > 0.68, "federated AUC {fed_auc}");
        assert!(
            central_auc - fed_auc < 0.06,
            "federated ({fed_auc}) should approach centralized ({central_auc})"
        );
    }

    #[test]
    fn federated_beats_local_only_on_noniid_shards() {
        let (shards, eval) = site_shards(6, 250);
        let mut fed = FedAvg::new(FedLogistic::new(10, 3), 10);
        let fed_auc = fed.run(&shards, Some(&eval)).final_auc();

        let locals = local_only_baseline(FedLogistic::new(10, 30), &shards);
        let mean_local_auc = locals
            .iter()
            .map(|m| auc(&m.predict(&eval), &eval.labels))
            .sum::<f64>()
            / locals.len() as f64;
        assert!(
            fed_auc > mean_local_auc - 0.01,
            "federated {fed_auc} vs mean local {mean_local_auc}"
        );
    }

    #[test]
    fn history_improves_over_rounds() {
        let (shards, eval) = site_shards(4, 500);
        let mut fed = FedAvg::new(FedLogistic::new(10, 2), 10);
        let report = fed.run(&shards, Some(&eval));
        assert_eq!(report.history.len(), 10);
        let first = report.history.first().unwrap().auc;
        let last = report.history.last().unwrap().auc;
        assert!(last >= first - 0.02, "AUC degraded: {first} → {last}");
    }

    #[test]
    fn communication_is_orders_of_magnitude_below_raw_centralization() {
        let (shards, _) = site_shards(5, 800);
        let mut fed = FedAvg::new(FedLogistic::new(10, 2), 10);
        let report = fed.run(&shards, None);
        let model_bytes = report.bytes_uplink + report.bytes_downlink;
        assert!(
            report.bytes_raw_equivalent > model_bytes * 10,
            "raw {} vs model {}",
            report.bytes_raw_equivalent,
            model_bytes
        );
    }

    #[test]
    fn rounds_and_bytes_feed_metrics_counters() {
        let (shards, _) = site_shards(2, 200);
        let registry = medchain_runtime::metrics::Registry::default();
        let mut fed = FedAvg::new(FedLogistic::new(10, 1), 3);
        fed.set_metrics(registry.handle());
        let report = fed.run(&shards, None);
        assert_eq!(registry.counter_value("learning.rounds"), 3);
        assert_eq!(registry.counter_value("learning.bytes_uplink"), report.bytes_uplink);
        assert_eq!(registry.counter_value("learning.bytes_downlink"), report.bytes_downlink);
    }

    #[test]
    fn fed_mlp_also_learns() {
        let (shards, eval) = site_shards(3, 500);
        let mut fed = FedAvg::new(FedMlp::new(10, 4), 8);
        let report = fed.run(&shards, Some(&eval));
        assert!(report.final_auc() > 0.62, "MLP federated AUC {}", report.final_auc());
    }

    #[test]
    fn single_site_federation_equals_local_training() {
        let (shards, eval) = site_shards(1, 700);
        let mut fed = FedAvg::new(FedLogistic::new(10, 5), 1);
        let fed_report = fed.run(&shards, Some(&eval));
        let mut solo = FedLogistic::new(10, 5);
        solo.fit_local(&shards[0]);
        let solo_auc = auc(&solo.predict(&eval), &eval.labels);
        assert!((fed_report.final_auc() - solo_auc).abs() < 1e-9);
    }
}

/// Gaussian-mechanism differential privacy for federated updates
/// (paper §III-C: federated learning "all while ensuring privacy" —
/// data locality alone does not bound what parameters leak; noisy
/// clipped updates do).
///
/// Each site's parameter *update* (delta from the broadcast global) is
/// L2-clipped to `clip_norm` and perturbed with `N(0, σ²)` per
/// coordinate, σ = `noise_multiplier × clip_norm`, before leaving the
/// site. Standard DP-FedAvg shape (Abadi-style moments accounting is out
/// of scope; the knob reported is the noise multiplier itself).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpConfig {
    /// Maximum L2 norm of a site's parameter update.
    pub clip_norm: f64,
    /// Noise standard deviation as a multiple of `clip_norm`.
    pub noise_multiplier: f64,
    /// Noise seed.
    pub seed: u64,
}

impl<M: LocalLearner> FedAvg<M> {
    /// Runs FedAvg with differentially private site updates.
    pub fn run_private(
        &mut self,
        shards: &[Dataset],
        eval: Option<&Dataset>,
        dp: &DpConfig,
    ) -> FedReport {
        assert!(!shards.is_empty(), "need at least one site");
        let mut rng = medchain_runtime::DetRng::from_seed(dp.seed);
        let param_bytes = (self.global.params().len() * 8) as u64;
        let sites = shards.len() as u64;
        let mut report = FedReport {
            history: Vec::with_capacity(self.rounds),
            bytes_uplink: 0,
            bytes_downlink: 0,
            bytes_raw_equivalent: shards.iter().map(|s| s.wire_size() as u64).sum(),
        };
        for round in 1..=self.rounds {
            let global_params = self.global.params();
            let mut locals: Vec<M> = (0..shards.len()).map(|_| self.global.clone()).collect();
            medchain_runtime::sync::scoped_map(
                locals.iter_mut().zip(shards).collect(),
                |(local, shard)| local.fit_local(shard),
            );
            report.bytes_downlink += param_bytes * sites;
            report.bytes_uplink += param_bytes * sites;
            self.metrics.counter("learning.rounds", 1);
            self.metrics.counter("learning.bytes_downlink", param_bytes * sites);
            self.metrics.counter("learning.bytes_uplink", param_bytes * sites);

            // Clip + noise each site's update before it leaves the site.
            let sanitized: Vec<Vec<f64>> = locals
                .iter()
                .map(|local| {
                    let mut delta: Vec<f64> = local
                        .params()
                        .iter()
                        .zip(&global_params)
                        .map(|(p, g)| p - g)
                        .collect();
                    let norm = crate::linalg::norm(&delta);
                    if norm > dp.clip_norm && norm > 0.0 {
                        crate::linalg::scale(dp.clip_norm / norm, &mut delta);
                    }
                    let sigma = dp.noise_multiplier * dp.clip_norm;
                    for d in &mut delta {
                        // Box–Muller gaussian.
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen();
                        let z = (-2.0 * u1.ln()).sqrt()
                            * (2.0 * std::f64::consts::PI * u2).cos();
                        *d += sigma * z;
                    }
                    delta
                        .iter()
                        .zip(&global_params)
                        .map(|(d, g)| g + d)
                        .collect()
                })
                .collect();

            let weights: Vec<f64> = shards.iter().map(|s| s.len() as f64).collect();
            self.global.set_params(&weighted_average(&sanitized, &weights));

            if let Some(test) = eval {
                let probabilities = self.global.predict(test);
                report.history.push(RoundStats {
                    round,
                    auc: auc(&probabilities, &test.labels),
                    accuracy: accuracy(&probabilities, &test.labels),
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod dp_tests {
    use super::*;
    use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile, STROKE_CODE};

    fn shards_and_eval(sites: usize, per_site: usize) -> (Vec<Dataset>, Dataset) {
        let shards: Vec<Dataset> = (0..sites)
            .map(|i| {
                let records = CohortGenerator::new(
                    &format!("dp-{i}"),
                    SiteProfile::varied(i),
                    400 + i as u64,
                )
                .cohort((i * 100_000) as u64, per_site, &DiseaseModel::stroke());
                Dataset::from_records(&records, STROKE_CODE)
            })
            .collect();
        let eval_records = CohortGenerator::new("dp-eval", SiteProfile::default(), 4_444)
            .cohort(8_000_000, 1_500, &DiseaseModel::stroke());
        (shards, Dataset::from_records(&eval_records, STROKE_CODE))
    }

    #[test]
    fn mild_noise_preserves_utility() {
        let (shards, eval) = shards_and_eval(4, 500);
        let dp = DpConfig { clip_norm: 1.0, noise_multiplier: 0.05, seed: 1 };
        let mut fed = FedAvg::new(FedLogistic::new(10, 3), 12);
        let private = fed.run_private(&shards, Some(&eval), &dp);
        assert!(private.final_auc() > 0.65, "DP AUC {}", private.final_auc());
    }

    #[test]
    fn heavy_noise_degrades_utility_monotonically() {
        let (shards, eval) = shards_and_eval(4, 400);
        let auc_at = |noise: f64| {
            let dp = DpConfig { clip_norm: 1.0, noise_multiplier: noise, seed: 2 };
            let mut fed = FedAvg::new(FedLogistic::new(10, 3), 10);
            fed.run_private(&shards, Some(&eval), &dp).final_auc()
        };
        let clean = auc_at(0.0);
        let noisy = auc_at(3.0);
        assert!(clean > noisy + 0.03, "noise should cost utility: {clean} vs {noisy}");
        assert!(noisy < 0.75, "heavy noise should approach chance: {noisy}");
    }

    #[test]
    fn zero_noise_private_matches_clipped_public_run() {
        // With no noise and a generous clip, run_private ≈ run.
        let (shards, eval) = shards_and_eval(3, 300);
        let dp = DpConfig { clip_norm: 1e9, noise_multiplier: 0.0, seed: 3 };
        let mut private = FedAvg::new(FedLogistic::new(10, 2), 6);
        let private_auc = private.run_private(&shards, Some(&eval), &dp).final_auc();
        let mut public = FedAvg::new(FedLogistic::new(10, 2), 6);
        let public_auc = public.run(&shards, Some(&eval)).final_auc();
        assert!((private_auc - public_auc).abs() < 1e-9);
    }

    #[test]
    fn updates_are_actually_clipped() {
        let (shards, _) = shards_and_eval(2, 300);
        // A pathologically tight clip: the global model barely moves.
        let dp = DpConfig { clip_norm: 1e-6, noise_multiplier: 0.0, seed: 4 };
        let mut fed = FedAvg::new(FedLogistic::new(10, 5), 3);
        fed.run_private(&shards, None, &dp);
        let norm = crate::linalg::norm(&fed.global().params());
        assert!(norm < 1e-4, "clip ignored: norm {norm}");
    }
}

//! Linear regression with mini-batch SGD, for continuous outcomes
//! (e.g. predicting systolic blood pressure from lifestyle features).

use crate::linalg::dot;
use crate::logistic::SgdConfig;
use medchain_data::Dataset;
use medchain_runtime::DetRng;

/// A linear regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearRegression {
    /// Zero-initialized model of dimension `dim`.
    pub fn new(dim: usize) -> LinearRegression {
        LinearRegression { weights: vec![0.0; dim], bias: 0.0 }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// The learned weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Flat parameter vector (weights ‖ bias).
    pub fn params(&self) -> Vec<f64> {
        let mut p = self.weights.clone();
        p.push(self.bias);
        p
    }

    /// Installs parameters from [`LinearRegression::params`].
    ///
    /// # Panics
    ///
    /// Panics if the length is not `dim + 1`.
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.weights.len() + 1, "parameter length mismatch");
        self.weights.copy_from_slice(&params[..params.len() - 1]);
        self.bias = params[params.len() - 1];
    }

    /// Prediction for one row.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.bias
    }

    /// Predictions for a dataset (labels interpreted as targets).
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        data.features.iter().map(|x| self.predict_one(x)).collect()
    }

    /// Trains in place with mini-batch SGD on squared error.
    ///
    /// # Panics
    ///
    /// Panics if the dataset dimension does not match the model.
    pub fn train(&mut self, data: &Dataset, config: &SgdConfig) {
        if data.is_empty() {
            return;
        }
        assert_eq!(data.dim(), self.dim(), "dataset dimension mismatch");
        let mut rng = DetRng::from_seed(config.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let batch = config.batch_size.max(1);
        for _ in 0..config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(batch) {
                let mut grad_w = vec![0.0; self.dim()];
                let mut grad_b = 0.0;
                for &i in chunk {
                    let error = self.predict_one(&data.features[i]) - data.labels[i];
                    for (g, xi) in grad_w.iter_mut().zip(&data.features[i]) {
                        *g += error * xi;
                    }
                    grad_b += error;
                }
                let scale = config.learning_rate / chunk.len() as f64;
                for (w, g) in self.weights.iter_mut().zip(&grad_w) {
                    *w -= scale * g + config.learning_rate * config.l2 * *w;
                }
                self.bias -= scale * grad_b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    fn synthetic_linear(n: usize, seed: u64) -> Dataset {
        // y = 2x1 - 3x2 + 1 + noise
        let mut rng = DetRng::from_seed(seed);
        let mut features = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x1: f64 = rng.gen_range(-1.0..1.0);
            let x2: f64 = rng.gen_range(-1.0..1.0);
            features.push(vec![x1, x2]);
            labels.push(2.0 * x1 - 3.0 * x2 + 1.0 + rng.gen_range(-0.05..0.05));
        }
        Dataset { features, labels, feature_names: vec!["x1".into(), "x2".into()] }
    }

    #[test]
    fn recovers_linear_coefficients() {
        let data = synthetic_linear(2_000, 1);
        let mut model = LinearRegression::new(2);
        model.train(
            &data,
            &SgdConfig { learning_rate: 0.1, epochs: 100, batch_size: 32, l2: 0.0, seed: 2 },
        );
        assert!((model.weights()[0] - 2.0).abs() < 0.1, "w0 = {}", model.weights()[0]);
        assert!((model.weights()[1] + 3.0).abs() < 0.1, "w1 = {}", model.weights()[1]);
        let error = rmse(&model.predict(&data), &data.labels);
        assert!(error < 0.1, "rmse {error}");
    }

    #[test]
    fn params_round_trip() {
        let data = synthetic_linear(200, 3);
        let mut model = LinearRegression::new(2);
        model.train(&data, &SgdConfig::default());
        let mut clone = LinearRegression::new(2);
        clone.set_params(&model.params());
        assert_eq!(clone, model);
    }

    #[test]
    fn empty_dataset_is_noop() {
        let mut model = LinearRegression::new(2);
        model.train(&Dataset::default(), &SgdConfig::default());
        assert_eq!(model.params(), vec![0.0; 3]);
    }
}

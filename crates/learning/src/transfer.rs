//! Transfer learning: jump-starting small-cohort models from a large
//! core dataset (paper §III-A), including the *distributed* variant the
//! paper calls for in §III-C (federated pretraining + local fine-tune).

use crate::federated::{FedAvg, FedMlp};
use crate::metrics::auc;
use crate::nn::{Mlp, MlpConfig};
use medchain_data::Dataset;

/// Pretrains a feature-extractor network on the large source dataset
/// (the ImageNet-analogue core medical dataset).
pub fn pretrain(source: &Dataset, config: &MlpConfig) -> Mlp {
    let mut net = Mlp::new(source.dim(), config);
    net.train(source, config);
    net
}

/// Pretrains *without centralizing*: FedAvg over source shards — the
/// paper's distributed transfer learning. Returns the global network.
pub fn pretrain_federated(shards: &[Dataset], local_epochs: usize, rounds: usize) -> Mlp {
    pretrain_federated_metered(
        shards,
        local_epochs,
        rounds,
        medchain_runtime::metrics::Metrics::noop(),
    )
}

/// [`pretrain_federated`] with the aggregation loop reporting
/// `learning.*` counters (rounds, uplink/downlink parameter bytes) to
/// `metrics`.
pub fn pretrain_federated_metered(
    shards: &[Dataset],
    local_epochs: usize,
    rounds: usize,
    metrics: medchain_runtime::metrics::Metrics,
) -> Mlp {
    let dim = shards.first().map_or(0, Dataset::dim);
    let mut fed = FedAvg::new(FedMlp::new(dim, local_epochs), rounds);
    fed.set_metrics(metrics);
    fed.run(shards, None);
    fed.into_global().model
}

/// Fine-tunes a pretrained network on a (small) target dataset: freeze
/// the feature layers, re-initialize and train only the output head.
pub fn fine_tune(base: &Mlp, target: &Dataset, config: &MlpConfig) -> Mlp {
    let mut net = base.clone();
    net.reinit_output(config.seed ^ 0xf1e7);
    net.freeze_feature_layers();
    net.train(target, config);
    net
}

/// One point on a transfer-learning curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Target-training-set size.
    pub n_target: usize,
    /// Held-out AUC with pretrained features.
    pub transfer_auc: f64,
    /// Held-out AUC training from scratch on the same n.
    pub scratch_auc: f64,
}

/// Sweeps target-set sizes, comparing fine-tuned-from-`base` against
/// from-scratch training — experiment E9's core loop.
pub fn learning_curve(
    base: &Mlp,
    target_train: &Dataset,
    target_test: &Dataset,
    sizes: &[usize],
    config: &MlpConfig,
) -> Vec<CurvePoint> {
    sizes
        .iter()
        .map(|&n| {
            let subset = target_train.take(n);
            let tuned = fine_tune(base, &subset, config);
            let transfer_auc = auc(&tuned.predict(target_test), &target_test.labels);
            let mut scratch = Mlp::new(subset.dim(), config);
            scratch.train(&subset, config);
            let scratch_auc = auc(&scratch.predict(target_test), &target_test.labels);
            CurvePoint { n_target: n, transfer_auc, scratch_auc }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use medchain_data::synth::{
        CohortGenerator, DiseaseModel, SiteProfile, CANCER_CODE, STROKE_CODE,
    };

    fn cohort(code: &str, n: usize, seed: u64) -> Dataset {
        let model = if code == STROKE_CODE {
            DiseaseModel::stroke()
        } else {
            DiseaseModel::cancer()
        };
        let records =
            CohortGenerator::new("s", SiteProfile::default(), seed).cohort(0, n, &model);
        Dataset::from_records(&records, code)
    }

    fn quick_config() -> MlpConfig {
        MlpConfig { hidden: vec![12], epochs: 25, ..MlpConfig::default() }
    }

    #[test]
    fn transfer_beats_scratch_on_tiny_targets() {
        // Source: large stroke cohort. Target: small cancer cohort —
        // related risk factors (age, smoking, genetics) make features
        // transferable.
        let config = quick_config();
        let source = cohort(STROKE_CODE, 4_000, 51);
        let base = pretrain(&source, &config);
        let target_train = cohort(CANCER_CODE, 2_000, 52);
        let target_test = cohort(CANCER_CODE, 1_500, 53);
        let curve = learning_curve(&base, &target_train, &target_test, &[60, 150], &config);
        let mean_gap: f64 = curve
            .iter()
            .map(|p| p.transfer_auc - p.scratch_auc)
            .sum::<f64>()
            / curve.len() as f64;
        assert!(
            mean_gap > -0.02,
            "transfer should not hurt at small n: curve {curve:?}"
        );
        // And transfer at tiny n should be meaningfully above chance.
        assert!(curve[0].transfer_auc > 0.6, "curve {curve:?}");
    }

    #[test]
    fn gap_narrows_with_more_target_data() {
        let config = quick_config();
        let source = cohort(STROKE_CODE, 3_000, 61);
        let base = pretrain(&source, &config);
        let target_train = cohort(CANCER_CODE, 3_000, 62);
        let target_test = cohort(CANCER_CODE, 1_200, 63);
        let curve =
            learning_curve(&base, &target_train, &target_test, &[80, 2_500], &config);
        let small_gap = curve[0].transfer_auc - curve[0].scratch_auc;
        let large_gap = curve[1].transfer_auc - curve[1].scratch_auc;
        assert!(
            large_gap < small_gap + 0.05,
            "advantage should shrink: small {small_gap}, large {large_gap}"
        );
    }

    #[test]
    fn fine_tune_does_not_touch_feature_layers() {
        let config = quick_config();
        let source = cohort(STROKE_CODE, 800, 71);
        let base = pretrain(&source, &config);
        let target = cohort(CANCER_CODE, 200, 72);
        let tuned = fine_tune(&base, &target, &config);
        let head = 12 + 1; // output layer of hidden width 12
        let base_params = base.params();
        let tuned_params = tuned.params();
        let split = base_params.len() - head;
        assert_eq!(&base_params[..split], &tuned_params[..split]);
    }

    #[test]
    fn federated_pretraining_produces_usable_features() {
        let config = quick_config();
        let shards: Vec<Dataset> =
            (0..3).map(|i| cohort(STROKE_CODE, 700, 580 + i)).collect();
        let base = pretrain_federated(&shards, 4, 6);
        let target_train = cohort(CANCER_CODE, 400, 90);
        let target_test = cohort(CANCER_CODE, 1_000, 91);
        let tuned = fine_tune(&base, &target_train.take(150), &config);
        let score = auc(&tuned.predict(&target_test), &target_test.labels);
        assert!(score > 0.55, "federated-pretrained transfer AUC {score}");
    }
}

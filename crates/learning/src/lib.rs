//! # medchain-learning — distributed analytics and learning
//!
//! From-scratch machine learning for the paper's §III-C: logistic and
//! linear regression, a small MLP with backpropagation, evaluation
//! metrics, synchronous FedAvg federated learning with communication
//! accounting, transfer learning (including the paper's proposed
//! *distributed* transfer learning), and exactly-decomposable aggregate
//! analytics for the move-compute-to-data pipeline.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod decompose;
pub mod federated;
pub mod linalg;
pub mod linear;
pub mod logistic;
pub mod metrics;
pub mod nn;
pub mod transfer;

pub use decompose::{Aggregate, AggregateValue, Partial};
pub use federated::{
    centralized_baseline, local_only_baseline, DpConfig, FedAvg, FedLogistic, FedMlp, FedReport,
    LocalLearner,
};
pub use logistic::{LogisticRegression, SgdConfig};
pub use metrics::{accuracy, auc, log_loss, rmse, Confusion};
pub use nn::{Mlp, MlpConfig};
pub use transfer::{
    fine_tune, learning_curve, pretrain, pretrain_federated, pretrain_federated_metered,
    CurvePoint,
};

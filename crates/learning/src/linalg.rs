//! Small dense linear-algebra helpers used by the learners.

/// Dot product.
///
/// # Panics
///
/// Panics if lengths differ (debug builds assert; release relies on zip
/// semantics, so mismatches silently truncate — hence the debug assert).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha · x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales a vector in place.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm.
pub fn norm(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Weighted average of parameter vectors: `Σ wᵢ·xᵢ / Σ wᵢ`.
///
/// The FedAvg aggregation step.
///
/// # Panics
///
/// Panics if the vectors differ in length or `weights` is empty or sums
/// to zero.
pub fn weighted_average(vectors: &[Vec<f64>], weights: &[f64]) -> Vec<f64> {
    assert_eq!(vectors.len(), weights.len(), "one weight per vector");
    assert!(!vectors.is_empty(), "cannot average nothing");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let dim = vectors[0].len();
    let mut out = vec![0.0; dim];
    for (vector, weight) in vectors.iter().zip(weights) {
        assert_eq!(vector.len(), dim, "parameter dimension mismatch");
        axpy(weight / total, vector, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(-745.0).is_finite());
    }

    #[test]
    fn weighted_average_weights_matter() {
        let avg = weighted_average(&[vec![0.0, 0.0], vec![10.0, 20.0]], &[3.0, 1.0]);
        assert!((avg[0] - 2.5).abs() < 1e-12);
        assert!((avg[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_average_of_identical_is_identity() {
        let avg = weighted_average(&[vec![1.5, -2.0], vec![1.5, -2.0]], &[5.0, 7.0]);
        assert!((avg[0] - 1.5).abs() < 1e-12);
        assert!((avg[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one weight per vector")]
    fn weighted_average_checks_lengths() {
        weighted_average(&[vec![1.0]], &[1.0, 2.0]);
    }
}

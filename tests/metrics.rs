//! Metrics-spine integration tests: every layer of the stack reports
//! into one [`MetricsSink`], and tests assert on sink values instead of
//! parsing printed output.
//!
//! Covered here: (1) the simulator and the TCP transport report the
//! *identical* `transport.bytes` counter for the same seed and workload
//! (the sink-level restatement of the byte-parity invariant in
//! `tests/transport.rs`), and (2) an end-to-end [`MedicalNetwork`] run
//! populates consensus, chain, mempool, and transport counters and the
//! TSV export carries them. (Mempool-level sink tests live with the
//! mempool itself in `crates/chain/src/mempool.rs`.)

use medchain_chain::consensus::poa::{PoaEngine, PoaMsg};
use medchain_chain::consensus::Cluster;
use medchain_chain::net::{SimTransport, TcpTransport, Transport};
use medchain_chain::node::ChainApp;
use medchain_chain::sig::AuthorityKey;
use medchain_chain::tx::TxPayload;
use medchain_chain::Transaction;
use medchain_runtime::metrics::{Metrics, Registry};

const INTERVAL_MS: u64 = 100;

/// PoA cluster over `net` with a pre-submitted transfer workload and
/// `metrics` installed on the cluster and replica 0's app (the same
/// replica-0 convention `MedicalNetwork` uses).
fn metered_poa_cluster<T: Transport<PoaMsg>>(
    net: T,
    txs_per_key: u64,
    metrics: Metrics,
) -> Cluster<PoaEngine, ChainApp, T> {
    let n = net.node_count();
    let (engines, registry, _) = PoaEngine::make_validators(n, INTERVAL_MS);
    let keys: Vec<AuthorityKey> = (0..n).map(|i| AuthorityKey::from_seed(i as u64)).collect();
    let mut apps: Vec<ChainApp> = (0..n)
        .map(|i| {
            let mut app = ChainApp::new("metrics-test", registry.clone());
            app.set_timestamp_quantum_ms(INTERVAL_MS);
            app.set_max_block_txs(3);
            if i == 0 {
                app.set_metrics(metrics.clone());
            }
            app
        })
        .collect();
    for key in &keys {
        for app in apps.iter_mut() {
            app.ledger_mut().state_mut().credit(key.address(), 1_000_000);
        }
    }
    for (i, key) in keys.iter().enumerate() {
        for nonce in 0..txs_per_key {
            let tx = Transaction::new(
                key.address(),
                nonce,
                TxPayload::Transfer { to: keys[(i + 1) % n].address(), amount: 1 },
                1_000,
            )
            .signed(key);
            for app in apps.iter_mut() {
                app.submit(tx.clone());
            }
        }
    }
    let mut cluster = Cluster::with_transport(engines, apps, net);
    cluster.set_metrics(metrics);
    cluster
}

#[test]
fn sim_and_tcp_transport_byte_counters_agree() {
    const HEIGHT: u64 = 4;

    let sim_registry = Registry::default();
    let mut sim_net = SimTransport::new(4, 7);
    sim_net.set_metrics(sim_registry.handle());
    let mut sim = metered_poa_cluster(sim_net, 6, sim_registry.handle());
    assert!(sim.run_until_height(HEIGHT, 3_600_000).reached, "sim cluster stalled");

    let tcp_registry = Registry::default();
    let mut tcp_net = TcpTransport::bind(4).expect("loopback bind");
    tcp_net.set_metrics(tcp_registry.handle());
    let mut tcp = metered_poa_cluster(tcp_net, 6, tcp_registry.handle());
    let budget = tcp.net.now_ms() + 60_000;
    assert!(tcp.run_until_height(HEIGHT, budget).reached, "tcp cluster stalled");

    // The sink-level byte counters must match each other and the
    // transports' own NetStats meters exactly.
    let sim_bytes = sim_registry.counter_value("transport.bytes");
    let tcp_bytes = tcp_registry.counter_value("transport.bytes");
    assert!(sim_bytes > 0, "sim reported no bytes");
    assert_eq!(sim_bytes, tcp_bytes, "sink byte counters diverged across transports");
    assert_eq!(sim_bytes, sim.net.stats().bytes, "sim sink disagrees with NetStats");
    assert_eq!(tcp_bytes, tcp.net.stats().bytes, "tcp sink disagrees with NetStats");
    assert_eq!(
        sim_registry.counter_value("transport.sent"),
        tcp_registry.counter_value("transport.sent"),
        "message multiset differs"
    );
    // Both clusters committed at least the target rounds (final tips
    // may run a block or two ahead depending on transport timing).
    assert!(sim_registry.counter_value("consensus.rounds") >= HEIGHT);
    assert!(tcp_registry.counter_value("consensus.rounds") >= HEIGHT);
    tcp.shutdown();
}

#[test]
fn medical_network_populates_the_sink_end_to_end() {
    use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile};

    let registry = Registry::default();
    let mut builder = medchain::MedicalNetwork::builder().metrics(registry.handle());
    for i in 0..3 {
        let records = CohortGenerator::new(&format!("h{i}"), SiteProfile::default(), i as u64)
            .cohort((i * 100) as u64, 3, &DiseaseModel::stroke());
        builder = builder.site(&format!("hospital-{i}"), records);
    }
    let net = builder.build().expect("consortium builds");
    assert!(net.height() > 0, "contract deployment must commit blocks");

    // Every layer reported: consensus, chain app, mempool, transport.
    assert!(registry.counter_value("consensus.rounds") > 0);
    assert!(registry.counter_value("consensus.signatures") > 0);
    assert!(registry.counter_value("chain.blocks_committed") > 0);
    assert!(registry.counter_value("mempool.inserted") > 0);
    assert!(registry.counter_value("transport.sent") > 0);
    assert!(registry.counter_value("transport.bytes") > 0);
    // Replica-0 convention: blocks committed equals the chain height
    // seen by the network, not n× it.
    assert_eq!(registry.counter_value("chain.blocks_committed"), net.height());

    // The TSV export carries the same counters for scripts to grep.
    let tsv = registry.to_tsv();
    for key in ["consensus.rounds", "mempool.inserted", "transport.bytes"] {
        assert!(
            tsv.lines().any(|l| l.starts_with(&format!("counter\t{key}\t"))),
            "TSV missing {key}:\n{tsv}"
        );
    }
}

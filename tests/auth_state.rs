//! Authenticated-world-state tests (DESIGN.md §13): the sparse-Merkle
//! commitment, its incremental maintenance, the proof surface, and the
//! light-client query path end to end over a sharded TCP gateway.
//!
//! Covered: (1) seeded property — incremental root maintenance over
//! random delta sequences (credits, storage writes *and deletes*, code,
//! anchors, lock set/clear, coordinator records) always lands on the
//! full-rehash root; (2) tampering any byte of a serialized proof makes
//! it fail; (3) absence proofs for never-written and written-then-
//! deleted keys; (4) the pinned micro-bench — maintaining the root for
//! a 100-write block must cost ≤ 0.1× a full rehash at 20k accounts;
//! (5) sharded E2E — prove a record on its home sub-chain and its
//! absence on the other one, each against an independently read
//! committed header root.

use medchain::{Client, GatewayConfig, MedicalNetwork};
use medchain_chain::auth::key_hash;
use medchain_chain::ledger::{CrossLinkRecord, WorldState, XsDecisionRecord, XsLock};
use medchain_chain::shard::{shard_for_key, ShardId};
use medchain_chain::{
    Address, Hash256, LeafKey, SmtProof, StateAccess, StateTree, Transaction, TxPayload,
    WorldStateOverlay,
};
use medchain_runtime::check::{check, CheckConfig, Gen};
use medchain_runtime::codec::{Decode, Encode};
use medchain_runtime::{ensure, ensure_eq};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const COMMIT_TIMEOUT: Duration = Duration::from_secs(30);

fn small_address(g: &mut Gen) -> Address {
    // A small pool so rounds revisit (and overwrite/delete) keys.
    Address::from_seed(g.u64() % 24)
}

/// One random mutation batch against `state`, returned as the delta the
/// ledger would commit.
fn random_delta(g: &mut Gen, state: &WorldState) -> medchain_chain::StateDelta {
    let mut overlay = WorldStateOverlay::new(state);
    for _ in 0..g.usize_in(1, 12) {
        match g.u64() % 8 {
            0 => overlay.credit(small_address(g), g.u64() % 1_000),
            1 => {
                // Empty value = delete; hits the tombstone path whether
                // or not the slot exists.
                let value = if g.bool() { g.bytes(1, 16) } else { Vec::new() };
                overlay.set_storage(small_address(g), g.bytes(1, 8), value);
            }
            2 => overlay.set_code(small_address(g), g.bytes(1, 24)),
            3 => {
                let label = format!("trial/{}", g.u64() % 16);
                overlay.set_anchor(&label, Hash256::digest(&g.bytes(0, 12)));
            }
            4 => overlay.set_lock(
                small_address(g),
                XsLock {
                    xid: Hash256::digest(&g.bytes(0, 8)),
                    amount: g.u64() % 500,
                    debit: g.bool(),
                    deadline_ms: g.u64() % 10_000,
                },
            ),
            5 => overlay.clear_lock(&small_address(g)),
            6 => overlay.set_cross_link(
                ShardId((g.u64() % 4) as u16),
                CrossLinkRecord { height: g.u64() % 100, tip: Hash256::digest(&g.bytes(0, 8)) },
            ),
            _ => overlay.set_xs_decision(
                Hash256::digest(&g.bytes(0, 8)),
                XsDecisionRecord { commit: g.bool(), tx_id: Hash256::digest(&g.bytes(0, 8)) },
            ),
        }
    }
    overlay.into_delta()
}

#[test]
fn incremental_root_tracks_full_rehash_over_random_deltas() {
    check(
        "incremental root tracks full rehash",
        CheckConfig::cases(24),
        |g| {
            let mut state = WorldState::new();
            let mut tree = StateTree::from_state(&state);
            for round in 0..g.usize_in(2, 6) {
                let delta = random_delta(g, &state);
                tree = tree.with_delta(&delta);
                delta.apply_to(&mut state);
                ensure_eq!(
                    tree.versioned_root(),
                    StateTree::from_state(&state).versioned_root()
                );
                ensure_eq!(tree.len(), state.leaf_count());
                ensure!(tree.audit(), "tree failed its structural audit at round {round}");
            }
            Ok(())
        },
    );
}

#[test]
fn tampering_any_proof_byte_breaks_verification() {
    check("tampered proofs fail", CheckConfig::cases(12), |g| {
        let mut state = WorldState::new();
        for i in 0..g.usize_in(4, 32) {
            state.credit(Address::from_seed(i as u64), 1 + i as u64);
        }
        let tree = StateTree::from_state(&state);
        let root = tree.versioned_root();
        let key = LeafKey::Account(Address::from_seed(0));
        let value = state.leaf_value(&key).expect("funded account present");
        let proof = tree.prove(&key);
        ensure!(proof.verify(&key, Some(&value), &root), "honest proof must verify");

        let encoded = proof.encoded();
        for i in 0..encoded.len() {
            let mut tampered = encoded.clone();
            tampered[i] ^= 1 << (g.u64() % 8) as u8;
            // A flipped byte must break decoding or verification — it
            // can never yield a second valid proof for the same claim.
            if let Ok(bad) = SmtProof::decoded(&tampered) {
                ensure!(
                    !bad.verify(&key, Some(&value), &root),
                    "byte {i} tampered yet the proof still verified"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn absence_proofs_cover_never_written_and_deleted_keys() {
    let contract = Address::from_seed(7);
    let mut state = WorldState::new();
    state.credit(Address::from_seed(1), 10);
    state.set_storage(contract, b"genome/brca1".to_vec(), b"variant".to_vec());
    let tree = StateTree::from_state(&state);
    let root = tree.versioned_root();

    // Never written: both a key type that exists elsewhere and one that
    // does not exist at all in this state.
    for key in [
        LeafKey::Account(Address::from_seed(999)),
        LeafKey::Anchor("never/written".into()),
    ] {
        let proof = tree.prove(&key);
        assert!(proof.verify(&key, None, &root), "absence of {key:?} must verify");
        assert!(!proof.verify(&key, Some(b"x"), &root), "absence proof must not claim a value");
    }

    // Written then deleted: the inclusion proof verifies before, the
    // absence proof after, and neither crosses over.
    let key = LeafKey::Storage(contract, b"genome/brca1".to_vec());
    let inclusion = tree.prove(&key);
    assert!(inclusion.verify(&key, Some(b"variant"), &root));

    let mut overlay = WorldStateOverlay::new(&state);
    overlay.set_storage(contract, b"genome/brca1".to_vec(), Vec::new());
    let delta = overlay.into_delta();
    let after = tree.with_delta(&delta);
    delta.apply_to(&mut state);
    let root_after = after.versioned_root();
    assert_eq!(root_after, StateTree::from_state(&state).versioned_root());

    let absence = after.prove(&key);
    assert!(absence.verify(&key, None, &root_after), "deleted key needs an absence proof");
    assert!(!absence.verify(&key, Some(b"variant"), &root_after));
    assert!(!inclusion.verify(&key, Some(b"variant"), &root_after), "stale proof must die");
}

/// The acceptance pin: maintaining the root for one 100-write block
/// must cost at most 0.1× of rehashing the whole state, at a 20k
/// account population (comfortably above the crossover even in debug
/// builds; release is orders of magnitude apart).
#[test]
fn root_maintenance_is_at_most_a_tenth_of_full_rehash() {
    let accounts = 20_000u64;
    let writes = 100u64;
    let mut state = WorldState::new();
    for i in 0..accounts {
        state.credit(Address::from_seed(i), 1 + i);
    }

    let started = Instant::now();
    let tree = StateTree::from_state(&state);
    let full = started.elapsed();

    let mut overlay = WorldStateOverlay::new(&state);
    for i in 0..writes {
        overlay.credit(Address::from_seed((i * (accounts / writes)) % accounts), 3);
    }
    let delta = overlay.into_delta();

    let started = Instant::now();
    let updated = tree.with_delta(&delta);
    let incremental = started.elapsed();

    delta.apply_to(&mut state);
    assert_eq!(updated.versioned_root(), StateTree::from_state(&state).versioned_root());
    assert!(
        incremental.as_secs_f64() <= full.as_secs_f64() * 0.1,
        "incremental {incremental:?} exceeded 0.1x of full rehash {full:?}"
    );
}

#[test]
fn sharded_gateway_proves_presence_home_and_absence_away() {
    let shards = 2u16;
    let mut builder = MedicalNetwork::builder()
        .block_interval_ms(20)
        .shards(shards)
        .gateway(GatewayConfig { clients: 1, ..GatewayConfig::default() });
    for i in 0..4 {
        builder = builder.site(&format!("hospital-{i}"), Vec::new());
    }
    let mut net = builder.build_sharded().expect("sharded gateway network builds");
    let addr = net.gateway_addr().expect("gateway listening");
    let keys = net.client_keys().to_vec();

    // One anchor per sub-chain, so both tips carry a real (non-genesis)
    // state commitment before any proof is requested.
    let mut labels: Vec<String> = Vec::new();
    let mut covered = [false; 2];
    for i in 0u32.. {
        let label = format!("registry/{i}");
        let shard = shard_for_key(label.as_bytes(), shards);
        if !covered[shard.0 as usize] {
            covered[shard.0 as usize] = true;
            labels.push(label);
        }
        if covered.iter().all(|&c| c) {
            break;
        }
    }

    let stop = AtomicBool::new(false);
    let proofs = std::thread::scope(|scope| {
        let client_side = scope.spawn(|| {
            let key = &keys[0];
            let mut client = Client::connect(addr).expect("connects");
            // Nonces are per sub-chain and the labels route one to
            // each, so every anchor is nonce 0 on its own chain.
            for label in &labels {
                let payload = TxPayload::Anchor {
                    root: Hash256::digest(label.as_bytes()),
                    label: label.clone(),
                };
                let tx = Transaction::new(key.address(), 0, payload, 1_000).signed(key);
                let pending = client.submit(&tx, false).expect("accepted");
                client.wait_receipt(&pending, COMMIT_TIMEOUT).expect("commits");
            }

            let mut proofs = Vec::new();
            for label in &labels {
                let leaf = LeafKey::Anchor(label.clone());
                let home = leaf.home_shard(shards);
                let away = ShardId(1 - home.0);

                // Home shard, routed automatically: inclusion.
                let proof = client.query_proven(&leaf).expect("home proof served");
                assert_eq!(proof.shard, home, "gateway must route to the home shard");
                assert_eq!(
                    proof.value.as_deref(),
                    Some(Hash256::digest(label.as_bytes()).0.as_slice()),
                    "anchor value must round-trip"
                );
                proofs.push(proof);

                // Pinned to the other shard: a verifiable absence.
                let proof =
                    client.query_proven_on(&leaf, Some(away)).expect("away proof served");
                assert_eq!(proof.shard, away);
                assert!(proof.value.is_none(), "the record must be absent on the other shard");
                proofs.push(proof);

                // A corrupted query answer is rejected client-side: ask
                // for a key the shard holds but claim a different key.
                let bogus = LeafKey::Anchor(format!("{label}/forged"));
                let err = client.query_proven_on(&bogus, Some(home));
                let proof = err.expect("absence of the forged label is still provable");
                assert!(proof.value.is_none());
                assert_eq!(key_hash(&bogus), key_hash(&proof.key));
            }
            stop.store(true, Ordering::Relaxed);
            proofs
        });
        net.serve_until(&stop).expect("serving succeeds");
        client_side.join().expect("client thread")
    });

    // Trustless re-check: every proof folds to the state root of the
    // committed block it names, read straight off the sub-chain ledger
    // the gateway never controls.
    for proof in &proofs {
        let header = &net
            .ledger_of_shard(proof.shard)
            .block(proof.height)
            .expect("block retained")
            .header;
        assert_eq!(header.state_root, proof.state_root);
        assert!(
            proof.verify_against(&header.state_root),
            "proof must verify against the independently read root"
        );
    }
    net.shutdown();
}

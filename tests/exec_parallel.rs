//! Parallel execution engine, end to end (DESIGN.md §11): the wave
//! scheduler must commit byte-identical state to sequential apply on
//! realistic mixed blocks, and the overlay commit path must not regress
//! to the old clone-the-world cost at 10k-tx block sizes.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use medchain_chain::exec::StateAccess;
use medchain_chain::ledger::{contract_address, Ledger};
use medchain_chain::shard::ShardId;
use medchain_chain::sig::AuthorityKey;
use medchain_chain::{
    Address, Hash256, KeyRegistry, Receipt, Transaction, TxPayload, WorldState, WorldStateOverlay,
    XsLeg,
};
use medchain_contracts::asm::assemble;
use medchain_contracts::opcode::encode_program;
use medchain_contracts::{encode_args, Runtime, Value};
use medchain_runtime::check::{check, CheckConfig, Gen};
use medchain_runtime::{ensure, ensure_eq};

const SENDERS: u64 = 16;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn keys() -> Vec<AuthorityKey> {
    (1..=SENDERS).map(AuthorityKey::from_seed).collect()
}

/// Adder bytecode: no `callc`, so `code_scope` classifies it
/// self-contained and invokes schedule against the contract's own slice.
fn adder_code() -> Vec<u8> {
    encode_program(&assemble("arg 0\narg 1\nadd\nhalt").unwrap())
}

/// Caller bytecode: contains `callc`, so invokes are scheduled as
/// global (may escape to the callee's slice).
fn caller_code(target: &Address) -> Vec<u8> {
    let input = encode_args(&[Value::Int(20), Value::Int(22)]);
    let src = format!("pushb 0x{}\npushb 0x{}\ncallc\nhalt", hex(&target.0), hex(&input));
    encode_program(&assemble(&src).unwrap())
}

/// A fresh flat ledger with the standard contract runtime, all senders
/// funded, and a setup block deploying the adder and the caller.
fn fresh_ledger() -> (Ledger, Address, Address) {
    let keys = keys();
    let mut registry = KeyRegistry::new();
    for key in &keys {
        registry.enroll(key);
    }
    let mut ledger = Ledger::new("exec-parallel", registry, Box::new(Runtime::standard()));
    for key in &keys {
        ledger.state_mut().credit(key.address(), 1_000_000);
    }
    let adder = contract_address(&keys[0].address(), 0);
    let caller = contract_address(&keys[1].address(), 0);
    let setup = vec![
        Transaction::new(
            keys[0].address(),
            0,
            TxPayload::Deploy { code: adder_code(), init: Vec::new() },
            100_000,
        )
        .signed(&keys[0]),
        Transaction::new(
            keys[1].address(),
            0,
            TxPayload::Deploy { code: caller_code(&adder), init: Vec::new() },
            100_000,
        )
        .signed(&keys[1]),
    ];
    let block = ledger.propose(keys[0].address(), 5, setup);
    ledger.apply(&block).expect("setup block applies");
    (ledger, adder, caller)
}

/// One random transaction mixing every scheduling class: disjoint and
/// hot-key transfers (per-account sets), anchors (label sets),
/// self-contained invokes, global deploys/caller-invokes, a
/// deterministic failure against a missing contract, and 2PC
/// prepare/decide/finalize legs (lock contention on a small account
/// pool, so prepares and finalizes genuinely conflict within a block).
fn random_tx(g: &mut Gen, i: usize, nonces: &mut HashMap<Address, u64>, adder: &Address, caller: &Address) -> Transaction {
    let keys = keys();
    let key = &keys[g.usize_in(0, keys.len())];
    let sender = key.address();
    let nonce = *nonces.get(&sender).unwrap_or(&0);
    nonces.insert(sender, nonce + 1);
    // Small pools: repeated xids/accounts make lock hand-offs happen.
    let xs_xid = Hash256::digest(&[g.usize_in(0, 3) as u8]);
    let xs_account = Address::from_seed(3_000_000 + g.usize_in(0, 3) as u64);
    let payload = match g.usize_in(0, 13) {
        0..=3 => TxPayload::Transfer {
            to: Address::from_seed(2_000_000 + i as u64),
            amount: 1 + g.usize_in(0, 50) as u64,
        },
        4 | 5 => TxPayload::Transfer { to: Address::from_seed(777), amount: 1 },
        6 => TxPayload::Anchor {
            root: Hash256::digest(&g.bytes(1, 16)),
            label: format!("site-{}", g.usize_in(0, 3)),
        },
        7 => TxPayload::Invoke {
            contract: *adder,
            input: encode_args(&[
                Value::Int(g.usize_in(0, 100) as i64),
                Value::Int(g.usize_in(0, 100) as i64),
            ]),
        },
        8 => {
            if g.bool() {
                TxPayload::Invoke { contract: *caller, input: Vec::new() }
            } else {
                TxPayload::Deploy { code: adder_code(), init: Vec::new() }
            }
        }
        9 => TxPayload::Invoke {
            contract: Address::from_seed(0xDEAD),
            input: Vec::new(),
        },
        10 | 11 => TxPayload::XsPrepare {
            xid: xs_xid,
            leg: XsLeg {
                shard: ShardId::default(),
                account: xs_account,
                amount: g.usize_in(0, 20) as u64,
                debit: g.bool(),
            },
            deadline_ms: g.usize_in(0, 1_000) as u64,
        },
        // Decides fail deterministically off the coordinator chain —
        // the failure arm must still schedule identically.
        12 => TxPayload::XsDecide { xid: xs_xid, commit: g.bool() },
        _ => TxPayload::XsFinalize { xid: xs_xid, account: xs_account, commit: g.bool() },
    };
    Transaction::new(sender, nonce, payload, 100_000).signed(key)
}

/// Hard invariant (ISSUE 7): on random 1k-tx mixed blocks, the parallel
/// schedule at 1/2/4/8 worker threads commits byte-identical receipts,
/// state roots, and tips to the sequential proposer.
#[test]
fn parallel_apply_matches_sequential_on_random_mixed_blocks() {
    check("parallel apply ≡ sequential apply", CheckConfig::cases(3), |g| {
        let (seq_ledger, adder, caller) = fresh_ledger();
        let mut nonces: HashMap<Address, u64> = HashMap::new();
        for key in keys().iter().take(2) {
            nonces.insert(key.address(), 1); // setup deploys consumed nonce 0
        }
        let txs: Vec<Transaction> = (0..1_000)
            .map(|i| random_tx(g, i, &mut nonces, &adder, &caller))
            .collect();
        let block = seq_ledger.propose(keys()[0].address(), 10, txs);
        ensure!(!block.transactions.is_empty(), "block empty");

        let mut reference: Option<(Vec<Receipt>, Hash256)> = None;
        for threads in [1usize, 2, 4, 8] {
            let (mut ledger, _, _) = fresh_ledger();
            ledger.set_parallel_exec(threads);
            let receipts = ledger
                .apply(&block)
                .map_err(|e| format!("apply at {threads} threads: {e:?}"))?;
            // `apply` itself enforces root equality against the header,
            // but re-check explicitly: this is the PR's hard invariant.
            ensure!(
                ledger.state().state_root() == block.header.state_root,
                "state root diverged at {threads} threads"
            );
            ensure_eq!(ledger.tip().header.height, block.header.height);
            match &reference {
                None => reference = Some((receipts, ledger.state().state_root())),
                Some((ref_receipts, ref_root)) => {
                    ensure!(
                        &receipts == ref_receipts,
                        "receipts diverged at {threads} threads"
                    );
                    ensure!(
                        ledger.state().state_root() == *ref_root,
                        "roots diverged at {threads} threads"
                    );
                }
            }
        }
        Ok(())
    });
}

/// Satellite 2 pin: committing a 10k-write block through the overlay
/// (`StateDelta` + `state_root_with`) must stay within 1.5× of the old
/// clone-the-world baseline on a 20k-account state — i.e. `Ledger::apply`
/// never regresses to re-cloning the full `WorldState` per block.
#[test]
fn overlay_commit_beats_full_state_clone_at_10k_tx() {
    let mut state = WorldState::new();
    for i in 0..20_000u64 {
        state.credit(Address::from_seed(i), 10);
    }
    let contract = Address::from_seed(9_999_999);
    state.set_code(contract, b"pin".to_vec());
    let ops: Vec<(Vec<u8>, Vec<u8>)> = (0..10_000u32)
        .map(|i| (i.to_le_bytes().to_vec(), vec![i as u8; 8]))
        .collect();

    let mut incremental = Duration::MAX;
    let mut baseline = Duration::MAX;
    for _ in 0..3 {
        let started = Instant::now();
        let mut overlay = WorldStateOverlay::new(&state);
        for (key, value) in &ops {
            overlay.set_storage(contract, key.clone(), value.clone());
        }
        let delta = overlay.into_delta();
        let incremental_root = state.state_root_with(&delta);
        incremental = incremental.min(started.elapsed());

        let started = Instant::now();
        let mut cloned = state.clone();
        for (key, value) in &ops {
            cloned.set_storage(contract, key.clone(), value.clone());
        }
        let baseline_root = cloned.state_root();
        baseline = baseline.min(started.elapsed());

        assert_eq!(incremental_root, baseline_root, "overlay commit diverged");
    }
    assert!(
        incremental <= baseline.mul_f64(1.5),
        "overlay commit regressed: incremental {incremental:?} vs clone baseline {baseline:?}"
    );
}

//! Cross-crate integration tests: the full architecture exercised end
//! to end, spanning chain, contracts, off-chain control, data, query,
//! learning, and trial layers.

use medchain::pipeline::{run_query, train_federated};
use medchain::MedicalNetwork;
use medchain_chain::Hash256;
use medchain_contracts::policy::Purpose;
use medchain_contracts::value::Value;
use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile, STROKE_CODE};
use medchain_data::{Dataset, PatientRecord};
use medchain_learning::AggregateValue;
use medchain_offchain::{verify_against_chain, IntegrityVerdict};
use medchain_query::{parse_request, QueryAnswer};

fn site_records(i: usize, n: usize) -> Vec<PatientRecord> {
    CohortGenerator::new(&format!("hospital-{i}"), SiteProfile::varied(i), 1_000 + i as u64)
        .cohort((i * 1_000_000) as u64, n, &DiseaseModel::stroke())
}

fn build_network(sites: usize, per_site: usize) -> MedicalNetwork {
    let mut builder = MedicalNetwork::builder().seed(2026);
    for i in 0..sites {
        builder = builder.site(&format!("hospital-{i}"), site_records(i, per_site));
    }
    builder.build().expect("network builds")
}

#[test]
fn nl_query_through_full_stack_matches_ground_truth() {
    let mut net = build_network(4, 200);
    let researcher = net.site(3).address();
    net.grant_all(researcher, Purpose::Research).unwrap();

    let query = parse_request("count diabetic patients over 50").unwrap();
    let (answer, report) = run_query(&mut net, 3, &query).unwrap();
    assert_eq!(report.permitted, 4);

    // Ground truth over the union of all site data.
    let expected = (0..4)
        .flat_map(|i| site_records(i, 200))
        .filter(|r| query.cohort.matches(r))
        .count() as f64;
    match answer {
        QueryAnswer::Aggregates(values) => match &values[0] {
            AggregateValue::Scalar(count) => assert_eq!(*count, expected),
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn policy_revocation_takes_effect_on_chain() {
    let mut net = build_network(2, 50);
    let researcher = net.site(1).address();
    net.grant_all(researcher, Purpose::Research).unwrap();
    let data = net.contracts().data;

    // Permitted while granted.
    let id = net
        .invoke_as(
            1,
            data,
            "request",
            &[Value::str("hospital-0/emr"), Value::Int(Purpose::Research.code())],
            50_000,
        )
        .unwrap();
    let receipt = net.commit_and_check(id).unwrap();
    let permit = medchain_contracts::decode_args(&receipt.output).unwrap()[0]
        .as_int()
        .unwrap();
    assert_eq!(permit, 1);

    // Owner revokes; next request is denied and auditable.
    let id = net
        .invoke_as(
            0,
            data,
            "revoke",
            &[Value::str("hospital-0/emr"), Value::address(&researcher)],
            50_000,
        )
        .unwrap();
    net.commit_and_check(id).unwrap();
    let id = net
        .invoke_as(
            1,
            data,
            "request",
            &[Value::str("hospital-0/emr"), Value::Int(Purpose::Research.code())],
            50_000,
        )
        .unwrap();
    let receipt = net.commit_and_check(id).unwrap();
    let permit = medchain_contracts::decode_args(&receipt.output).unwrap()[0]
        .as_int()
        .unwrap();
    assert_eq!(permit, 0);
    assert_eq!(receipt.events[0].topic, "DataDenied");
}

#[test]
fn dataset_anchors_detect_off_chain_tampering() {
    let net = build_network(2, 80);
    let records = site_records(0, 80);
    // Honest presentation verifies against the on-chain anchor.
    let verdict = verify_against_chain(
        net.ledger().state(),
        "hospital-0/emr",
        records.iter().map(PatientRecord::canonical_bytes),
    );
    assert_eq!(verdict, IntegrityVerdict::Intact);

    // One rewritten outcome is detected.
    let mut tampered: Vec<Vec<u8>> =
        records.iter().map(PatientRecord::canonical_bytes).collect();
    tampered[17] = b"rewritten-record".to_vec();
    let verdict = verify_against_chain(net.ledger().state(), "hospital-0/emr", tampered);
    assert!(matches!(verdict, IntegrityVerdict::Tampered { .. }));
}

#[test]
fn federated_training_improves_and_anchors_every_round() {
    let mut net = build_network(3, 300);
    let eval_records = CohortGenerator::new("eval", SiteProfile::default(), 4_242).cohort(
        50_000_000,
        1_200,
        &DiseaseModel::stroke(),
    );
    let eval = Dataset::from_records(&eval_records, STROKE_CODE);
    let report = train_federated(&mut net, 0, STROKE_CODE, 5, Some(&eval)).unwrap();
    let first = report.rounds.first().unwrap().eval_auc.unwrap();
    let last = report.rounds.last().unwrap().eval_auc.unwrap();
    assert!(last >= first - 0.02, "AUC fell: {first} → {last}");
    assert!(last > 0.6, "final AUC {last}");
    for round in &report.rounds {
        let label = format!("fedavg/{STROKE_CODE}/round-{}", round.round);
        assert_eq!(net.ledger().state().anchor(&label), Some(round.params_hash));
    }
}

#[test]
fn trial_lifecycle_on_chain() {
    let mut net = build_network(2, 50);
    let trial = net.contracts().trial;
    let id = net
        .invoke_as(
            0,
            trial,
            "register",
            &[
                Value::str("NCT-INT-1"),
                Value::Bytes(Hash256::digest(b"protocol").0.to_vec()),
                Value::str("mortality"),
            ],
            50_000,
        )
        .unwrap();
    net.commit_and_check(id).unwrap();

    for k in 0..4u8 {
        let id = net
            .invoke_as(
                0,
                trial,
                "enroll",
                &[Value::str("NCT-INT-1"), Value::Bytes(vec![k])],
                50_000,
            )
            .unwrap();
        net.commit_and_check(id).unwrap();
    }
    // Honest + switched outcome.
    for outcome in ["mortality", "surrogate-endpoint"] {
        let id = net
            .invoke_as(
                1,
                trial,
                "report_outcome",
                &[
                    Value::str("NCT-INT-1"),
                    Value::str(outcome),
                    Value::Bytes(Hash256::digest(outcome.as_bytes()).0.to_vec()),
                ],
                50_000,
            )
            .unwrap();
        net.commit_and_check(id).unwrap();
    }
    let id = net
        .invoke_as(0, trial, "audit", &[Value::str("NCT-INT-1")], 50_000)
        .unwrap();
    let receipt = net.commit_and_check(id).unwrap();
    let audit = medchain_contracts::decode_args(&receipt.output).unwrap();
    assert_eq!(audit[0], Value::Int(2));
    assert_eq!(audit[1], Value::Int(1));

    let id = net
        .invoke_as(0, trial, "enrollment", &[Value::str("NCT-INT-1")], 50_000)
        .unwrap();
    let receipt = net.commit_and_check(id).unwrap();
    assert_eq!(
        medchain_contracts::decode_args(&receipt.output).unwrap()[0],
        Value::Int(4)
    );
}

#[test]
fn replicas_converge_after_heavy_mixed_load() {
    let mut net = build_network(3, 60);
    let contracts = net.contracts();
    net.grant_all(net.site(2).address(), Purpose::Research).unwrap();
    for k in 0..12 {
        net.invoke_as(
            2,
            contracts.data,
            "request",
            &[
                Value::str(&format!("hospital-{}/emr", k % 3)),
                Value::Int(Purpose::Research.code()),
            ],
            50_000,
        )
        .unwrap();
    }
    net.advance(4).unwrap();
    let tips: Vec<Hash256> = (0..3).map(|i| net.ledger_of(i).tip().id()).collect();
    assert!(tips.windows(2).all(|w| w[0] == w[1]), "replicas diverged: {tips:?}");
    let roots: Vec<Hash256> =
        (0..3).map(|i| net.ledger_of(i).state().state_root()).collect();
    assert!(roots.windows(2).all(|w| w[0] == w[1]), "states diverged");
}

#[test]
fn time_limited_grants_expire_on_chain() {
    let mut net = build_network(2, 40);
    let researcher = net.site(1).address();
    let data = net.contracts().data;
    // Grant research access that expires at logical time 10 000 ms.
    let id = net
        .invoke_as(
            0,
            data,
            "grant",
            &[
                Value::str("hospital-0/emr"),
                Value::address(&researcher),
                Value::Int(Purpose::Research.code()),
                Value::Int(10_000),
            ],
            50_000,
        )
        .unwrap();
    net.commit_and_check(id).unwrap();

    let request = |net: &mut MedicalNetwork| {
        let id = net
            .invoke_as(
                1,
                data,
                "request",
                &[Value::str("hospital-0/emr"), Value::Int(Purpose::Research.code())],
                50_000,
            )
            .unwrap();
        let receipt = net.commit_and_check(id).unwrap();
        medchain_contracts::decode_args(&receipt.output).unwrap()[0]
            .as_int()
            .unwrap()
    };

    // Within the validity window (block timestamps are early): permitted.
    assert_eq!(request(&mut net), 1, "grant should be valid early on");

    // Let logical time pass beyond the expiry, then request again: the
    // block timestamp now exceeds the grant's expiry, so the policy
    // evaluation inside the contract denies.
    while net.ledger().tip().header.timestamp_ms < 10_000 {
        net.advance(20).unwrap();
    }
    assert_eq!(request(&mut net), 0, "grant must expire with chain time");
}

#[test]
fn fda_special_node_audits_the_consortium() {
    use medchain::pipeline::fda_integrity_sweep;
    let mut builder = MedicalNetwork::builder().seed(99).with_fda();
    for i in 0..3 {
        builder = builder.site(&format!("hospital-{i}"), site_records(i, 60));
    }
    let mut net = builder.build().unwrap();

    // The FDA node exists, hosts nothing, and is a consortium validator.
    let fda = net.fda_index().expect("fda node present");
    assert_eq!(net.site(fda).name(), "fda");
    assert!(net.site(fda).records().is_empty());
    assert_eq!(net.site_count(), 4);

    // Its regulatory-audit grant is live on every hospital dataset.
    let data = net.contracts().data;
    for i in 0..3 {
        let id = net
            .invoke_as(
                fda,
                data,
                "request",
                &[
                    Value::str(&format!("hospital-{i}/emr")),
                    Value::Int(Purpose::RegulatoryAudit.code()),
                ],
                50_000,
            )
            .unwrap();
        let receipt = net.commit_and_check(id).unwrap();
        let permit = medchain_contracts::decode_args(&receipt.output).unwrap()[0]
            .as_int()
            .unwrap();
        assert_eq!(permit, 1, "FDA audit access denied at hospital-{i}");
    }
    // But research purpose was never granted to the FDA.
    let id = net
        .invoke_as(
            fda,
            data,
            "request",
            &[Value::str("hospital-0/emr"), Value::Int(Purpose::Research.code())],
            50_000,
        )
        .unwrap();
    let receipt = net.commit_and_check(id).unwrap();
    assert_eq!(
        medchain_contracts::decode_args(&receipt.output).unwrap()[0].as_int().unwrap(),
        0,
        "purpose limitation must hold for the regulator too"
    );

    // The integrity sweep finds everything intact.
    let report = fda_integrity_sweep(&net);
    assert_eq!(report.datasets_intact, 4); // 3 hospitals + fda's empty set
    assert_eq!(report.datasets_tampered, 0);
    assert!(report.blocks_verified > 0);
}

#[test]
fn distributed_gwas_through_policy_gate_matches_centralized() {
    use medchain::pipeline::run_gwas;
    use medchain_data::genomics;

    // Genomically rich cohorts at every site.
    let rich_records = |i: usize| {
        let profile = SiteProfile { genomic_coverage: 1.0, ..SiteProfile::varied(i) };
        CohortGenerator::new(&format!("hospital-{i}"), profile, 7_000 + i as u64).cohort(
            (i * 1_000_000) as u64,
            400,
            &DiseaseModel::stroke(),
        )
    };
    let mut builder = MedicalNetwork::builder().seed(4242);
    let mut all = Vec::new();
    for i in 0..3 {
        let records = rich_records(i);
        all.extend(records.clone());
        builder = builder.site(&format!("hospital-{i}"), records);
    }
    let mut net = builder.build().unwrap();
    let researcher = net.site(0).address();
    net.grant_all(researcher, Purpose::Research).unwrap();

    let (associations, report) =
        run_gwas(&mut net, 0, STROKE_CODE, Purpose::Research).unwrap();
    assert_eq!(report.permitted, 3);
    assert!(report.cases > 0 && report.controls > 0);
    // Count tables are tiny compared with shipping genomes.
    assert!(report.bytes_returned < 3 * 1_000);

    // Exactness: composed equals centralized.
    let centralized = genomics::compose(&[genomics::map_site(&all, STROKE_CODE)]);
    assert_eq!(associations.len(), centralized.len());
    for (a, c) in associations.iter().zip(&centralized) {
        assert_eq!(a.snp, c.snp);
        assert!((a.chi_square - c.chi_square).abs() < 1e-9);
    }
    // The result anchor is on-chain.
    let anchored = net
        .ledger()
        .state()
        .anchor_count();
    assert!(anchored > 3, "gwas anchor recorded");
}

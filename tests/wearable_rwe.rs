//! Integration: wearable time series feed the real-world-evidence
//! safety monitor — the paper's "personal activity record" modality
//! contributing post-approval signals (§II, §IV).

use medchain_data::wearable::{SeriesProfile, WearableSeries};
use medchain_trial::{OutcomeEvent, RweMonitor};

/// A drug that raises sick-day frequency after exposure: per-patient
/// wearable series show more elevated-HR days, which sites convert to
/// adverse-event observations for the monitor.
#[test]
fn wearable_anomalies_drive_safety_signal() {
    let sites = 4usize;
    let patients_per_site = 40usize;

    let build_events = |sick_rate: f64, seed_base: u64| -> Vec<OutcomeEvent> {
        let mut events = Vec::new();
        for site in 0..sites {
            for p in 0..patients_per_site {
                let seed = seed_base + (site * 1_000 + p) as u64;
                let series = WearableSeries::generate(
                    &SeriesProfile { sick_day_rate: sick_rate, ..SeriesProfile::default() },
                    90,
                    seed,
                );
                // Site-side analytics: a patient with many elevated-HR
                // days in the window is reported as a possible adverse
                // event. Raw series never leave the site.
                let anomalous_days = series.elevated_hr_days(1.5).len();
                events.push(OutcomeEvent {
                    day: (p % 90) as u32 + 1,
                    site,
                    adverse: anomalous_days >= 6,
                });
            }
        }
        events.sort_by_key(|e| e.day);
        events
    };

    // Background population: calibrate the expected adverse rate.
    let background_events = build_events(0.03, 10_000);
    let background_rate = background_events.iter().filter(|e| e.adverse).count() as f64
        / background_events.len() as f64;

    // Exposed population: the drug doubles sick-day frequency.
    let exposed_events = build_events(0.12, 20_000);
    let exposed_rate = exposed_events.iter().filter(|e| e.adverse).count() as f64
        / exposed_events.len() as f64;
    assert!(
        exposed_rate > background_rate + 0.1,
        "exposure should raise the wearable-derived adverse rate: {background_rate} → {exposed_rate}"
    );

    // The monitor calibrated to the background rate fires on the exposed
    // stream but not on a fresh background stream.
    let mut monitor = RweMonitor::new(background_rate.max(0.01), 3.5, 60);
    let mut fired = false;
    for event in &exposed_events {
        if monitor.observe(*event).is_some() {
            fired = true;
            break;
        }
    }
    assert!(fired, "exposed stream must raise a signal");

    let mut control = RweMonitor::new(background_rate.max(0.01), 3.5, 60);
    for event in &build_events(0.03, 30_000) {
        control.observe(*event);
    }
    assert!(
        control.signal().is_none(),
        "background stream must not alarm: z={}",
        control.z_score()
    );
}

/// Wearable summaries remain consistent with their source series after
/// the site-level summarization step the EMR pipeline uses.
#[test]
fn summaries_track_series_statistics() {
    for seed in 0..10u64 {
        let series = WearableSeries::generate(&SeriesProfile::default(), 120, seed);
        let summary = series.summarize().expect("non-empty");
        let max_steps =
            series.readings.iter().map(|r| r.steps).fold(f64::NEG_INFINITY, f64::max);
        let min_steps = series.readings.iter().map(|r| r.steps).fold(f64::INFINITY, f64::min);
        assert!(summary.avg_daily_steps <= max_steps);
        assert!(summary.avg_daily_steps >= min_steps);
        assert!((3.0..=12.0).contains(&summary.avg_sleep_hours));
    }
}

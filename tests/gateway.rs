//! End-to-end ingress tests (DESIGN.md §10): a real TCP [`Client`]
//! against a [`MedicalNetwork`] / [`ShardedNetwork`] gateway.
//!
//! Covered: (1) submit → `PendingTx` → `TxReceipt` over TCP with the
//! proof checked against an **independently read** committed block
//! root, (2) the Lamport-safety regression — re-submitting a signed
//! transaction never re-runs signature verification, (3) fee-gated
//! priority-lane admission, and (4) the sharded topology routing
//! gateway traffic onto the right sub-chains.

use medchain::gateway::{GatewayBackend, GatewayServer};
use medchain::{Client, GatewayConfig, MedicalNetwork, TransportKind};
use medchain_chain::node::SubmitOutcome;
use medchain_chain::receipt::TxReceipt;
use medchain_chain::shard::{shard_for_key, ShardId};
use medchain_chain::{AuthorityKey, Hash256, KeyRegistry, Lane, Transaction, TxPayload};
use medchain_runtime::metrics::Registry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const COMMIT_TIMEOUT: Duration = Duration::from_secs(30);

fn anchor(label: &str) -> TxPayload {
    TxPayload::Anchor { root: Hash256::digest(label.as_bytes()), label: label.to_string() }
}

#[test]
fn tcp_round_trip_receipt_verifies_against_committed_root() {
    let registry = Registry::new();
    let mut builder = MedicalNetwork::builder()
        .block_interval_ms(20)
        .transport(TransportKind::Tcp)
        .metrics(registry.handle())
        .gateway(GatewayConfig { clients: 1, ..GatewayConfig::default() });
    for i in 0..3 {
        builder = builder.site(&format!("hospital-{i}"), Vec::new());
    }
    let mut net = builder.build().expect("TCP gateway network builds");
    let addr = net.gateway_addr().expect("gateway listening");
    let keys = net.client_keys().to_vec();

    let stop = AtomicBool::new(false);
    let receipt = std::thread::scope(|scope| {
        let client_side = scope.spawn(|| {
            let key = &keys[0];
            let mut client = Client::connect(addr).expect("connects");
            let tx = Transaction::new(key.address(), 0, anchor("e2e/emr"), 1_000).signed(key);
            let pending = client.submit(&tx, false).expect("accepted");
            assert_eq!(pending.tx_id, tx.id());
            // wait_receipt verifies the proof locally before returning.
            let receipt = client.wait_receipt(&pending, COMMIT_TIMEOUT).expect("commits");
            stop.store(true, Ordering::Relaxed);
            receipt
        });
        net.serve_until(&stop).expect("serving succeeds");
        client_side.join().expect("client thread")
    });

    // Trustless check against a root the gateway never touched: read the
    // committed block straight from a validator's ledger.
    let root = net
        .ledger()
        .block(receipt.height)
        .expect("block retained")
        .header
        .tx_root;
    assert!(receipt.verify_against(&root), "receipt proof fails against the real block root");
    assert!(receipt.ok);
    // The ingress pipeline metered itself.
    assert!(registry.counter_value("gateway.requests") >= 1);
    assert!(registry.counter_value("gateway.accepted") >= 1);
    net.shutdown();
}

#[test]
fn resubmission_never_reverifies_a_signature() {
    let registry = Registry::new();
    let mut builder = MedicalNetwork::builder()
        .block_interval_ms(20)
        .metrics(registry.handle())
        .gateway(GatewayConfig { clients: 1, ..GatewayConfig::default() });
    for i in 0..3 {
        builder = builder.site(&format!("h{i}"), Vec::new());
    }
    let mut net = builder.build().expect("network builds");
    let addr = net.gateway_addr().expect("gateway listening");
    let keys = net.client_keys().to_vec();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let client_side = scope.spawn(|| {
            let key = &keys[0];
            let mut client = Client::connect(addr).expect("connects");
            let tx = Transaction::new(key.address(), 0, anchor("dup/doc"), 1_000).signed(key);
            let pending = client.submit(&tx, false).expect("accepted");
            // Retry while still pending: answered from the dedup window.
            let again = client.submit(&tx, false).expect("idempotent");
            assert_eq!(again.tx_id, pending.tx_id);
            client.wait_receipt(&pending, COMMIT_TIMEOUT).expect("commits");
            // Retry after commit: answered straight from the receipt.
            let after = client.submit(&tx, false).expect("still idempotent");
            assert_eq!(after.tx_id, pending.tx_id);
            stop.store(true, Ordering::Relaxed);
        });
        net.serve_until(&stop).expect("serving succeeds");
        client_side.join().expect("client thread");
    });

    // One transaction, three submissions: exactly one signature check —
    // a one-time-signature scheme must never see a second verification
    // of the same submission (Lamport safety).
    assert_eq!(registry.counter_value("gateway.sig_checks"), 1);
    assert!(registry.counter_value("gateway.dedup_hits") >= 2);
    net.shutdown();
}

/// Backend stub that answers `Full` for the first `full_answers`
/// admissions, then admits — the "mempool briefly saturated" scenario.
struct FlakyPool {
    registry: KeyRegistry,
    full_answers: usize,
    attempts: usize,
    admitted: Vec<Hash256>,
}

impl GatewayBackend for FlakyPool {
    fn registry(&self) -> &KeyRegistry {
        &self.registry
    }

    fn admit_verified(&mut self, tx: Transaction, lane: Lane) -> (ShardId, SubmitOutcome) {
        self.attempts += 1;
        if self.attempts <= self.full_answers {
            (ShardId::default(), SubmitOutcome::Full)
        } else {
            self.admitted.push(tx.id());
            (ShardId::default(), SubmitOutcome::Admitted { lane, replaced: false })
        }
    }

    fn find_receipt(&self, _tx_id: &Hash256) -> Option<TxReceipt> {
        None
    }

    fn is_pending(&self, tx_id: &Hash256) -> bool {
        self.admitted.contains(tx_id)
    }
}

/// Lamport-safety regression for the full-mempool path: a transaction
/// bounced with `mempool full` was verified but never admitted, so its
/// resubmission must be served from the verified-tx holding pen — one
/// signature check total, not one per attempt.
#[test]
fn full_mempool_retry_never_reverifies_a_signature() {
    let registry = Registry::new();
    let key = AuthorityKey::from_seed(0x5151);
    let mut enrolled = KeyRegistry::new();
    enrolled.enroll(&key);
    let mut backend =
        FlakyPool { registry: enrolled, full_answers: 1, attempts: 0, admitted: Vec::new() };
    let mut gateway = GatewayServer::start(
        GatewayConfig { clients: 0, ..GatewayConfig::default() },
        registry.handle(),
    )
    .expect("gateway starts");
    let addr = gateway.addr();

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let client_side = scope.spawn(|| {
            let mut client = Client::connect(addr).expect("connects");
            let tx = Transaction::new(key.address(), 0, anchor("full/retry"), 1_000).signed(&key);
            // First attempt: verified, then bounced by the full mempool.
            let err = client.submit(&tx, false).expect_err("mempool full");
            assert!(err.to_string().contains("mempool full"), "got: {err}");
            // Retry: admission succeeds without new signature work.
            let pending = client.submit(&tx, false).expect("admitted on retry");
            assert_eq!(pending.tx_id, tx.id());
            done.store(true, Ordering::Relaxed);
        });
        while !done.load(Ordering::Relaxed) {
            gateway.pump(&mut backend);
            std::thread::sleep(Duration::from_millis(1));
        }
        client_side.join().expect("client thread");
    });

    assert_eq!(backend.attempts, 2, "one bounced admission, one successful");
    assert_eq!(
        registry.counter_value("gateway.sig_checks"),
        1,
        "the bounced tx must be retried from the verified cache"
    );
    assert_eq!(registry.counter_value("gateway.cached_retries"), 1);
    gateway.shutdown();
}

/// Durability regression: a committed transaction must answer
/// `Committed` even after its id ages out of the bounded dedup window —
/// the receipt lookup, not the window, is the source of truth.
#[test]
fn committed_status_survives_seen_window_eviction() {
    let mut builder = MedicalNetwork::builder().block_interval_ms(20).gateway(GatewayConfig {
        clients: 1,
        dedup_capacity: 2,
        ..GatewayConfig::default()
    });
    for i in 0..3 {
        builder = builder.site(&format!("h{i}"), Vec::new());
    }
    let mut net = builder.build().expect("network builds");
    let addr = net.gateway_addr().expect("gateway listening");
    let keys = net.client_keys().to_vec();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let client_side = scope.spawn(|| {
            let key = &keys[0];
            let mut client = Client::connect(addr).expect("connects");
            let first = Transaction::new(key.address(), 0, anchor("evict/first"), 1_000).signed(key);
            let pending = client.submit(&first, false).expect("accepted");
            client.wait_receipt(&pending, COMMIT_TIMEOUT).expect("commits");
            // Churn the 2-slot seen window until `first` is evicted.
            for (nonce, label) in [(1, "evict/second"), (2, "evict/third")] {
                let tx = Transaction::new(key.address(), nonce, anchor(label), 1_000).signed(key);
                let later = client.submit(&tx, false).expect("accepted");
                client.wait_receipt(&later, COMMIT_TIMEOUT).expect("commits");
            }
            // The window forgot `first`; its receipt must not have.
            let receipt =
                client.wait_receipt(&pending, COMMIT_TIMEOUT).expect("still committed");
            assert_eq!(receipt.tx_id, first.id());
            assert!(receipt.verify());
            stop.store(true, Ordering::Relaxed);
        });
        net.serve_until(&stop).expect("serving succeeds");
        client_side.join().expect("client thread");
    });
    net.shutdown();
}

#[test]
fn priority_is_fee_gated() {
    let mut builder = MedicalNetwork::builder()
        .block_interval_ms(20)
        .gateway(GatewayConfig { clients: 1, ..GatewayConfig::default() });
    for i in 0..3 {
        builder = builder.site(&format!("h{i}"), Vec::new());
    }
    let mut net = builder.build().expect("network builds");
    let addr = net.gateway_addr().expect("gateway listening");
    let keys = net.client_keys().to_vec();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let client_side = scope.spawn(|| {
            let key = &keys[0];
            let mut client = Client::connect(addr).expect("connects");
            // Gas above the floor: priority honored.
            let rich = Transaction::new(key.address(), 0, anchor("lane/rich"), 20_000).signed(key);
            let pending = client.submit(&rich, true).expect("accepted");
            assert_eq!(pending.lane, Lane::Priority);
            client.wait_receipt(&pending, COMMIT_TIMEOUT).expect("commits");
            // Gas below the floor: the request is coerced to normal.
            let poor = Transaction::new(key.address(), 1, anchor("lane/poor"), 1_000).signed(key);
            let pending = client.submit(&poor, true).expect("accepted");
            assert_eq!(pending.lane, Lane::Normal);
            client.wait_receipt(&pending, COMMIT_TIMEOUT).expect("commits");
            stop.store(true, Ordering::Relaxed);
        });
        net.serve_until(&stop).expect("serving succeeds");
        client_side.join().expect("client thread");
    });
    net.shutdown();
}

#[test]
fn sharded_gateway_routes_and_proves_on_the_right_sub_chain() {
    let shards = 2u16;
    let mut builder = MedicalNetwork::builder()
        .block_interval_ms(20)
        .shards(shards)
        .gateway(GatewayConfig { clients: 1, ..GatewayConfig::default() });
    for i in 0..4 {
        builder = builder.site(&format!("hospital-{i}"), Vec::new());
    }
    let mut net = builder.build_sharded().expect("sharded gateway network builds");
    let addr = net.gateway_addr().expect("gateway listening");
    let keys = net.client_keys().to_vec();

    let stop = AtomicBool::new(false);
    let receipts = std::thread::scope(|scope| {
        let client_side = scope.spawn(|| {
            let key = &keys[0];
            let mut client = Client::connect(addr).expect("connects");
            // Nonces are per sub-chain: route each label first, then
            // pick the next nonce on that chain.
            let mut nonces: HashMap<u16, u64> = HashMap::new();
            let mut receipts = Vec::new();
            for label in ["ward/alpha", "ward/beta", "ward/gamma", "ward/delta"] {
                let shard = shard_for_key(label.as_bytes(), shards);
                let slot = nonces.entry(shard.0).or_insert(0);
                let nonce = *slot;
                *slot += 1;
                let tx =
                    Transaction::new(key.address(), nonce, anchor(label), 1_000).signed(key);
                let pending = client.submit(&tx, false).expect("accepted");
                assert_eq!(pending.shard, shard, "gateway must route by the anchor label");
                receipts.push((shard, client.wait_receipt(&pending, COMMIT_TIMEOUT).expect("commits")));
            }
            stop.store(true, Ordering::Relaxed);
            receipts
        });
        net.serve_until(&stop).expect("serving succeeds");
        client_side.join().expect("client thread")
    });

    let mut shards_hit = [false; 2];
    for (shard, receipt) in &receipts {
        assert_eq!(receipt.shard, *shard);
        // Independent root from the sub-chain the tx was routed to.
        let root = net
            .ledger_of_shard(*shard)
            .block(receipt.height)
            .expect("block retained")
            .header
            .tx_root;
        assert!(receipt.verify_against(&root), "proof fails on {shard}");
        shards_hit[shard.0 as usize] = true;
    }
    assert!(shards_hit.iter().all(|&h| h), "labels should spread over both sub-chains");
    net.shutdown();
}

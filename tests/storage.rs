//! Crash-recovery acceptance tests for the durable storage subsystem.
//!
//! The invariant under test: a node you kill — even mid-append — comes
//! back with exactly the chain it had durably committed. Recovery
//! truncates the torn tail record, restores the newest snapshot that
//! agrees with the log, re-executes the tail through the ledger, and
//! the replayed tip hash and state root are asserted equal to the
//! pre-crash values. `storage.*` counters on the metrics sink make the
//! recovery observable, not just survivable.

use medchain_chain::ledger::NullRuntime;
use medchain_chain::sig::AuthorityKey;
use medchain_chain::tx::{Transaction, TxPayload};
use medchain_chain::{Hash256, KeyRegistry, Ledger};
use medchain_repro::prelude::*;
use medchain_runtime::metrics::Registry;
use medchain_storage::wal::RECORD_HEADER_BYTES;
use std::path::PathBuf;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("medchain-itest-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale test dir");
    }
    dir
}

fn fresh_ledger(key: &AuthorityKey) -> Ledger {
    let mut registry = KeyRegistry::new();
    registry.enroll(key);
    Ledger::new("storage-itest", registry, Box::new(NullRuntime))
}

/// Commits `n` anchor blocks (anchors need no balances, so replaying
/// from genesis reproduces the exact state).
fn grow(ledger: &mut Ledger, key: &AuthorityKey, n: u64) {
    for _ in 0..n {
        let h = ledger.height();
        let tx = Transaction::new(
            key.address(),
            ledger.state().account(&key.address()).nonce,
            TxPayload::Anchor {
                root: Hash256::digest(&h.to_le_bytes()),
                label: format!("cohort-{h}"),
            },
            100,
        )
        .signed(key);
        let block = ledger.propose(key.address(), (h + 1) * 50, vec![tx]);
        ledger.apply(&block).expect("block applies");
    }
}

/// The headline acceptance test: commit N blocks with snapshots
/// enabled, tear the append of block N+1 mid-record (simulated crash),
/// reopen, and verify the replayed chain equals the pre-crash chain
/// with `storage.truncated_records == 1` on the sink.
#[test]
fn torn_tail_crash_recovers_pre_crash_tip_and_state_root() {
    let dir = test_dir("torn-tail");
    let key = AuthorityKey::from_seed(7);
    let config = StorageConfig {
        snapshot_every: 4,
        segment_bytes: 2048, // small segments: the log rolls several times
        fault: Some(StorageFault::TornAppend { at: 11 }),
        ..StorageConfig::default()
    };

    // First life: 10 committed blocks, crash tearing block 11's record.
    let mut ledger = fresh_ledger(&key);
    let mut store = DiskStore::open(&dir, config).unwrap();
    store.recover_into(&mut ledger).unwrap();
    ledger.attach_store(Box::new(store));
    grow(&mut ledger, &key, 10);
    let tip_id = ledger.tip().id();
    let state_root = ledger.state().state_root();

    let tx = Transaction::new(
        key.address(),
        ledger.state().account(&key.address()).nonce,
        TxPayload::Anchor { root: Hash256::ZERO, label: "doomed".into() },
        100,
    )
    .signed(&key);
    let block = ledger.propose(key.address(), 550, vec![tx]);
    let err = ledger.apply(&block).expect_err("append is torn");
    assert!(err.to_string().contains("simulated crash"), "got: {err}");
    // Write-ahead ordering: the failed block never reached memory either.
    assert_eq!(ledger.height(), 10);
    assert_eq!(ledger.tip().id(), tip_id);
    drop(ledger);

    // Second life: recovery truncates the torn record and replays.
    let registry = Registry::new();
    let mut ledger = fresh_ledger(&key);
    let mut store =
        DiskStore::open_with_metrics(&dir, StorageConfig::default(), registry.handle()).unwrap();
    let report = store.recover_into(&mut ledger).unwrap();

    assert_eq!(report.height, 10);
    assert_eq!(report.tip_id, tip_id);
    assert_eq!(report.truncated_records, 1);
    assert_eq!(ledger.tip().id(), tip_id, "replayed tip hash == pre-crash tip hash");
    assert_eq!(
        ledger.state().state_root(),
        state_root,
        "replayed state root == pre-crash state root"
    );
    // Snapshot at height 8 bounded the replay to blocks 9 and 10.
    assert_eq!(report.from_snapshot, Some(8));
    assert_eq!(report.replayed_blocks, 2);
    // The sink saw the recovery.
    assert_eq!(registry.counter_value("storage.truncated_records"), 1);
    assert_eq!(registry.counter_value("storage.replayed_blocks"), 2);

    // And the recovered chain still accepts new blocks.
    ledger.attach_store(Box::new(store));
    grow(&mut ledger, &key, 1);
    assert_eq!(ledger.height(), 11);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Flipping one byte inside a mid-log record corrupts its CRC; recovery
/// stops cleanly at the prior record instead of loading garbage.
#[test]
fn flipped_byte_in_log_record_stops_recovery_at_prior_record() {
    let dir = test_dir("byte-flip");
    let key = AuthorityKey::from_seed(9);
    // No snapshots: recovery must come entirely from the log replay.
    let config =
        StorageConfig { snapshot_every: 0, ..StorageConfig::default() };

    let mut ledger = fresh_ledger(&key);
    let mut store = DiskStore::open(&dir, config).unwrap();
    store.recover_into(&mut ledger).unwrap();
    ledger.attach_store(Box::new(store));
    grow(&mut ledger, &key, 6);
    let fourth_tip = ledger.block(4).unwrap().id();
    drop(ledger);

    // Corrupt one byte inside the fifth record's payload. All six
    // records live in one segment; walk the framing to find it.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "wal"))
        .expect("one segment file");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mut offset = 0usize;
    for _ in 0..4 {
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += RECORD_HEADER_BYTES as usize + len;
    }
    bytes[offset + RECORD_HEADER_BYTES as usize + 10] ^= 0x40;
    std::fs::write(&seg, bytes).unwrap();

    let registry = Registry::new();
    let mut ledger = fresh_ledger(&key);
    let mut store =
        DiskStore::open_with_metrics(&dir, config, registry.handle()).unwrap();
    let report = store.recover_into(&mut ledger).unwrap();
    // Blocks 5 and 6 are gone (5 was corrupt, 6 can't follow a hole);
    // the chain stops cleanly at block 4.
    assert_eq!(report.height, 4);
    assert_eq!(ledger.tip().id(), fourth_tip);
    assert_eq!(registry.counter_value("storage.truncated_records"), 1);

    // The truncated chain extends normally from block 4.
    ledger.attach_store(Box::new(store));
    grow(&mut ledger, &key, 2);
    assert_eq!(ledger.height(), 6);
    std::fs::remove_dir_all(&dir).unwrap();
}

fn sharded_net(root: &std::path::Path, sites: usize, shards: u16) -> ShardedNetwork {
    let mut builder =
        MedicalNetwork::builder().shards(shards).block_interval_ms(20).storage(root);
    for i in 0..sites {
        builder = builder.site(&format!("hospital-{i}"), Vec::new());
    }
    builder.build_sharded().expect("sharded network builds")
}

/// Kill-and-restart for the sharded topology (DESIGN.md §9): every
/// sub-chain and the coordinator chain resume from their own data
/// directories, the recovered sub-chains agree with the newest
/// cross-links the recovered coordinator holds, and the consortium keeps
/// committing — including a fresh cross-link round past the old tips.
#[test]
fn sharded_network_restart_recovers_subchains_agreeing_with_cross_links() {
    let root = test_dir("sharded-restart");

    // First life: work on both shards, then a committed cross-link round.
    let mut net = sharded_net(&root, 4, 2);
    assert!(!net.resumed());
    for i in 0..4 {
        let label = format!("hospital-{i}/emr");
        net.submit_as(i, TxPayload::Anchor { root: Hash256::digest(label.as_bytes()), label }, 1_000)
            .unwrap();
    }
    net.advance(2).unwrap();
    let links = net.cross_link().unwrap();
    assert_eq!(links.len(), 2);
    let heights = net.shard_heights();
    let tips: Vec<Hash256> =
        (0..2).map(|s| net.ledger_of_shard(ShardId(s)).tip().id()).collect();
    let coordinator_tip = net.coordinator_ledger().tip().id();
    drop(net);

    // Second life: all sub-chains resume and pass the cross-link audit.
    let mut net = sharded_net(&root, 4, 2);
    assert!(net.resumed());
    assert_eq!(net.shard_heights(), heights);
    for s in 0..2u16 {
        assert_eq!(net.ledger_of_shard(ShardId(s)).tip().id(), tips[s as usize]);
    }
    assert_eq!(net.coordinator_ledger().tip().id(), coordinator_tip);
    // The recovered coordinator still holds the pre-crash cross-links.
    for link in &links {
        let record =
            net.coordinator_ledger().state().cross_link(link.shard).expect("recorded");
        assert_eq!(record.tip, link.tip);
    }
    // The resumed consortium keeps growing and cross-links past the old
    // tips.
    net.submit_as(0, TxPayload::Anchor { root: Hash256::ZERO, label: "post-restart".into() }, 1_000)
        .unwrap();
    net.advance(1).unwrap();
    let new_links = net.cross_link().unwrap();
    assert!(!new_links.is_empty());
    assert!(new_links.iter().all(|l| {
        links.iter().find(|p| p.shard == l.shard).map_or(true, |p| l.height > p.height)
    }));
    std::fs::remove_dir_all(&root).unwrap();
}

/// A shard whose durable chain was rolled back behind its committed
/// cross-link (here: its data wiped entirely) must be caught at resume —
/// the recovery audit refuses to bring up a consortium whose coordinator
/// commits a height the sub-chain no longer has.
#[test]
fn sharded_restart_rejects_subchain_rolled_back_behind_cross_link() {
    let root = test_dir("sharded-rollback");

    let mut net = sharded_net(&root, 4, 2);
    for i in 0..4 {
        let label = format!("hospital-{i}/emr");
        net.submit_as(i, TxPayload::Anchor { root: Hash256::ZERO, label }, 1_000).unwrap();
    }
    net.advance(2).unwrap();
    assert_eq!(net.cross_link().unwrap().len(), 2);
    drop(net);

    // Roll shard-0 back to genesis by wiping its data directories.
    std::fs::remove_dir_all(root.join("shard-0")).unwrap();
    let mut builder =
        MedicalNetwork::builder().shards(2).block_interval_ms(20).storage(&root);
    for i in 0..4 {
        builder = builder.site(&format!("hospital-{i}"), Vec::new());
    }
    let err = builder.build_sharded().expect_err("rolled-back shard must not resume");
    let text = err.to_string();
    assert!(
        text.contains("cross-link") && text.contains("shard-0"),
        "unexpected error: {text}"
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// Builds a sharded net whose world state (balances *and* 2PC locks)
/// snapshots on every block, so out-of-band test funding and held locks
/// survive a kill-and-restart.
fn sharded_net_2pc(root: &std::path::Path, sites: usize, shards: u16) -> ShardedNetwork {
    let config = StorageConfig { snapshot_every: 1, ..StorageConfig::default() };
    let mut builder = MedicalNetwork::builder()
        .shards(shards)
        .block_interval_ms(20)
        .storage_with(root, config);
    for i in 0..sites {
        builder = builder.site(&format!("hospital-{i}"), Vec::new());
    }
    builder.build_sharded().expect("sharded network builds")
}

/// An address homed on a different shard than `other`.
fn other_shard_address(other: Address, shards: u16) -> Address {
    let home = shard_for_key(&other.0, shards);
    (1000..)
        .map(Address::from_seed)
        .find(|a| shard_for_key(&a.0, shards) != home)
        .unwrap()
}

/// Kill-and-restart in the middle of a two-phase commit, after the
/// coordinator decided but before any shard finalized: the restart
/// reconstructs both locks and the decision record from disk, and one
/// resolver pass finishes the transfer exactly as the pre-crash
/// coordinator decided — debit kept, credit paid, locks released.
#[test]
fn restart_mid_2pc_resolves_via_coordinator_record() {
    let root = test_dir("2pc-mid-restart");
    let from = AuthorityKey::from_seed(0).address(); // site 0's account
    let to = other_shard_address(from, 2);

    // First life: lock both legs, decide commit, crash before finalize.
    let mut net = sharded_net_2pc(&root, 4, 2);
    net.fund(from, 100);
    let deadline = net.now_ms() + 1_000_000;
    let transfer = net.begin_cross_shard_transfer(0, to, 40, deadline).unwrap();
    net.confirm(&transfer.debit).unwrap();
    net.confirm(&transfer.credit).unwrap();
    net.submit_lane(0, TxPayload::XsDecide { xid: transfer.xid, commit: true }, 1_000, Lane::Priority)
        .unwrap();
    net.advance_coordinator(2).unwrap();
    assert!(net.coordinator_ledger().state().xs_decision(&transfer.xid).is_some());
    assert!(net.lock_of(&from).is_some(), "crash strikes before finalize");
    assert!(net.lock_of(&to).is_some());
    assert_eq!(net.balance_of(&from), 60, "escrow taken at prepare");
    assert_eq!(net.balance_of(&to), 0);
    drop(net);

    // Second life: locks and the decision record come back from disk.
    let mut net = sharded_net_2pc(&root, 4, 2);
    assert!(net.resumed());
    assert_eq!(net.lock_of(&from).map(|l| l.xid), Some(transfer.xid));
    assert_eq!(net.lock_of(&to).map(|l| l.xid), Some(transfer.xid));
    let decision =
        net.coordinator_ledger().state().xs_decision(&transfer.xid).expect("decision durable");
    assert!(decision.commit);
    // One resolver pass finishes what the coordinator already decided.
    let resolution = net.resolve_cross_shard().unwrap();
    assert_eq!(resolution.finalized, 2);
    assert_eq!(resolution.committed + resolution.aborted, 0, "no new decision needed");
    assert_eq!(net.balance_of(&from), 60);
    assert_eq!(net.balance_of(&to), 40);
    assert!(net.lock_of(&from).is_none());
    assert!(net.lock_of(&to).is_none());
    std::fs::remove_dir_all(&root).unwrap();
}

/// A participant crash mid-prepare: the debit leg locked its shard, the
/// credit leg's shard died and never locked. After a full
/// kill-and-restart of the consortium the lock is reconstructed from
/// disk, the resolver timeout-aborts past the deadline, the escrow is
/// refunded, and the abort verdict itself survives another restart.
#[test]
fn kill_mid_prepare_timeout_aborts_after_restart_and_refunds() {
    let root = test_dir("2pc-timeout-abort");
    let from = AuthorityKey::from_seed(0).address();
    let to = other_shard_address(from, 2);

    // First life: only the debit leg ever locks (deadline already at 0),
    // then the whole consortium dies mid-prepare.
    let mut net = sharded_net_2pc(&root, 4, 2);
    net.fund(from, 100);
    let xid = Hash256::digest(b"crashed-participant");
    let debit = net.submit_prepare(0, xid, from, 40, true, 0).unwrap();
    net.confirm(&debit).unwrap();
    assert_eq!(net.balance_of(&from), 60);
    drop(net);

    // Second life: the lock is reconstructed on replay; the resolver
    // cannot wait for a shard that never locked — timeout-abort.
    let mut net = sharded_net_2pc(&root, 4, 2);
    assert!(net.resumed());
    assert_eq!(net.lock_of(&from).map(|l| l.xid), Some(xid), "lock recovered from disk");
    net.advance_coordinator(1).unwrap(); // move the clock past the deadline
    let resolution = net.resolve_cross_shard().unwrap();
    assert_eq!(resolution.aborted, 1);
    assert_eq!(resolution.committed, 0);
    assert_eq!(resolution.finalized, 1);
    assert_eq!(net.balance_of(&from), 100, "escrow refunded");
    assert_eq!(net.balance_of(&to), 0, "the receiver never saw a credit");
    assert!(net.lock_of(&from).is_none(), "all locks released");
    assert!(!net.coordinator_ledger().state().xs_decision(&xid).unwrap().commit);
    drop(net);

    // Third life: the abort is durable — nothing left to resolve.
    let mut net = sharded_net_2pc(&root, 4, 2);
    assert!(net.resumed());
    assert!(net.lock_of(&from).is_none());
    assert_eq!(net.balance_of(&from), 100);
    assert!(!net.coordinator_ledger().state().xs_decision(&xid).unwrap().commit);
    assert_eq!(net.resolve_cross_shard().unwrap(), XsResolution::default());
    std::fs::remove_dir_all(&root).unwrap();
}

/// Restarting a `MedicalNetwork` from its data directory resumes at the
/// persisted height with the identical tip hash, and the storage
/// counters on the sink show the persistence actually happening.
#[test]
fn medical_network_restart_resumes_at_persisted_height() {
    let root = test_dir("net-restart");
    let records = |i: usize| {
        CohortGenerator::new(&format!("hospital-{i}"), SiteProfile::varied(i), i as u64)
            .cohort((i * 10_000) as u64, 50, &DiseaseModel::stroke())
    };

    // First life: bootstrap and do some work; count appends on the sink.
    let registry = Registry::new();
    let mut net = MedicalNetwork::builder()
        .site("hospital-0", records(0))
        .site("hospital-1", records(1))
        .site("hospital-2", records(2))
        .storage(&root)
        .metrics(registry.handle())
        .build()
        .unwrap();
    assert!(!net.resumed());
    net.grant_all(net.site(1).address(), Purpose::Research).unwrap();
    let height = net.height();
    let tip = net.ledger().tip().id();
    assert_eq!(
        registry.counter_value("storage.appends"),
        height,
        "every committed block was persisted write-ahead"
    );
    assert!(registry.counter_value("storage.bytes") > 0);
    assert!(registry.counter_value("storage.fsyncs") > 0);
    drop(net);

    // Second life: resume from disk; the chain replays instead of
    // re-running setup.
    let registry = Registry::new();
    let net = MedicalNetwork::builder()
        .site("hospital-0", records(0))
        .site("hospital-1", records(1))
        .site("hospital-2", records(2))
        .storage(&root)
        .metrics(registry.handle())
        .build()
        .unwrap();
    assert!(net.resumed());
    assert_eq!(net.height(), height, "resumed at the persisted height");
    assert_eq!(net.ledger().tip().id(), tip, "identical tip hash after restart");
    assert!(registry.counter_value("storage.replayed_blocks") > 0);
    // All replicas recovered to the same chain.
    for i in 0..3 {
        assert_eq!(net.ledger_of(i).tip().id(), tip);
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// Paged reads ≡ fully-resident reads (DESIGN.md §14): one seeded
/// random block sequence — transfers across a 64-account universe plus
/// anchors — committed by a fully-resident ledger and by page-capped
/// ledgers with 1..=4 cached page slots. Hot-set and node budgets sit
/// far below the working set, so every commit demotes accounts and
/// spills subtrees, and later blocks fault them back in. State roots
/// and full canonical state encodings must stay byte-identical at
/// every height.
#[test]
fn paged_ledger_matches_resident_ledger_under_random_blocks() {
    use medchain_chain::StateCacheConfig;
    use medchain_storage::{PageStore, PagedAccounts, PagedNodes};
    use std::sync::Arc;

    for cache_pages in 1..=4usize {
        let dir = test_dir(&format!("paged-equiv-{cache_pages}"));
        std::fs::create_dir_all(&dir).unwrap();
        let key = AuthorityKey::from_seed(11);
        let mut resident = fresh_ledger(&key);
        let mut paged = fresh_ledger(&key);
        // Genesis funding (identical on both) before the cache attaches.
        resident.state_mut().credit(key.address(), 1_000_000);
        paged.state_mut().credit(key.address(), 1_000_000);

        let registry = Registry::new();
        let pages = Arc::new(
            PageStore::open(&dir.join("pages.bin"), cache_pages, registry.handle()).unwrap(),
        );
        paged.attach_state_cache(StateCacheConfig {
            accounts: Arc::new(PagedAccounts::new(Arc::clone(&pages))),
            nodes: Arc::new(PagedNodes::new(pages)),
            max_hot_accounts: 8, // « the 64-account universe: constant churn
            node_budget: 16,     // forces subtree spills on every commit
        });

        let mut rng = DetRng::from_seed(0xD15C_0000 + cache_pages as u64);
        for step in 0..30u64 {
            let nonce_base = resident.state().account(&key.address()).nonce;
            let txs: Vec<Transaction> = (0..4)
                .map(|k| {
                    let payload = if rng.next_u64() % 2 == 0 {
                        let mut to = [0u8; 20];
                        to[..8].copy_from_slice(&(rng.next_u64() % 64).to_le_bytes());
                        TxPayload::Transfer {
                            to: medchain_chain::Address(to),
                            amount: 1 + rng.next_u64() % 50,
                        }
                    } else {
                        let label = format!("scan-{step}-{k}");
                        TxPayload::Anchor { root: Hash256::digest(label.as_bytes()), label }
                    };
                    Transaction::new(key.address(), nonce_base + k, payload, 100).signed(&key)
                })
                .collect();
            let block = resident.propose(key.address(), (resident.height() + 1) * 50, txs);
            resident.apply(&block).unwrap();
            paged.apply(&block).unwrap();
            assert_eq!(
                paged.state().state_root(),
                resident.state().state_root(),
                "state root diverged at step {step} with {cache_pages} page slot(s)"
            );
            assert_eq!(
                paged.state().encoded(),
                resident.state().encoded(),
                "state encoding diverged at step {step} with {cache_pages} page slot(s)"
            );
        }
        assert!(
            registry.counter_value("storage.page_writes") > 0,
            "{cache_pages} slot(s): budget never forced a spill"
        );
        assert!(
            registry.counter_value("storage.page_misses") > 0,
            "{cache_pages} slot(s): no read ever faulted a page back in"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Hermetic-build invariants: the in-house codec round-trips the chain's
//! wire types exactly, and the in-house RNG is deterministic enough that
//! equal seeds reproduce identical synthetic cohorts. These are the two
//! properties the zero-dependency migration must preserve.

use medchain_chain::ledger::{Account, Event, Ledger, NullRuntime, Receipt};
use medchain_chain::{AuthorityKey, Block, Hash256, KeyRegistry, Transaction, TxPayload};
use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile};
use medchain_runtime::{Decode, DetRng, Encode};

fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: &T) {
    let encoded = value.encoded();
    let decoded = T::decoded(&encoded).expect("decode");
    assert_eq!(&decoded, value);
    // Strictness: one trailing byte must be rejected.
    let mut padded = encoded.clone();
    padded.push(0);
    assert!(T::decoded(&padded).is_err(), "trailing byte accepted");
}

fn signed_tx(key: &AuthorityKey, nonce: u64) -> Transaction {
    Transaction::new(
        key.address(),
        nonce,
        TxPayload::Transfer { to: key.address(), amount: 42 },
        1_000,
    )
    .signed(key)
}

#[test]
fn transaction_payloads_round_trip() {
    let key = AuthorityKey::from_seed(7);
    round_trip(&TxPayload::Transfer { to: key.address(), amount: 9 });
    round_trip(&TxPayload::Deploy { code: vec![1, 2, 3], init: vec![4] });
    round_trip(&TxPayload::Invoke { contract: key.address(), input: vec![0xff; 40] });
    round_trip(&TxPayload::Anchor { root: Hash256::digest(b"data"), label: "ds".into() });
    round_trip(&signed_tx(&key, 3));
}

#[test]
fn blocks_round_trip_through_the_codec() {
    round_trip(&Block::genesis("hermetic"));

    // A committed block with real transactions, straight off a ledger.
    let key = AuthorityKey::from_seed(1);
    let mut registry = KeyRegistry::new();
    registry.enroll(&key);
    let mut ledger = Ledger::new("hermetic", registry, Box::new(NullRuntime));
    ledger.state_mut().credit(key.address(), 10_000);
    let block = ledger.propose(key.address(), 10, vec![signed_tx(&key, 0), signed_tx(&key, 1)]);
    ledger.apply(&block).expect("apply");
    round_trip(&block);
}

#[test]
fn ledger_state_types_round_trip() {
    round_trip(&Account { balance: 1_234, nonce: 9 });
    round_trip(&Event {
        contract: AuthorityKey::from_seed(2).address(),
        topic: "consent".into(),
        data: vec![1, 2, 3],
    });
    round_trip(&Receipt {
        tx_id: Hash256::digest(b"tx"),
        ok: true,
        gas_used: 77,
        output: vec![5, 6],
        events: vec![],
        error: None,
    });
}

#[test]
fn equal_seeds_produce_identical_cohorts() {
    let a = CohortGenerator::new("site", SiteProfile::default(), 99).cohort(
        0,
        500,
        &DiseaseModel::stroke(),
    );
    let b = CohortGenerator::new("site", SiteProfile::default(), 99).cohort(
        0,
        500,
        &DiseaseModel::stroke(),
    );
    assert_eq!(a, b);

    let c = CohortGenerator::new("site", SiteProfile::default(), 100).cohort(
        0,
        500,
        &DiseaseModel::stroke(),
    );
    assert_ne!(a, c, "different seeds must diverge");
}

#[test]
fn equal_seeds_produce_identical_rng_streams() {
    let mut a = DetRng::from_seed(0xfeed);
    let mut b = DetRng::from_seed(0xfeed);
    for _ in 0..10_000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    // And the derived draw helpers stay in lockstep too.
    for _ in 0..1_000 {
        assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        assert_eq!(a.gen_f64().to_bits(), b.gen_f64().to_bits());
        assert_eq!(a.normal(0.0, 1.0).to_bits(), b.normal(0.0, 1.0).to_bits());
    }
}

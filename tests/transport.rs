//! Transport-layer integration tests: real consensus over real sockets.
//!
//! The same PoA consortium is driven over the deterministic simulator
//! and over loopback TCP, checking that (1) a socket-backed cluster
//! commits blocks, (2) both transports produce the *identical* committed
//! chain for the same seed and workload, (3) simulated bandwidth
//! accounting equals the bytes actually framed onto sockets, and (4) the
//! fault-injection wrapper reproduces the simulator's partition
//! semantics on top of TCP.

use medchain_chain::consensus::poa::{PoaEngine, PoaMsg};
use medchain_chain::consensus::{Application, Cluster};
use medchain_chain::net::{
    FaultyTransport, NodeId, SimTransport, TcpTransport, Transport, FRAME_OVERHEAD,
};
use medchain_chain::node::ChainApp;
use medchain_chain::sig::AuthorityKey;
use medchain_chain::tx::TxPayload;
use medchain_chain::{Hash256, Transaction};
use medchain_runtime::codec::Encode;

const INTERVAL_MS: u64 = 100;

/// Builds a PoA cluster over `net` with timestamps quantized to the tick
/// grid and (optionally) a pre-submitted transfer workload, so the
/// committed chain is a pure function of the configuration — not of
/// which clock the transport runs on.
fn poa_cluster<T: Transport<PoaMsg>>(
    net: T,
    interval_ms: u64,
    txs_per_key: u64,
) -> Cluster<PoaEngine, ChainApp, T> {
    let n = net.node_count();
    let (engines, registry, _) = PoaEngine::make_validators(n, interval_ms);
    let keys: Vec<AuthorityKey> = (0..n).map(|i| AuthorityKey::from_seed(i as u64)).collect();
    let mut apps: Vec<ChainApp> = (0..n)
        .map(|_| {
            let mut app = ChainApp::new("transport-test", registry.clone());
            app.set_timestamp_quantum_ms(interval_ms);
            app.set_max_block_txs(3);
            app
        })
        .collect();
    for key in &keys {
        for app in apps.iter_mut() {
            app.ledger_mut().state_mut().credit(key.address(), 1_000_000);
        }
    }
    for (i, key) in keys.iter().enumerate() {
        for nonce in 0..txs_per_key {
            let tx = Transaction::new(
                key.address(),
                nonce,
                TxPayload::Transfer { to: keys[(i + 1) % n].address(), amount: 1 },
                1_000,
            )
            .signed(key);
            for app in apps.iter_mut() {
                app.submit(tx.clone());
            }
        }
    }
    Cluster::with_transport(engines, apps, net)
}

fn tips_at<T: Transport<PoaMsg>>(
    cluster: &Cluster<PoaEngine, ChainApp, T>,
    height: u64,
) -> Vec<Hash256> {
    cluster.replicas.iter().map(|r| r.app.tip_at(height)).collect()
}

#[test]
fn tcp_poa_cluster_commits_five_blocks() {
    let net = TcpTransport::bind(4).expect("loopback bind");
    let mut cluster = poa_cluster(net, 50, 0);
    let budget = cluster.net.now_ms() + 60_000;
    let report = cluster.run_until_height(5, budget);
    assert!(report.reached, "socket cluster stalled: {report:?}");
    for replica in &cluster.replicas {
        assert!(replica.app.height() >= 5);
    }
    let tips = tips_at(&cluster, 5);
    assert!(tips.windows(2).all(|w| w[0] == w[1]), "tips diverged over TCP");
    let stats = cluster.net.stats();
    assert!(stats.delivered > 0 && stats.bytes > 0);
    cluster.shutdown();
}

#[test]
fn sim_and_tcp_reach_identical_tip_hash() {
    const HEIGHT: u64 = 4;

    let mut sim = poa_cluster(SimTransport::new(4, 7), INTERVAL_MS, 6);
    let report = sim.run_until_height(HEIGHT, 3_600_000);
    assert!(report.reached, "sim cluster stalled: {report:?}");

    let net = TcpTransport::bind(4).expect("loopback bind");
    let mut tcp = poa_cluster(net, INTERVAL_MS, 6);
    let budget = tcp.net.now_ms() + 60_000;
    let report = tcp.run_until_height(HEIGHT, budget);
    assert!(report.reached, "tcp cluster stalled: {report:?}");

    // Identical committed chain: every replica on both transports agrees
    // on the block id at the target height — same transactions, same
    // quantized timestamps, same proposers, byte-identical headers.
    let sim_tips = tips_at(&sim, HEIGHT);
    let tcp_tips = tips_at(&tcp, HEIGHT);
    assert!(sim_tips.windows(2).all(|w| w[0] == w[1]), "sim replicas diverged");
    assert!(tcp_tips.windows(2).all(|w| w[0] == w[1]), "tcp replicas diverged");
    assert_eq!(
        sim_tips[0], tcp_tips[0],
        "same seed + workload must commit the same chain on both transports"
    );
    // The workload actually committed (4 blocks × 3 txs cap).
    let committed: usize = sim.replicas[0]
        .app
        .ledger()
        .blocks()
        .iter()
        .map(|b| b.transactions.len())
        .sum();
    assert!(committed >= 9, "only {committed} txs committed");

    // Bandwidth accounting: both transports carried the same message
    // multiset, the simulator's byte meter equals the canonical payload
    // bytes TCP actually framed, and the framing overhead is exactly
    // FRAME_OVERHEAD per message.
    let sim_stats = sim.net.stats();
    let tcp_stats = tcp.net.stats();
    assert_eq!(sim_stats.sent, tcp_stats.sent, "message multiset differs");
    assert_eq!(sim_stats.bytes, tcp_stats.bytes, "payload byte accounting differs");
    assert_eq!(
        tcp.net.framed_bytes(),
        tcp_stats.bytes + tcp_stats.sent * FRAME_OVERHEAD as u64,
        "framed traffic must be payload plus fixed per-frame overhead"
    );
    tcp.shutdown();
}

#[test]
fn wire_size_is_canonical_encoded_length() {
    // Commit one block with transactions, then check every layer of the
    // Wire stack against the canonical codec.
    let mut cluster = poa_cluster(SimTransport::new(3, 3), 50, 2);
    assert!(cluster.run_until_height(1, 600_000).reached);
    let block = cluster.replicas[0].app.ledger().block(1).expect("height 1 committed").clone();
    assert!(!block.transactions.is_empty());
    assert_eq!(block.wire_size(), block.encoded().len());
    for tx in &block.transactions {
        assert_eq!(tx.wire_size(), tx.encoded().len());
    }
    use medchain_chain::net::Wire;
    let proposal = PoaMsg::Proposal {
        sig: AuthorityKey::from_seed(0).sign(&block.id().0),
        block: block.clone(),
    };
    assert_eq!(proposal.wire_size(), proposal.encoded().len());
    let sync = PoaMsg::SyncResponse { blocks: vec![block] };
    assert_eq!(sync.wire_size(), sync.encoded().len());
    // Round trip through the codec, as the TCP transport does per frame.
    let decoded = medchain_runtime::codec::Decode::decoded(&proposal.encoded());
    assert!(matches!(decoded, Ok(PoaMsg::Proposal { .. })));
}

/// Runs the "node 3 partitioned away" scenario on any transport wrapped
/// in a [`FaultyTransport`] and reports (live tip, isolated height).
fn partition_scenario<T: Transport<PoaMsg>>(inner: T, budget_ms: u64) -> (Hash256, u64) {
    let mut faulty = FaultyTransport::new(inner, 5);
    faulty.fail_node(NodeId(3));
    let mut cluster = poa_cluster(faulty, 50, 0);
    let budget = cluster.net.now_ms() + budget_ms;
    // Heights 1 and 2 belong to proposers 1 and 2; the live trio (quorum
    // 3-of-4) must commit both while node 3 stays dark.
    let report = cluster.run_until_height(2, budget);
    assert!(report.reached, "live majority stalled: {report:?}");
    let live_tips: Vec<Hash256> = (0..3).map(|i| cluster.replicas[i].app.tip_at(2)).collect();
    assert!(live_tips.windows(2).all(|w| w[0] == w[1]), "live replicas diverged");
    assert!(cluster.net.stats().dropped > 0, "partition was not exercised");
    let isolated = cluster.replicas[3].app.height();
    cluster.shutdown();
    (live_tips[0], isolated)
}

#[test]
fn faulty_partition_matches_sim_semantics_over_tcp() {
    let mut sim_inner = SimTransport::new(4, 99);
    sim_inner.set_latency(medchain_chain::net::LatencyModel::zero());
    let (sim_tip, sim_isolated) = partition_scenario(sim_inner, 3_600_000);

    let tcp_inner = TcpTransport::bind(4).expect("loopback bind");
    let (tcp_tip, tcp_isolated) = partition_scenario(tcp_inner, 60_000);

    assert_eq!(sim_isolated, 0, "partitioned node must see nothing");
    assert_eq!(tcp_isolated, 0, "partitioned node must see nothing over TCP");
    assert_eq!(sim_tip, tcp_tip, "partition outcome must agree across transports");
}

#[test]
fn faulty_full_loss_stalls_cluster() {
    let mut inner = SimTransport::new(4, 1);
    inner.set_latency(medchain_chain::net::LatencyModel::zero());
    let mut faulty = FaultyTransport::new(inner, 1);
    faulty.set_drop_rate(1.0);
    let mut cluster = poa_cluster(faulty, 50, 0);
    // Every proposal and vote is dropped: no replica ever commits.
    let report = cluster.run_until_height(1, 5_000);
    assert!(!report.reached, "total loss must stall consensus");
    assert!(cluster.net.stats().dropped > 0);
    for replica in &cluster.replicas {
        assert_eq!(replica.app.height(), 0);
    }
}

#[test]
fn medical_network_runs_over_tcp() {
    use medchain::TransportKind;
    use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile};

    let mut builder = medchain::MedicalNetwork::builder().transport(TransportKind::Tcp);
    for i in 0..3 {
        let records = CohortGenerator::new(&format!("h{i}"), SiteProfile::default(), i as u64)
            .cohort((i * 100) as u64, 2, &DiseaseModel::stroke());
        builder = builder.site(&format!("hospital-{i}"), records);
    }
    let mut net = builder.build().expect("socket-backed consortium builds");
    assert_eq!(net.transport_kind(), TransportKind::Tcp);
    assert!(net.height() > 0, "contract deployment must have committed blocks");
    let tips: Vec<Hash256> = (0..3).map(|i| net.ledger_of(i).tip().id()).collect();
    assert!(tips.windows(2).all(|w| w[0] == w[1]), "replicas diverged over TCP");
    let stats = net.net_stats();
    assert!(stats.bytes > 0 && stats.delivered > 0);
    net.shutdown();
}

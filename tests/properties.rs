//! Property-based tests over the core data structures and invariants of
//! every substrate crate, driven by the seeded `medchain_runtime::check`
//! harness (failures print the one `MEDCHAIN_CHECK_SEED` that reproduces
//! them).

use medchain_chain::hash::{Hash256, Sha256};
use medchain_chain::{Address, MerkleTree};
use medchain_contracts::policy::{AccessPolicy, Purpose};
use medchain_contracts::value::{decode_args, encode_args, Value};
use medchain_data::formats::json;
use medchain_data::formats::LegacyFormat;
use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile};
use medchain_data::Dataset;
use medchain_hie::crypto::{nonce_from, ChaCha20, DhKeypair};
use medchain_learning::decompose::{Aggregate, Partial};
use medchain_learning::linalg::weighted_average;
use medchain_runtime::check::{check, CheckConfig, Gen};
use medchain_runtime::{ensure, ensure_eq, ensure_ne};

fn random_value(g: &mut Gen) -> Value {
    if g.bool() {
        Value::Int(g.i64())
    } else {
        Value::Bytes(g.bytes(0, 200))
    }
}

#[test]
fn sha256_incremental_equals_oneshot() {
    check("sha256 incremental equals oneshot", CheckConfig::cases(64), |g| {
        let data = g.bytes(0, 500);
        let split = g.usize_in(0, data.len() + 1);
        let mut hasher = Sha256::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        ensure_eq!(hasher.finalize(), Hash256::digest(&data));
        Ok(())
    });
}

#[test]
fn merkle_proofs_verify_for_every_leaf() {
    check("merkle proofs verify for every leaf", CheckConfig::cases(64), |g| {
        let leaves = g.vec_of(1, 40, |g| g.bytes(0, 40));
        let tree = MerkleTree::from_items(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).expect("in range");
            ensure!(
                proof.verify(&Hash256::digest(leaf), &tree.root()),
                "proof for leaf {i} rejected"
            );
        }
        Ok(())
    });
}

#[test]
fn merkle_root_changes_with_any_flip() {
    check("merkle root changes with any flip", CheckConfig::cases(64), |g| {
        let leaves = g.vec_of(2, 20, |g| g.bytes(1, 30));
        let original = MerkleTree::from_items(&leaves).root();
        let mut mutated = leaves.clone();
        let i = g.usize_in(0, mutated.len());
        mutated[i][0] ^= 1;
        ensure_ne!(MerkleTree::from_items(&mutated).root(), original);
        Ok(())
    });
}

#[test]
fn value_codec_round_trips() {
    check("value codec round trips", CheckConfig::cases(64), |g| {
        let values = g.vec_of(0, 16, random_value);
        let encoded = encode_args(&values);
        ensure_eq!(decode_args(&encoded).unwrap(), values);
        Ok(())
    });
}

#[test]
fn value_codec_rejects_truncation() {
    check("value codec rejects truncation", CheckConfig::cases(64), |g| {
        let values = g.vec_of(1, 8, random_value);
        let encoded = encode_args(&values);
        let cut = ((encoded.len() as f64) * g.f64()) as usize;
        if cut < encoded.len() {
            ensure!(decode_args(&encoded[..cut]).is_err(), "truncated decode succeeded");
        }
        Ok(())
    });
}

#[test]
fn chacha20_round_trips() {
    check("chacha20 round trips", CheckConfig::cases(64), |g| {
        let key: [u8; 32] = g.byte_array();
        let id = g.u64();
        let data = g.bytes(0, 300);
        let cipher = ChaCha20::new(&key, &nonce_from(id, 0));
        ensure_eq!(cipher.decrypt(&cipher.encrypt(&data)), data);
        Ok(())
    });
}

#[test]
fn dh_agreement_is_symmetric() {
    check("dh agreement is symmetric", CheckConfig::cases(64), |g| {
        let seed_a: [u8; 8] = g.byte_array();
        let seed_b: [u8; 8] = g.byte_array();
        let ctx = g.bytes(1, 30);
        let a = DhKeypair::from_seed(&seed_a);
        let b = DhKeypair::from_seed(&seed_b);
        ensure_eq!(a.session_key(b.public, &ctx), b.session_key(a.public, &ctx));
        Ok(())
    });
}

#[test]
fn policy_value_encoding_round_trips() {
    check("policy value encoding round trips", CheckConfig::cases(64), |g| {
        let mut policy = AccessPolicy::new(Address::from_seed(g.u64()));
        if g.bool() {
            policy.require_consent();
        }
        for _ in 0..g.usize_in(0, 8) {
            let grantee = Address::from_seed(g.u64());
            let purpose = Purpose::from_code(g.rng().gen_range(0i64..5)).unwrap();
            let expiry =
                if g.bool() { Some(g.rng().gen_range(0u64..100_000)) } else { None };
            policy.grant(grantee, purpose, expiry);
        }
        let decoded = AccessPolicy::from_values(&policy.to_values()).unwrap();
        ensure_eq!(decoded, policy);
        Ok(())
    });
}

#[test]
fn weighted_average_is_bounded_by_extremes() {
    check("weighted average is bounded by extremes", CheckConfig::cases(64), |g| {
        let vectors = g.vec_of(1, 6, |g| {
            (0..3).map(|_| g.f64_in(-100.0, 100.0)).collect::<Vec<f64>>()
        });
        let weights: Vec<f64> = (0..vectors.len()).map(|_| g.f64_in(0.1, 10.0)).collect();
        let avg = weighted_average(&vectors, &weights);
        for dim in 0..3 {
            let lo = vectors.iter().map(|v| v[dim]).fold(f64::INFINITY, f64::min);
            let hi = vectors.iter().map(|v| v[dim]).fold(f64::NEG_INFINITY, f64::max);
            ensure!(
                avg[dim] >= lo - 1e-9 && avg[dim] <= hi + 1e-9,
                "dim {dim}: {} outside [{lo}, {hi}]",
                avg[dim]
            );
        }
        Ok(())
    });
}

#[test]
fn aggregates_decompose_exactly_for_any_partition() {
    check("aggregates decompose exactly for any partition", CheckConfig::cases(32), |g| {
        let records = CohortGenerator::new("prop", SiteProfile::default(), g.u64())
            .cohort(0, 120, &DiseaseModel::stroke());
        let cuts = g.vec_of(0, 4, |g| g.usize_in(1, 100));
        for aggregate in [
            Aggregate::Count,
            Aggregate::Mean(medchain_data::Field::Age),
            Aggregate::Variance(medchain_data::Field::SystolicBp),
        ] {
            let whole = aggregate.compute(&records).scalar();
            // Partition at arbitrary cut points.
            let mut partials: Vec<Partial> = Vec::new();
            let mut start = 0usize;
            let mut bounds: Vec<usize> = cuts.iter().map(|c| c % records.len()).collect();
            bounds.sort_unstable();
            bounds.dedup();
            for b in bounds {
                if b > start {
                    partials.push(aggregate.map_site(&records[start..b]));
                    start = b;
                }
            }
            partials.push(aggregate.map_site(&records[start..]));
            let composed = aggregate.compose(&partials).scalar();
            ensure!(
                (whole - composed).abs() < 1e-9,
                "{aggregate:?}: {whole} vs {composed}"
            );
        }
        Ok(())
    });
}

#[test]
fn json_round_trips_arbitrary_strings() {
    check("json round trips arbitrary strings", CheckConfig::cases(64), |g| {
        let doc = json::Json::String(g.string(60));
        let parsed = json::parse(&doc.to_text()).unwrap();
        ensure_eq!(parsed, doc);
        Ok(())
    });
}

#[test]
fn dataset_split_preserves_rows() {
    check("dataset split preserves rows", CheckConfig::cases(64), |g| {
        let seed = g.u64();
        let frac = g.f64();
        let records = CohortGenerator::new("prop", SiteProfile::default(), seed)
            .cohort(0, 60, &DiseaseModel::stroke());
        let data = Dataset::from_records(&records, "I63");
        let (train, test) = data.train_test_split(frac, seed);
        ensure_eq!(train.len() + test.len(), data.len());
        let total_pos = data.labels.iter().sum::<f64>();
        let split_pos = train.labels.iter().sum::<f64>() + test.labels.iter().sum::<f64>();
        ensure!((total_pos - split_pos).abs() < 1e-9, "positives not preserved");
        Ok(())
    });
}

#[test]
fn fhir_codec_round_trips_generated_records() {
    check("fhir codec round trips generated records", CheckConfig::cases(32), |g| {
        let records = CohortGenerator::new("prop", SiteProfile::default(), g.u64())
            .cohort(0, 5, &DiseaseModel::cancer());
        let codec = medchain_data::formats::fhir::FhirLikeFormat;
        for record in &records {
            let decoded = codec.decode(&codec.encode(record)).unwrap();
            ensure_eq!(decoded.patient_id, record.patient_id);
            ensure_eq!(&decoded.diagnoses, &record.diagnoses);
            ensure_eq!(&decoded.genomics, &record.genomics);
        }
        Ok(())
    });
}

#[test]
fn hash_hex_round_trips() {
    check("hash hex round trips", CheckConfig::cases(64), |g| {
        let h = Hash256(g.byte_array());
        ensure_eq!(Hash256::from_hex(&h.to_hex()).unwrap(), h);
        Ok(())
    });
}

// === VM fuzzing and ledger invariants ===

use medchain_chain::ledger::{Ledger, NullRuntime};
use medchain_chain::sig::{AuthorityKey, KeyRegistry};
use medchain_chain::tx::{Transaction, TxPayload};
use medchain_chain::WorldState;
use medchain_contracts::opcode::{decode_program, encode_program, Instr};
use medchain_contracts::vm::{execute, CallEnv};

fn random_instr(g: &mut Gen) -> Instr {
    match g.usize_in(0, 34) {
        0 => Instr::PushInt(g.i64()),
        1 => Instr::PushBytes(g.bytes(0, 24)),
        2 => Instr::Pop,
        3 => Instr::Dup(g.rng().gen_range(0u8..4)),
        4 => Instr::Swap(g.rng().gen_range(0u8..4)),
        5 => Instr::Add,
        6 => Instr::Sub,
        7 => Instr::Mul,
        8 => Instr::Div,
        9 => Instr::Mod,
        10 => Instr::Neg,
        11 => Instr::Eq,
        12 => Instr::Lt,
        13 => Instr::Gt,
        14 => Instr::Not,
        15 => Instr::And,
        16 => Instr::Or,
        17 => Instr::Jump(g.rng().gen_range(0u16..40)),
        18 => Instr::JumpIf(g.rng().gen_range(0u16..40)),
        19 => Instr::Halt,
        20 => Instr::Revert,
        21 => Instr::Caller,
        22 => Instr::SelfAddr,
        23 => Instr::Arg(g.rng().gen_range(0u8..4)),
        24 => Instr::ArgCount,
        25 => Instr::SLoad,
        26 => Instr::SStore,
        27 => Instr::Emit,
        28 => Instr::Sha256,
        29 => Instr::Concat,
        30 => Instr::Len,
        31 => Instr::IntToBytes,
        32 => Instr::BytesToInt,
        // Burn bounded by the gas limit below anyway.
        _ => Instr::Burn,
    }
}

/// Fuzz: arbitrary programs never panic the interpreter — they halt,
/// trap, or run out of gas, but the host survives.
#[test]
fn vm_random_programs_never_panic() {
    check("vm random programs never panic", CheckConfig::cases(128), |g| {
        let program = g.vec_of(0, 40, random_instr);
        let args = g.vec_of(0, 4, random_value);
        let env = CallEnv::new(Address::from_seed(1), Address::from_seed(2), &args, 20_000);
        let mut state = WorldState::new();
        let _ = execute(&program, &env, &mut state);
        Ok(())
    });
}

/// Fuzz: bytecode round-trips for arbitrary programs.
#[test]
fn bytecode_round_trips_arbitrary_programs() {
    check("bytecode round trips arbitrary programs", CheckConfig::cases(128), |g| {
        let program = g.vec_of(0, 60, random_instr);
        let encoded = encode_program(&program);
        ensure_eq!(decode_program(&encoded).unwrap(), program);
        Ok(())
    });
}

/// Fuzz: arbitrary byte blobs never panic the bytecode decoder.
#[test]
fn bytecode_decoder_survives_garbage() {
    check("bytecode decoder survives garbage", CheckConfig::cases(128), |g| {
        let blob = g.bytes(0, 200);
        let _ = decode_program(&blob);
        Ok(())
    });
}

/// Ledger invariant: the total token supply is conserved under any
/// sequence of transfers (successful or failed).
#[test]
fn token_supply_is_conserved() {
    check("token supply is conserved", CheckConfig::cases(64), |g| {
        let transfers = g.vec_of(1, 25, |g| {
            (g.usize_in(0, 3), g.usize_in(0, 3), g.rng().gen_range(0u64..2_000))
        });
        let keys: Vec<AuthorityKey> =
            (0..3).map(|i| AuthorityKey::from_seed(i as u64)).collect();
        let mut registry = KeyRegistry::new();
        for k in &keys {
            registry.enroll(k);
        }
        let mut ledger = Ledger::new("supply-prop", registry, Box::new(NullRuntime));
        for k in &keys {
            ledger.state_mut().credit(k.address(), 1_000);
        }
        let supply_before: u64 =
            keys.iter().map(|k| ledger.state().account(&k.address()).balance).sum();

        let mut nonces = [0u64; 3];
        let txs: Vec<Transaction> = transfers
            .iter()
            .map(|&(from, to, amount)| {
                let tx = Transaction::new(
                    keys[from].address(),
                    nonces[from],
                    TxPayload::Transfer { to: keys[to].address(), amount },
                    1_000,
                )
                .signed(&keys[from]);
                nonces[from] += 1;
                tx
            })
            .collect();
        let block = ledger.propose(keys[0].address(), 10, txs);
        ledger.apply(&block).unwrap();

        let supply_after: u64 =
            keys.iter().map(|k| ledger.state().account(&k.address()).balance).sum();
        ensure_eq!(supply_before, supply_after);
        Ok(())
    });
}

// === Persistence codec round-trips (durable storage subsystem) ===
//
// The segmented WAL and snapshot files persist canonical-codec `Block`
// and `WorldState` bytes; these properties pin the codec as total and
// identity-preserving over arbitrary well-formed values, so anything the
// store writes comes back bit-equal (and hash-equal) on recovery.

use medchain_chain::block::{Block, Header, Seal};
use medchain_chain::shard::ShardId;

/// Any shard a header can carry: unsharded, a data shard, or the
/// coordinator chain.
fn random_shard(g: &mut Gen) -> ShardId {
    match g.usize_in(0, 2) {
        0 => ShardId::default(),
        1 => ShardId(g.rng().gen_range(0u16..8)),
        _ => ShardId::COORDINATOR,
    }
}
use medchain_runtime::codec::{Decode, Encode, Reader};

fn random_payload(g: &mut Gen) -> TxPayload {
    match g.usize_in(0, 4) {
        0 => TxPayload::Transfer {
            to: Address::from_seed(g.u64()),
            amount: g.rng().gen_range(0u64..1_000_000),
        },
        1 => TxPayload::Deploy { code: g.bytes(0, 60), init: g.bytes(0, 30) },
        2 => TxPayload::Invoke { contract: Address::from_seed(g.u64()), input: g.bytes(0, 40) },
        _ => TxPayload::Anchor { root: Hash256(g.byte_array()), label: g.string(16) },
    }
}

fn random_signed_tx(g: &mut Gen, keys: &[AuthorityKey]) -> Transaction {
    let key = &keys[g.usize_in(0, keys.len())];
    let nonce = g.rng().gen_range(0u64..1_000);
    let gas = g.rng().gen_range(0u64..100_000);
    Transaction::new(key.address(), nonce, random_payload(g), gas).signed(key)
}

fn random_seal(g: &mut Gen, keys: &[AuthorityKey], digest: &Hash256) -> Seal {
    match g.usize_in(0, 5) {
        0 => Seal::Genesis,
        1 => Seal::Authority {
            proposer: keys[0].sign(&digest.0),
            votes: keys.iter().map(|k| k.sign(&digest.0)).collect(),
        },
        2 => Seal::Pbft {
            view: g.rng().gen_range(0u64..10),
            commits: keys.iter().map(|k| k.sign(&digest.0)).collect(),
        },
        3 => Seal::Work { nonce: g.u64(), difficulty_bits: g.rng().gen_range(0u32..20) },
        _ => Seal::Stake {
            winner: keys[0].sign(&digest.0),
            stake: g.rng().gen_range(1u64..1_000_000),
        },
    }
}

/// Persistence property: any well-formed block survives the canonical
/// codec bit-equal, with no trailing bytes and the same block id.
#[test]
fn block_codec_round_trips_arbitrary_blocks() {
    check("block codec round trips arbitrary blocks", CheckConfig::cases(64), |g| {
        let keys: Vec<AuthorityKey> =
            (0..3).map(|i| AuthorityKey::from_seed(100 + i as u64)).collect();
        let header = Header {
            height: g.u64(),
            parent: Hash256(g.byte_array()),
            tx_root: Hash256(g.byte_array()),
            state_root: Hash256(g.byte_array()),
            timestamp_ms: g.u64(),
            proposer: Address::from_seed(g.u64()),
            shard: random_shard(g),
        };
        let digest = header.digest();
        let block = Block {
            header,
            transactions: g.vec_of(0, 8, |g| random_signed_tx(g, &keys)),
            seal: random_seal(g, &keys, &digest),
        };
        let bytes = block.encoded();
        let mut reader = Reader::new(&bytes);
        let decoded = Block::decode(&mut reader).expect("decodes");
        ensure_eq!(reader.remaining(), 0);
        ensure_eq!(decoded, block);
        ensure_eq!(decoded.id(), block.id());
        Ok(())
    });
}

/// Persistence property: any world state built from the public mutators
/// round-trips through the canonical codec with its state root intact —
/// the exact check snapshot recovery performs against the tip header.
#[test]
fn world_state_codec_round_trips_and_preserves_root() {
    check("world state codec round trips", CheckConfig::cases(64), |g| {
        let mut state = WorldState::new();
        for _ in 0..g.usize_in(0, 10) {
            state.credit(Address::from_seed(g.u64()), g.rng().gen_range(0u64..1_000_000));
        }
        for _ in 0..g.usize_in(0, 10) {
            state.set_storage(Address::from_seed(g.u64()), g.bytes(0, 16), g.bytes(0, 32));
        }
        for _ in 0..g.usize_in(0, 4) {
            state.set_code(Address::from_seed(g.u64()), g.bytes(1, 60));
        }
        for _ in 0..g.usize_in(0, 4) {
            state.set_anchor(&g.string(12), Hash256(g.byte_array()));
        }
        let bytes = state.encoded();
        let mut reader = Reader::new(&bytes);
        let decoded = WorldState::decode(&mut reader).expect("decodes");
        ensure_eq!(reader.remaining(), 0);
        ensure_eq!(decoded, state);
        ensure_eq!(decoded.state_root(), state.state_root());
        Ok(())
    });
}

/// Persistence property: truncating the canonical block encoding at any
/// point never panics the decoder — it errors (or, if the cut lands on a
/// prefix that parses, leaves trailing state the store's framing
/// rejects via CRC).
#[test]
fn block_decoder_survives_truncation() {
    check("block decoder survives truncation", CheckConfig::cases(64), |g| {
        let keys = [AuthorityKey::from_seed(5)];
        let header = Header {
            height: g.u64(),
            parent: Hash256(g.byte_array()),
            tx_root: Hash256(g.byte_array()),
            state_root: Hash256(g.byte_array()),
            timestamp_ms: g.u64(),
            proposer: Address::from_seed(g.u64()),
            shard: random_shard(g),
        };
        let digest = header.digest();
        let block = Block {
            header,
            transactions: g.vec_of(0, 4, |g| random_signed_tx(g, &keys)),
            seal: random_seal(g, &keys, &digest),
        };
        let bytes = block.encoded();
        let cut = g.usize_in(0, bytes.len());
        let mut reader = Reader::new(&bytes[..cut]);
        let _ = Block::decode(&mut reader);
        Ok(())
    });
}

/// Receipts-as-API property (DESIGN.md §10): a [`TxReceipt`]'s Merkle
/// inclusion proof verifies for any block size and transaction index —
/// and **any** single-byte tamper of the leaf (the tx id), of any
/// sibling hash on the proof path, or of the root makes verification
/// fail. (The batch-ordering invariant that used to live here moved
/// next to the mempool in `crates/chain/src/mempool.rs`.)
#[test]
fn tx_receipt_proof_verifies_and_rejects_every_single_byte_tamper() {
    use medchain_chain::receipt::TxReceipt;
    check("tx receipt proofs reject tampering", CheckConfig::cases(48), |g| {
        let key = AuthorityKey::from_seed(7);
        let mut registry = KeyRegistry::new();
        registry.enroll(&key);
        let mut ledger = Ledger::new("receipt-prop", registry, Box::new(NullRuntime));
        let n = g.usize_in(1, 24);
        let txs: Vec<Transaction> = (0..n)
            .map(|nonce| {
                Transaction::new(
                    key.address(),
                    nonce as u64,
                    TxPayload::Anchor {
                        root: Hash256(g.byte_array()),
                        label: format!("ds/{nonce}"),
                    },
                    1_000,
                )
                .signed(&key)
            })
            .collect();
        let block = ledger.propose(key.address(), 10, txs);
        ledger.apply(&block).expect("block applies");

        let index = g.usize_in(0, n);
        let tx_id = block.transactions[index].id();
        let exec = ledger.receipt(&tx_id).expect("executed").clone();
        let receipt = TxReceipt::for_block(&block, tx_id, &exec).expect("included");
        ensure!(receipt.verify(), "untampered proof rejected");
        ensure!(
            receipt.verify_against(&block.header.tx_root),
            "proof rejected against the committed root"
        );

        // Leaf tampering: every byte of the proven tx id.
        for byte in 0..32 {
            let mut tampered = receipt.clone();
            tampered.tx_id.0[byte] ^= 1;
            ensure!(
                !tampered.verify_against(&block.header.tx_root),
                "leaf byte {byte} tamper verified"
            );
        }
        // Root tampering: every byte of the carried root.
        for byte in 0..32 {
            let mut tampered = receipt.clone();
            tampered.tx_root.0[byte] ^= 1;
            ensure!(!tampered.verify(), "root byte {byte} tamper verified");
        }
        // Path tampering: every byte of every sibling hash.
        for step in 0..receipt.proof.path.len() {
            for byte in 0..32 {
                let mut tampered = receipt.clone();
                tampered.proof.path[step].sibling.0[byte] ^= 1;
                ensure!(
                    !tampered.verify_against(&block.header.tx_root),
                    "path step {step} byte {byte} tamper verified"
                );
            }
        }
        Ok(())
    });
}

//! Property-based tests (proptest) over the core data structures and
//! invariants of every substrate crate.

use medchain_chain::hash::{Hash256, Sha256};
use medchain_chain::{Address, MerkleTree};
use medchain_contracts::policy::{AccessPolicy, Purpose};
use medchain_contracts::value::{decode_args, encode_args, Value};
use medchain_data::formats::json;
use medchain_data::formats::LegacyFormat;
use medchain_data::synth::{CohortGenerator, DiseaseModel, SiteProfile};
use medchain_data::Dataset;
use medchain_hie::crypto::{nonce_from, ChaCha20, DhKeypair};
use medchain_learning::decompose::{Aggregate, Partial};
use medchain_learning::linalg::weighted_average;
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        proptest::collection::vec(any::<u8>(), 0..200).prop_map(Value::Bytes),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..500), split in 0usize..500) {
        let split = split.min(data.len());
        let mut hasher = Sha256::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), Hash256::digest(&data));
    }

    #[test]
    fn merkle_proofs_verify_for_every_leaf(leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..40)) {
        let tree = MerkleTree::from_items(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).expect("in range");
            prop_assert!(proof.verify(&Hash256::digest(leaf), &tree.root()));
        }
    }

    #[test]
    fn merkle_root_changes_with_any_flip(leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..30), 2..20), index in any::<prop::sample::Index>()) {
        let original = MerkleTree::from_items(&leaves).root();
        let mut mutated = leaves.clone();
        let i = index.index(mutated.len());
        mutated[i][0] ^= 1;
        prop_assert_ne!(MerkleTree::from_items(&mutated).root(), original);
    }

    #[test]
    fn value_codec_round_trips(values in proptest::collection::vec(value_strategy(), 0..16)) {
        let encoded = encode_args(&values);
        prop_assert_eq!(decode_args(&encoded).unwrap(), values);
    }

    #[test]
    fn value_codec_rejects_truncation(values in proptest::collection::vec(value_strategy(), 1..8), cut_fraction in 0.0f64..1.0) {
        let encoded = encode_args(&values);
        let cut = ((encoded.len() as f64) * cut_fraction) as usize;
        if cut < encoded.len() {
            prop_assert!(decode_args(&encoded[..cut]).is_err());
        }
    }

    #[test]
    fn chacha20_round_trips(key in any::<[u8; 32]>(), id in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let cipher = ChaCha20::new(&key, &nonce_from(id, 0));
        prop_assert_eq!(cipher.decrypt(&cipher.encrypt(&data)), data);
    }

    #[test]
    fn dh_agreement_is_symmetric(seed_a in any::<[u8; 8]>(), seed_b in any::<[u8; 8]>(), ctx in proptest::collection::vec(any::<u8>(), 1..30)) {
        let a = DhKeypair::from_seed(&seed_a);
        let b = DhKeypair::from_seed(&seed_b);
        prop_assert_eq!(a.session_key(b.public, &ctx), b.session_key(a.public, &ctx));
    }

    #[test]
    fn policy_value_encoding_round_trips(
        owner_seed in any::<u64>(),
        grants in proptest::collection::vec((any::<u64>(), 0i64..5, proptest::option::of(0u64..100_000)), 0..8),
        consent in any::<bool>(),
    ) {
        let mut policy = AccessPolicy::new(Address::from_seed(owner_seed));
        if consent {
            policy.require_consent();
        }
        for (seed, purpose_code, expiry) in grants {
            policy.grant(
                Address::from_seed(seed),
                Purpose::from_code(purpose_code).unwrap(),
                expiry,
            );
        }
        let decoded = AccessPolicy::from_values(&policy.to_values()).unwrap();
        prop_assert_eq!(decoded, policy);
    }

    #[test]
    fn weighted_average_is_bounded_by_extremes(
        vectors in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 3),
            1..6,
        ),
        weights in proptest::collection::vec(0.1f64..10.0, 6),
    ) {
        let weights = &weights[..vectors.len()];
        let avg = weighted_average(&vectors, weights);
        for dim in 0..3 {
            let lo = vectors.iter().map(|v| v[dim]).fold(f64::INFINITY, f64::min);
            let hi = vectors.iter().map(|v| v[dim]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(avg[dim] >= lo - 1e-9 && avg[dim] <= hi + 1e-9);
        }
    }

    #[test]
    fn aggregates_decompose_exactly_for_any_partition(
        seed in any::<u64>(),
        cuts in proptest::collection::vec(1usize..100, 0..4),
    ) {
        let records = CohortGenerator::new("prop", SiteProfile::default(), seed)
            .cohort(0, 120, &DiseaseModel::stroke());
        for aggregate in [
            Aggregate::Count,
            Aggregate::Mean(medchain_data::Field::Age),
            Aggregate::Variance(medchain_data::Field::SystolicBp),
        ] {
            let whole = aggregate.compute(&records).scalar();
            // Partition at arbitrary cut points.
            let mut partials: Vec<Partial> = Vec::new();
            let mut start = 0usize;
            let mut bounds: Vec<usize> = cuts.iter().map(|c| c % records.len()).collect();
            bounds.sort_unstable();
            bounds.dedup();
            for b in bounds {
                if b > start {
                    partials.push(aggregate.map_site(&records[start..b]));
                    start = b;
                }
            }
            partials.push(aggregate.map_site(&records[start..]));
            let composed = aggregate.compose(&partials).scalar();
            prop_assert!((whole - composed).abs() < 1e-9, "{aggregate:?}: {whole} vs {composed}");
        }
    }

    #[test]
    fn json_round_trips_arbitrary_strings(s in "\\PC{0,60}") {
        let doc = json::Json::String(s.clone());
        let parsed = json::parse(&doc.to_text()).unwrap();
        prop_assert_eq!(parsed, doc);
    }

    #[test]
    fn dataset_split_preserves_rows(seed in any::<u64>(), frac in 0.0f64..1.0) {
        let records = CohortGenerator::new("prop", SiteProfile::default(), seed)
            .cohort(0, 60, &DiseaseModel::stroke());
        let data = Dataset::from_records(&records, "I63");
        let (train, test) = data.train_test_split(frac, seed);
        prop_assert_eq!(train.len() + test.len(), data.len());
        let total_pos = data.labels.iter().sum::<f64>();
        let split_pos = train.labels.iter().sum::<f64>() + test.labels.iter().sum::<f64>();
        prop_assert!((total_pos - split_pos).abs() < 1e-9);
    }

    #[test]
    fn fhir_codec_round_trips_generated_records(seed in any::<u64>()) {
        let records = CohortGenerator::new("prop", SiteProfile::default(), seed)
            .cohort(0, 5, &DiseaseModel::cancer());
        let codec = medchain_data::formats::fhir::FhirLikeFormat;
        for record in &records {
            let decoded = codec.decode(&codec.encode(record)).unwrap();
            prop_assert_eq!(decoded.patient_id, record.patient_id);
            prop_assert_eq!(&decoded.diagnoses, &record.diagnoses);
            prop_assert_eq!(&decoded.genomics, &record.genomics);
        }
    }

    #[test]
    fn hash_hex_round_trips(bytes in any::<[u8; 32]>()) {
        let h = Hash256(bytes);
        prop_assert_eq!(Hash256::from_hex(&h.to_hex()).unwrap(), h);
    }
}

// === VM fuzzing and ledger invariants ===

use medchain_chain::ledger::{Ledger, NullRuntime};
use medchain_chain::sig::{AuthorityKey, KeyRegistry};
use medchain_chain::tx::{Transaction, TxPayload};
use medchain_contracts::opcode::{decode_program, encode_program, Instr};
use medchain_contracts::vm::{execute, CallEnv};
use medchain_chain::WorldState;

fn instr_strategy() -> impl Strategy<Value = Instr> {
    prop_oneof![
        any::<i64>().prop_map(Instr::PushInt),
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(Instr::PushBytes),
        Just(Instr::Pop),
        (0u8..4).prop_map(Instr::Dup),
        (0u8..4).prop_map(Instr::Swap),
        Just(Instr::Add),
        Just(Instr::Sub),
        Just(Instr::Mul),
        Just(Instr::Div),
        Just(Instr::Mod),
        Just(Instr::Neg),
        Just(Instr::Eq),
        Just(Instr::Lt),
        Just(Instr::Gt),
        Just(Instr::Not),
        Just(Instr::And),
        Just(Instr::Or),
        (0u16..40).prop_map(Instr::Jump),
        (0u16..40).prop_map(Instr::JumpIf),
        Just(Instr::Halt),
        Just(Instr::Revert),
        Just(Instr::Caller),
        Just(Instr::SelfAddr),
        (0u8..4).prop_map(Instr::Arg),
        Just(Instr::ArgCount),
        Just(Instr::SLoad),
        Just(Instr::SStore),
        Just(Instr::Emit),
        Just(Instr::Sha256),
        Just(Instr::Concat),
        Just(Instr::Len),
        Just(Instr::IntToBytes),
        Just(Instr::BytesToInt),
        // Burn bounded by the gas limit below anyway.
        Just(Instr::Burn),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fuzz: arbitrary programs never panic the interpreter — they halt,
    /// trap, or run out of gas, but the host survives.
    #[test]
    fn vm_random_programs_never_panic(
        program in proptest::collection::vec(instr_strategy(), 0..40),
        args in proptest::collection::vec(value_strategy(), 0..4),
    ) {
        let env = CallEnv::new(Address::from_seed(1), Address::from_seed(2), &args, 20_000);
        let mut state = WorldState::new();
        let _ = execute(&program, &env, &mut state);
    }

    /// Fuzz: bytecode round-trips for arbitrary programs.
    #[test]
    fn bytecode_round_trips_arbitrary_programs(
        program in proptest::collection::vec(instr_strategy(), 0..60),
    ) {
        let encoded = encode_program(&program);
        prop_assert_eq!(decode_program(&encoded).unwrap(), program);
    }

    /// Fuzz: arbitrary byte blobs never panic the bytecode decoder.
    #[test]
    fn bytecode_decoder_survives_garbage(blob in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_program(&blob);
    }

    /// Ledger invariant: the total token supply is conserved under any
    /// sequence of transfers (successful or failed).
    #[test]
    fn token_supply_is_conserved(
        transfers in proptest::collection::vec((0usize..3, 0usize..3, 0u64..2_000), 1..25),
    ) {
        let keys: Vec<AuthorityKey> = (0..3).map(|i| AuthorityKey::from_seed(i as u64)).collect();
        let mut registry = KeyRegistry::new();
        for k in &keys {
            registry.enroll(k);
        }
        let mut ledger = Ledger::new("supply-prop", registry, Box::new(NullRuntime));
        for k in &keys {
            ledger.state_mut().credit(k.address(), 1_000);
        }
        let supply_before: u64 =
            keys.iter().map(|k| ledger.state().account(&k.address()).balance).sum();

        let mut nonces = [0u64; 3];
        let txs: Vec<Transaction> = transfers
            .iter()
            .map(|&(from, to, amount)| {
                let tx = Transaction::new(
                    keys[from].address(),
                    nonces[from],
                    TxPayload::Transfer { to: keys[to].address(), amount },
                    1_000,
                )
                .signed(&keys[from]);
                nonces[from] += 1;
                tx
            })
            .collect();
        let block = ledger.propose(keys[0].address(), 10, txs);
        ledger.apply(&block).unwrap();

        let supply_after: u64 =
            keys.iter().map(|k| ledger.state().account(&k.address()).balance).sum();
        prop_assert_eq!(supply_before, supply_after);
    }

    /// Mempool invariant: batches are gap-free nonce runs per sender.
    #[test]
    fn mempool_batches_are_nonce_ordered(
        inserts in proptest::collection::vec((0usize..3, 0u64..8), 1..30),
        max in 1usize..20,
    ) {
        use medchain_chain::mempool::Mempool;
        let keys: Vec<AuthorityKey> = (0..3).map(|i| AuthorityKey::from_seed(i as u64)).collect();
        let mut pool = Mempool::new(256);
        for &(who, nonce) in &inserts {
            let tx = Transaction::new(
                keys[who].address(),
                nonce,
                TxPayload::Transfer { to: keys[(who + 1) % 3].address(), amount: 1 },
                100,
            )
            .signed(&keys[who]);
            pool.insert(tx);
        }
        let batch = pool.take_batch(max, |_| 0);
        prop_assert!(batch.len() <= max);
        // Per sender: nonces start at 0 and are contiguous.
        for key in &keys {
            let nonces: Vec<u64> = batch
                .iter()
                .filter(|tx| tx.sender == key.address())
                .map(|tx| tx.nonce)
                .collect();
            for (i, n) in nonces.iter().enumerate() {
                prop_assert_eq!(*n, i as u64, "sender batch not contiguous: {:?}", nonces);
            }
        }
    }
}

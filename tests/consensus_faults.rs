//! Failure-injection tests for the consensus substrate: crashes,
//! message loss, WAN latency, and cross-engine agreement under a real
//! transaction workload.

use medchain_chain::consensus::pbft::PbftEngine;
use medchain_chain::consensus::poa::PoaEngine;
use medchain_chain::consensus::pos::PosEngine;
use medchain_chain::consensus::{Application, Cluster, Engine};
use medchain_chain::net::{LatencyModel, NodeId};
use medchain_chain::node::ChainApp;
use medchain_chain::sig::AuthorityKey;
use medchain_chain::tx::TxPayload;
use medchain_chain::{Hash256, KeyRegistry, Transaction};

fn fund_and_submit(apps: &mut [ChainApp], keys: &[AuthorityKey], txs: u64) {
    for key in keys {
        for app in apps.iter_mut() {
            app.ledger_mut().state_mut().credit(key.address(), 1_000_000);
        }
    }
    for (i, key) in keys.iter().enumerate() {
        for n in 0..txs {
            let tx = Transaction::new(
                key.address(),
                n,
                TxPayload::Transfer { to: keys[(i + 1) % keys.len()].address(), amount: 1 },
                1_000,
            )
            .signed(key);
            for app in apps.iter_mut() {
                app.submit(tx.clone());
            }
        }
    }
}

fn keys(n: usize) -> (Vec<AuthorityKey>, KeyRegistry) {
    let keys: Vec<AuthorityKey> = (0..n).map(|i| AuthorityKey::from_seed(i as u64)).collect();
    let mut registry = KeyRegistry::new();
    for k in &keys {
        registry.enroll(k);
    }
    (keys, registry)
}

fn assert_agreement<E: Engine>(cluster: &Cluster<E, ChainApp>, height: u64, live: &[usize]) {
    let ids: Vec<Hash256> =
        live.iter().map(|&i| cluster.replicas[i].app.tip_at(height)).collect();
    assert!(ids.windows(2).all(|w| w[0] == w[1]), "divergence at height {height}");
}

#[test]
fn poa_commits_transfer_workload_under_wan_latency() {
    let n = 5;
    let (ks, registry) = keys(n);
    let (engines, _, _) = PoaEngine::make_validators(n, 80);
    let mut apps: Vec<ChainApp> =
        (0..n).map(|_| ChainApp::new("fault-test", registry.clone())).collect();
    fund_and_submit(&mut apps, &ks, 20);
    let mut cluster = Cluster::new(engines, apps, 9);
    cluster.net.set_latency(LatencyModel::wan());
    let report = cluster.run_until_height(4, 3_600_000);
    assert!(report.reached, "stalled under WAN latency: {report:?}");
    assert_agreement(&cluster, 4, &[0, 1, 2, 3, 4]);
    // The workload actually committed.
    let committed: usize = cluster.replicas[0]
        .app
        .ledger()
        .blocks()
        .iter()
        .map(|b| b.transactions.len())
        .sum();
    assert!(committed >= 60, "only {committed} txs committed");
}

#[test]
fn poa_tolerates_moderate_message_loss() {
    let n = 4;
    let (_, registry) = keys(n);
    let (engines, _, _) = PoaEngine::make_validators(n, 60);
    let apps: Vec<ChainApp> =
        (0..n).map(|_| ChainApp::new("lossy-test", registry.clone())).collect();
    let mut cluster = Cluster::new(engines, apps, 10);
    cluster.net.set_drop_rate(0.05);
    let report = cluster.run_until_height(3, 3_600_000);
    assert!(report.reached, "stalled under 5% loss: {report:?}");
    assert_agreement(&cluster, 3, &[0, 1, 2, 3]);
    assert!(cluster.net.stats().dropped > 0, "loss was not exercised");
}

#[test]
fn pbft_recovers_from_cascading_primary_failures() {
    let n = 7; // f = 2: survives two crashed primaries
    let (_, registry) = keys(n);
    let (engines, _, _) = PbftEngine::make_replicas(n, 40, 1_500);
    let apps: Vec<ChainApp> =
        (0..n).map(|_| ChainApp::new("cascade-test", registry.clone())).collect();
    let mut cluster = Cluster::new(engines, apps, 11);
    cluster.run_until_height(1, 600_000);
    // Crash the view-0 primary, wait for recovery, then crash the next.
    cluster.net.fail_node(NodeId(0));
    let report = cluster.run_until_height(2, 3_600_000);
    assert!(report.reached, "no recovery from first crash");
    cluster.net.fail_node(NodeId(1));
    let report = cluster.run_until_height(3, 7_200_000);
    assert!(report.reached, "no recovery from second crash");
    assert_agreement(&cluster, 3, &[2, 3, 4, 5, 6]);
}

#[test]
fn pos_progresses_with_crashed_minority_stake() {
    let n = 5;
    let (_, registry) = keys(n);
    let (engines, _) = PosEngine::make_stakers(n, Some(vec![100, 100, 100, 100, 100]), 100);
    let apps: Vec<ChainApp> =
        (0..n).map(|_| ChainApp::new("pos-fault", registry.clone())).collect();
    let mut cluster = Cluster::new(engines, apps, 12);
    cluster.run_until_height(1, 1_200_000);
    cluster.net.fail_node(NodeId(4));
    let report = cluster.run_until_height(3, 3_600_000);
    assert!(report.reached, "PoS stalled after one staker crashed: {report:?}");
    assert_agreement(&cluster, 3, &[0, 1, 2, 3]);
}

#[test]
fn healed_node_rejoins_poa_progress() {
    let n = 4;
    let (_, registry) = keys(n);
    let (engines, _, _) = PoaEngine::make_validators(n, 60);
    let apps: Vec<ChainApp> =
        (0..n).map(|_| ChainApp::new("heal-test", registry.clone())).collect();
    let mut cluster = Cluster::new(engines, apps, 13);
    cluster.run_until_height(1, 600_000);
    // Fail the proposer of height 2 (validators rotate round-robin, so
    // height 2 belongs to node 2): progress stalls at height 1.
    cluster.net.fail_node(NodeId(2));
    let stalled = cluster.run_until_height(2, cluster.net.now_ms() + 5_000);
    assert!(!stalled.reached, "height 2 should stall without its proposer");
    // Heal and kick: the simulator dropped the node's timers while it
    // was failed, so it must be restarted to resume ticking.
    cluster.net.heal_node(NodeId(2));
    cluster.kick(NodeId(2));
    let report = cluster.run_until_height(3, 3_600_000);
    assert!(report.reached, "healed proposer should unblock the chain: {report:?}");
    assert_agreement(&cluster, 3, &[0, 1, 2, 3]);
}

#[test]
fn all_engines_reject_foreign_blocks() {
    // A block body or state root forged by a non-member never commits:
    // covered at the ledger layer — exercise via a PoA cluster receiving
    // transactions signed by a non-enrolled key.
    let n = 3;
    let (_, registry) = keys(n);
    let (engines, _, _) = PoaEngine::make_validators(n, 50);
    let mut apps: Vec<ChainApp> =
        (0..n).map(|_| ChainApp::new("foreign-test", registry.clone())).collect();
    let intruder = AuthorityKey::from_seed(999);
    let tx = Transaction::new(
        intruder.address(),
        0,
        TxPayload::Anchor { root: Hash256::digest(b"malicious"), label: "evil".into() },
        100,
    )
    .signed(&intruder);
    for app in apps.iter_mut() {
        assert!(!app.submit(tx.clone()), "unenrolled tx must be refused");
    }
    let mut cluster = Cluster::new(engines, apps, 14);
    cluster.run_until_height(2, 600_000);
    assert_eq!(cluster.replicas[0].app.ledger().state().anchor("evil"), None);
}

#[test]
fn lagging_healed_node_syncs_missed_blocks() {
    // Node 3 crashes, misses committed blocks, then heals: the PoA sync
    // protocol must deliver the sealed blocks it missed so it catches up
    // and the chain can pass its proposer turn.
    let n = 4;
    let (_, registry) = keys(n);
    let (engines, _, _) = PoaEngine::make_validators(n, 60);
    let apps: Vec<ChainApp> =
        (0..n).map(|_| ChainApp::new("sync-test", registry.clone())).collect();
    let mut cluster = Cluster::new(engines, apps, 15);
    cluster.run_until_height(1, 600_000);
    cluster.net.fail_node(NodeId(3));
    // Heights 2 (proposer 2) commits while node 3 is down; the run stops
    // once live nodes reach 2 (node 3 is excluded as failed).
    let report = cluster.run_until_height(2, 3_600_000);
    assert!(report.reached, "live majority should commit height 2");
    assert_eq!(cluster.replicas[3].app.height(), 1, "node 3 missed height 2");

    cluster.net.heal_node(NodeId(3));
    cluster.kick(NodeId(3));
    // Height 3's proposer IS node 3: it must first sync height 2, then
    // propose height 3 — full recovery.
    let report = cluster.run_until_height(3, 3_600_000);
    assert!(report.reached, "healed node should sync and unblock: {report:?}");
    assert_eq!(cluster.replicas[3].app.height(), 3, "node 3 caught up");
    assert_agreement(&cluster, 3, &[0, 1, 2, 3]);
}

#[test]
fn sync_responses_with_forged_seals_are_rejected() {
    use medchain_chain::block::Seal;
    use medchain_chain::consensus::Application;
    // Craft a sync response whose seal lacks a quorum; the lagging node
    // must refuse to commit it.
    let n = 4;
    let (ks, registry) = keys(n);
    let (mut engines, _, _) = PoaEngine::make_validators(n, 60);
    let mut apps: Vec<ChainApp> =
        (0..n).map(|_| ChainApp::new("forge-test", registry.clone())).collect();

    // Build a legitimate block for height 1 but seal it with a single
    // vote (below the 3-of-4 quorum).
    let proposer = &ks[1]; // validators[1 % 4] proposes height 1
    let block = apps[1].make_block(proposer.address(), 10);
    let sig = proposer.sign(&block.id().0);
    let forged = medchain_chain::Block {
        seal: Seal::Authority { proposer: sig, votes: vec![sig] },
        ..block
    };

    // Feed the forged sync response directly into node 0's engine.
    let mut out = medchain_chain::consensus::Outbox::new(0);
    engines[0].on_message(
        NodeId(1),
        medchain_chain::consensus::poa::PoaMsg::SyncResponse { blocks: vec![forged] },
        &mut apps[0],
        &mut out,
    );
    assert_eq!(apps[0].height(), 0, "under-quorum seal must not commit");
}

#[test]
fn pbft_healed_replica_syncs_missed_blocks() {
    let n = 4;
    let (_, registry) = keys(n);
    let (engines, _, _) = PbftEngine::make_replicas(n, 40, 800);
    let apps: Vec<ChainApp> =
        (0..n).map(|_| ChainApp::new("pbft-sync", registry.clone())).collect();
    let mut cluster = Cluster::new(engines, apps, 16);
    cluster.run_until_height(1, 600_000);
    // Crash a non-primary replica; the cluster keeps committing.
    cluster.net.fail_node(NodeId(3));
    let report = cluster.run_until_height(3, 3_600_000);
    assert!(report.reached, "majority should progress: {report:?}");
    assert!(cluster.replicas[3].app.height() < 3, "node 3 missed blocks");
    // Heal + kick: the stall probe fires, peers serve sealed blocks, and
    // the replica catches up without any view change.
    cluster.net.heal_node(NodeId(3));
    cluster.kick(NodeId(3));
    let caught_up = cluster.run_until(
        |replicas| replicas[3].app.height() >= 3,
        cluster.net.now_ms() + 600_000,
    );
    assert!(caught_up.reached, "healed PBFT replica failed to sync: {caught_up:?}");
    assert_agreement(&cluster, 3, &[0, 1, 2, 3]);
}
